//! Sliding-window dashboard: basic counting and windowed sums (Sections 3–4)
//! on a simulated sensor/event stream.
//!
//! Scenario: a monitoring dashboard tracks, over the most recent `n` events,
//! (a) how many events were errors (basic counting on a bit stream) and
//! (b) the total payload bytes transferred (sum of bounded integers), both
//! with ε relative error and far less memory than buffering the window.
//!
//! Run with:
//! ```text
//! cargo run --release --example sliding_window_dashboard
//! ```

use psfa::prelude::*;

fn main() {
    let window: u64 = 1 << 18; // last 262,144 events
    let epsilon = 0.01;
    let max_payload: u64 = 64 * 1024; // bytes per event, bounded by 64 KiB
    let batch_size = 8192;
    let batches = 80;

    let mut error_bits = BinaryStreamGenerator::new(0.03, 11); // ~3% error rate
    let mut payloads = BinaryStreamGenerator::new(0.7, 12); // 70% events carry payload

    let mut error_counter = BasicCounter::new(epsilon, window);
    let mut byte_sum = WindowedSum::new(epsilon, window, max_payload);

    // Exact references kept only for the demonstration.
    let mut exact_bits: Vec<bool> = Vec::new();
    let mut exact_values: Vec<u64> = Vec::new();

    for batch_idx in 0..batches {
        let bits = error_bits.next_bits(batch_size);
        let values = payloads.next_values(batch_size, max_payload);
        error_counter.advance_bits(&bits);
        byte_sum.advance(&values);
        exact_bits.extend_from_slice(&bits);
        exact_values.extend_from_slice(&values);

        if (batch_idx + 1) % 20 == 0 {
            let start_b = exact_bits.len().saturating_sub(window as usize);
            let true_errors = exact_bits[start_b..].iter().filter(|&&b| b).count() as u64;
            let start_v = exact_values.len().saturating_sub(window as usize);
            let true_bytes: u64 = exact_values[start_v..].iter().sum();
            let est_errors = error_counter.estimate();
            let est_bytes = byte_sum.estimate();
            println!("after {:>7} events:", (batch_idx + 1) * batch_size);
            println!(
                "  errors in window : est {est_errors:>9}  exact {true_errors:>9}  (rel err {:+.3}%)",
                100.0 * (est_errors as f64 - true_errors as f64) / true_errors.max(1) as f64
            );
            println!(
                "  bytes in window  : est {est_bytes:>12}  exact {true_bytes:>12}  (rel err {:+.3}%)",
                100.0 * (est_bytes as f64 - true_bytes as f64) / true_bytes.max(1) as f64
            );
            assert!(est_errors >= true_errors);
            assert!(est_errors as f64 <= true_errors as f64 * (1.0 + epsilon) + 1.0);
            assert!(est_bytes >= true_bytes);
            assert!(
                est_bytes as f64
                    <= true_bytes as f64 * (1.0 + epsilon) + byte_sum.num_bit_counters() as f64
            );
        }
    }

    println!(
        "\nmemory: basic counter stores {} sampled blocks across {} levels; \
         windowed sum stores {} blocks across {} bit counters \
         (vs {} buffered events for the exact answer)",
        error_counter.space_blocks(),
        error_counter.num_levels(),
        byte_sum.space_blocks(),
        byte_sum.num_bit_counters(),
        window
    );
}
