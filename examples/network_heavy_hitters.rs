//! Network monitoring scenario: find elephant flows in a synthetic packet
//! trace over a *sliding window*, the workload that motivates the paper
//! (identifying heavy hitters in high-velocity network streams, cf. the
//! Estan–Varghese and Cormode–Hadjieleftheriou references in Section 1).
//!
//! A synthetic trace with heavy-tailed flow sizes is processed in
//! minibatches. The work-efficient sliding-window estimator (Theorem 5.4)
//! tracks per-flow packet counts over the last `n` packets, and the exact
//! (memory-hungry) tracker provides ground truth for comparison.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_heavy_hitters
//! ```

use psfa::prelude::*;

fn main() {
    let window: u64 = 200_000; // last 200k packets
    let epsilon = 0.001;
    let phi = 0.01; // a flow is an "elephant" if it holds ≥1% of the window
    let batch_size = 10_000;
    let batches = 60;

    let mut trace = PacketTraceGenerator::new(256, 7);
    let mut sliding = SlidingHeavyHitters::new(phi, SlidingFreqWorkEfficient::new(epsilon, window));
    let mut exact = ExactSlidingWindow::new(window);

    for batch_idx in 0..batches {
        let minibatch = trace.next_minibatch(batch_size);
        sliding.process_minibatch(&minibatch);
        exact.process_minibatch(&minibatch);

        if (batch_idx + 1) % 20 == 0 {
            println!("after {} packets:", (batch_idx + 1) * batch_size);
            let reported = sliding.query();
            let true_heavy = exact.heavy_hitters(phi);
            println!(
                "  {:>3} flows reported as elephants, {:>3} truly above φn",
                reported.len(),
                true_heavy.len()
            );
            for hh in reported.iter().take(5) {
                println!(
                    "    flow {:>8}  est {:>7}  exact {:>7}",
                    hh.item,
                    hh.estimate,
                    exact.count(hh.item)
                );
            }
            // Every true elephant must be reported (no false negatives).
            for (flow, _) in &true_heavy {
                assert!(
                    reported.iter().any(|h| h.item == *flow),
                    "missed elephant flow {flow}"
                );
            }
        }
    }

    println!(
        "\nsliding summary uses {} counters vs {} distinct flows in the window ({}x smaller)",
        sliding.estimator().num_counters(),
        exact.num_distinct(),
        exact.num_distinct() / sliding.estimator().num_counters().max(1)
    );
}
