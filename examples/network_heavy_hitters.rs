//! Network monitoring scenario: find elephant flows in a synthetic packet
//! trace — served over the network, the deployment shape that motivates the
//! paper (identifying heavy hitters in high-velocity streams, cf. the
//! Estan–Varghese and Cormode–Hadjieleftheriou references in Section 1).
//!
//! A sharded engine runs behind the `psfa-serve` front end on loopback.
//! One protocol client plays the packet-capture pipeline, streaming the
//! trace in minibatches (and backing off when the server answers `Busy` —
//! backpressure is explicit, never buffered); a second client plays the
//! operator dashboard, polling heavy hitters and per-flow estimates over
//! the wire while ingest runs. An exact in-process tracker provides ground
//! truth: every truly heavy flow must be reported, and no estimate may
//! exceed its true count (the paper's one-sided guarantee survives the
//! network hop).
//!
//! Run with:
//! ```text
//! cargo run --release --example network_heavy_hitters
//! ```

use std::collections::HashMap;

use psfa::prelude::*;

fn main() {
    // Flow churn spreads traffic thin (the top flow holds ~0.4% of
    // packets), so an "elephant" here is ≥0.2% of traffic.
    let epsilon = 0.0005;
    let phi = 0.002;
    let window: u64 = 200_000;
    let batch_size = 10_000;
    let batches = 60;

    // The engine and its serving front end. Queries read published epoch
    // snapshots, so the dashboard never blocks the capture pipeline.
    let engine = Engine::spawn(
        EngineConfig::with_shards(4)
            .heavy_hitters(phi, epsilon)
            .sliding_window(window)
            .observe(),
    );
    let server =
        Server::spawn(engine.handle(), ServeConfig::default()).expect("spawn loopback server");
    let addr = server.local_addr();
    println!("psfa-serve listening on {addr}\n");

    // The dashboard: a second connection polling while ingest runs.
    let dashboard = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("dashboard connect");
        let mut polls = 0u64;
        loop {
            match client.heavy_hitters() {
                Ok(_) => polls += 1,
                Err(_) => return polls, // server shut down
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            if polls > 10_000 {
                return polls;
            }
        }
    });

    // The capture pipeline: stream the trace over the wire through the
    // retrying client — explicit backpressure (`Busy`) and broken streams
    // are absorbed by its capped, jittered backoff instead of a hand-rolled
    // retry loop or unbounded client-side queueing.
    let policy = RetryPolicy::default()
        .base_delay(std::time::Duration::from_micros(200))
        .max_retries(64);
    let mut capture = RetryingClient::connect(addr, policy).expect("capture connect");
    let mut trace = PacketTraceGenerator::new(256, 7);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for batch_idx in 0..batches {
        let minibatch = trace.next_minibatch(batch_size);
        for &flow in &minibatch {
            *truth.entry(flow).or_insert(0) += 1;
        }
        let items = capture.ingest(&minibatch).expect("ingest over the wire");
        assert_eq!(items, minibatch.len() as u64);

        if (batch_idx + 1) % 20 == 0 {
            let reported = capture.heavy_hitters().expect("query over the wire");
            let sliding = capture
                .sliding_heavy_hitters()
                .expect("sliding query over the wire");
            println!(
                "after {:>6} packets: {:>3} elephants (infinite), {:>3} in the last-{window} window",
                (batch_idx + 1) * batch_size,
                reported.len(),
                sliding.len(),
            );
        }
    }

    // Settle the stream, then verify the guarantees over the wire.
    engine.drain().unwrap();
    let m: u64 = truth.values().sum();
    let reported = capture.heavy_hitters().expect("final heavy hitters");
    let true_heavy: Vec<u64> = truth
        .iter()
        .filter(|(_, &f)| f as f64 >= phi * m as f64)
        .map(|(&flow, _)| flow)
        .collect();
    for flow in &true_heavy {
        assert!(
            reported.iter().any(|h| h.item == *flow),
            "missed elephant flow {flow}"
        );
    }
    println!(
        "\nfinal report ({} reported, {} truly above φm):",
        reported.len(),
        true_heavy.len()
    );
    for hh in reported.iter().take(5) {
        let exact = truth.get(&hh.item).copied().unwrap_or(0);
        assert!(
            hh.estimate <= exact,
            "one-sided bound violated over the wire"
        );
        println!(
            "    flow {:>8}  est {:>7}  exact {:>7}",
            hh.item, hh.estimate, exact
        );
    }

    // The same connection serves operational metrics.
    let metrics_text = capture.metrics_text().expect("metrics over the wire");
    let families = metrics_text
        .lines()
        .filter(|l| l.starts_with("# TYPE"))
        .count();
    println!("\nmetrics endpoint exports {families} instrument families");

    let serve_metrics = server.shutdown();
    let dashboard_polls = dashboard.join().expect("dashboard thread");
    println!(
        "served {} requests over {} connections ({} busy retries, \
         {} dashboard polls, peak in-flight {} B)",
        serve_metrics.requests,
        serve_metrics.connections_accepted,
        capture.busy_retries(),
        dashboard_polls,
        serve_metrics.peak_inflight_bytes,
    );
    engine.shutdown().unwrap();
}
