//! Count-Min sketch point queries (Section 6) compared against Count-Sketch
//! and the exact answer, on a skewed stream processed in minibatches — and
//! all three aggregates driven side by side through the pipeline API.
//!
//! Run with:
//! ```text
//! cargo run --release --example sketch_queries
//! ```

use std::collections::HashMap;

use psfa::prelude::*;

fn main() {
    let epsilon = 0.0005;
    let delta = 0.01;
    let batch_size = 20_000;
    let batches = 50;

    // Drive the Count-Min operator (plus companions) through the pipeline to
    // show the multi-operator minibatch architecture of Figure 1.
    let mut pipeline = Pipeline::new();
    pipeline.add_operator(SketchOperator::new(
        "parallel count-min",
        ParallelCountMin::new(epsilon, delta, 99),
    ));
    pipeline.add_operator(HeavyHitterOperator::new(
        "misra-gries heavy hitters",
        InfiniteHeavyHitters::new(0.01, 0.001),
    ));
    let mut generator = ZipfGenerator::new(1_000_000, 1.1, 5);
    let report = pipeline.run(&mut generator, batches, batch_size);
    println!("pipeline throughput:\n{}", report.to_table());

    // Re-run the same stream standalone to compare CM, Count-Sketch and the
    // exact frequencies on the most frequent items.
    let mut generator = ZipfGenerator::new(1_000_000, 1.1, 5);
    let mut cm = ParallelCountMin::new(epsilon, delta, 99);
    let mut cs = CountSketch::new(0.01, delta, 17);
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for _ in 0..batches {
        let minibatch = generator.next_minibatch(batch_size);
        cm.process_minibatch(&minibatch);
        cs.process_minibatch(&minibatch);
        for &x in &minibatch {
            *exact.entry(x).or_insert(0) += 1;
        }
    }

    let m = cm.total();
    println!(
        "point queries after {m} updates (εm = {:.0}):",
        epsilon * m as f64
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "item", "exact", "count-min", "count-sketch"
    );
    for item in 0..10u64 {
        let truth = exact.get(&item).copied().unwrap_or(0);
        let cm_est = cm.query(item);
        let cs_est = cs.query(item).max(0) as u64;
        println!("{item:<8} {truth:>10} {cm_est:>12} {cs_est:>12}");
        assert!(cm_est >= truth, "Count-Min never underestimates");
        assert!(
            cm_est as f64 <= truth as f64 + epsilon * m as f64 + 1.0,
            "Count-Min overestimate within εm (w.h.p.)"
        );
    }
    println!(
        "\nsketch dimensions: {} x {} counters",
        cm.sketch().depth(),
        cm.sketch().width()
    );
}
