//! Sharded ingestion service: the engine serving a heavy concurrent
//! workload — four producer threads pushing 10M items while a monitor
//! thread answers heavy-hitter, point-frequency and Count-Min queries
//! against the live engine, the scenario the ROADMAP's "serve heavy traffic
//! from many users" north star asks for.
//!
//! The engine runs with **skew-aware routing**: the Zipf(1.15) head keys
//! that hash routing would pin to single shards are detected online and
//! split round-robin, levelling the per-shard load table printed at the
//! end (pass `--hash` to compare against plain hash routing).
//!
//! Run with:
//! ```text
//! cargo run --release --example engine_service            # skew-aware
//! cargo run --release --example engine_service -- --hash  # hash routing
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psfa::prelude::*;

fn main() {
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let producers = 4u64;
    let batches_per_producer = 250u64;
    let batch_size = 10_000usize;
    let total: u64 = producers * batches_per_producer * batch_size as u64; // 10M
    let phi = 0.01;
    let epsilon = 0.002;

    let routing = if std::env::args().any(|a| a == "--hash") {
        RoutingPolicy::Hash
    } else {
        RoutingPolicy::skew_aware()
    };
    let engine = Engine::spawn(
        EngineConfig::with_shards(shards)
            .queue_capacity(16)
            .heavy_hitters(phi, epsilon)
            .count_min(0.0005, 0.01, 42)
            .routing(routing.clone()),
    );
    println!(
        "engine up: {shards} shards, {} routing, ingesting {total} items from {producers} producers\n",
        routing.name()
    );
    let start = Instant::now();

    // Producers: each streams its own Zipf substream through a cloned
    // handle and returns its exact item counts for the final comparison.
    let mut workers = Vec::new();
    for p in 0..producers {
        let handle = engine.handle();
        workers.push(std::thread::spawn(move || {
            let mut generator = ZipfGenerator::new(1_000_000, 1.15, 1000 + p);
            let mut exact: HashMap<u64, u64> = HashMap::new();
            for _ in 0..batches_per_producer {
                let batch = generator.next_minibatch(batch_size);
                // A closed engine (shutdown raced, or every shard's restart
                // budget was exhausted) is a typed error here — stop this
                // producer cleanly rather than panicking the whole run.
                if handle.ingest(&batch).is_err() {
                    eprintln!("producer {p}: engine closed mid-run; stopping early");
                    break;
                }
                for &x in &batch {
                    *exact.entry(x).or_insert(0) += 1;
                }
            }
            exact
        }));
    }

    // Monitor: query the live engine while ingestion runs.
    let monitor = {
        let handle = engine.handle();
        let done = Arc::new(AtomicBool::new(false));
        let flag = done.clone();
        let join = std::thread::spawn(move || {
            let mut live_queries = 0u64;
            while !flag.load(Ordering::Acquire) {
                let m = handle.metrics();
                let processed = m.items_processed();
                if processed > 0 && processed < total {
                    let hh = handle.heavy_hitters();
                    live_queries += 1;
                    if live_queries % 50 == 1 {
                        let top = hh.first().map(|h| h.item);
                        println!(
                            "  [live] {processed:>9} items in, queue depth {:>3}, \
                             {:>2} heavy hitters, top item {:?}",
                            m.queue_depth(),
                            hh.len(),
                            top
                        );
                        if let Some(item) = top {
                            // Live point queries against both summaries.
                            let mg = handle.estimate(item);
                            let cm = handle.cm_estimate(item);
                            assert!(cm >= mg, "CM overestimates, MG underestimates");
                        }
                    }
                }
                std::thread::yield_now();
            }
            live_queries
        });
        (done, join)
    };

    let truths: Vec<HashMap<u64, u64>> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    engine.drain().unwrap();
    let ingest_secs = start.elapsed().as_secs_f64();
    monitor.0.store(true, Ordering::Release);
    let live_queries = monitor.1.join().unwrap();

    let handle = engine.handle();
    let metrics = handle.metrics();
    assert_eq!(metrics.items_processed(), total);
    println!(
        "\ningested {total} items in {ingest_secs:.2}s ({:.2} Mitems/s)",
        total as f64 / ingest_secs / 1e6
    );
    println!("answered {live_queries} full query rounds during ingestion");
    println!("\nper-shard load:\n{}", metrics.to_table());
    if let Some(imbalance) = metrics.load_imbalance() {
        println!(
            "load imbalance (max/mean): {imbalance:.3}  [1.0 = perfectly level; \
             hot keys split: {:?}]",
            metrics.hot_keys
        );
    }

    // Exact truth across all producers.
    let mut exact: HashMap<u64, u64> = HashMap::new();
    for t in truths {
        for (item, count) in t {
            *exact.entry(item).or_insert(0) += count;
        }
    }

    // Final answers: the union-of-shards heavy hitters against the exact
    // counts, with the paper's bands.
    let reported = handle.heavy_hitters();
    println!("final φ = {phi} heavy hitters (ε = {epsilon}):");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "item", "estimate", "count-min", "exact"
    );
    for hh in reported.iter().take(10) {
        let truth = exact.get(&hh.item).copied().unwrap_or(0);
        println!(
            "{:<12} {:>12} {:>12} {:>12}",
            hh.item,
            hh.estimate,
            handle.cm_estimate(hh.item),
            truth
        );
        assert!(hh.estimate <= truth, "estimates never overestimate");
        assert!(
            hh.estimate as f64 >= truth as f64 - epsilon * total as f64,
            "estimates stay within εm"
        );
    }
    for (&item, &f) in &exact {
        if f as f64 >= phi * total as f64 {
            assert!(
                reported.iter().any(|h| h.item == item),
                "missed true heavy hitter {item}"
            );
        }
    }

    let report = engine.shutdown().unwrap();
    assert_eq!(report.total_items(), total);
    println!("\nall live and final answers satisfy f - εm ≤ f̂ ≤ f ✓");
}
