//! Quickstart: track heavy hitters over an infinite window, minibatch by
//! minibatch, and compare the estimates with the exact frequencies.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::collections::HashMap;

use psfa::prelude::*;

fn main() {
    // A Zipf(1.2)-distributed stream over 100k distinct items, processed in
    // minibatches of 10k elements (the discretized-stream model of the paper).
    let mut generator = ZipfGenerator::new(100_000, 1.2, 42);
    let phi = 0.02; // heavy-hitter threshold: 2% of the stream
    let epsilon = 0.002; // estimation error: 0.2% of the stream
    let mut tracker = InfiniteHeavyHitters::new(phi, epsilon);
    let mut exact: HashMap<u64, u64> = HashMap::new();

    let batches = 50;
    let batch_size = 10_000;
    for _ in 0..batches {
        let minibatch = generator.next_minibatch(batch_size);
        for &item in &minibatch {
            *exact.entry(item).or_insert(0) += 1;
        }
        tracker.process_minibatch(&minibatch);
    }

    let total = (batches * batch_size) as u64;
    println!("processed {total} items in {batches} minibatches of {batch_size}");
    println!(
        "summary size: {} counters (ε = {epsilon})\n",
        tracker.estimator().num_counters()
    );
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "item", "estimate", "exact", "share"
    );
    for hh in tracker.query().into_iter().take(10) {
        let truth = exact.get(&hh.item).copied().unwrap_or(0);
        println!(
            "{:<10} {:>12} {:>12} {:>9.2}%",
            hh.item,
            hh.estimate,
            truth,
            100.0 * truth as f64 / total as f64
        );
        assert!(
            hh.estimate <= truth,
            "estimates are one-sided (never overestimate)"
        );
        assert!(
            hh.estimate as f64 >= truth as f64 - epsilon * total as f64,
            "estimates are within εm of the truth"
        );
    }
    println!("\nall reported estimates satisfy f - εm ≤ f̂ ≤ f ✓");
}
