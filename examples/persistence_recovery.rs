//! Persistence, crash recovery, and time-travel queries, end to end:
//!
//! 1. run a skew-aware sharded engine with the background flusher spilling
//!    epoch snapshots to a segment log;
//! 2. kill it mid-stream (no final flush — a simulated `kill -9`);
//! 3. recover a fresh engine from the latest consistent epoch and show that
//!    estimates, heavy hitters, and hot-key placements survived;
//! 4. answer "heavy hitters as of epoch E" from retained history while the
//!    recovered engine keeps ingesting.
//!
//! ```text
//! cargo run --release --example persistence_recovery
//! ```

use std::collections::HashMap;

use psfa::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("psfa-example-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = EngineConfig::with_shards(4)
        .queue_capacity(16)
        .heavy_hitters(0.02, 0.002)
        .skew_aware_routing()
        .persistence(
            PersistenceConfig::new(&dir)
                .interval_batches(16) // cut an epoch every 16 accepted minibatches
                .retain_epochs(64), // history depth for time-travel queries
        );

    println!(
        "phase 1 — live engine, flusher persisting to {}",
        dir.display()
    );
    let engine = Engine::spawn(config.clone());
    let handle = engine.handle();
    let mut zipf = ZipfGenerator::new(1_000_000, 1.4, 99);
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for _ in 0..120 {
        let batch = zipf.next_minibatch(20_000);
        // A closed engine surfaces as a typed error; stop streaming
        // instead of panicking (the recovery phases below still run).
        if handle.ingest(&batch).is_err() {
            eprintln!("engine closed; stopping ingest early");
            break;
        }
        for &x in &batch {
            *truth.entry(x).or_insert(0) += 1;
        }
    }
    engine.drain().unwrap();
    let epoch = handle.snapshot_now().expect("snapshot");
    let m_snap = handle.total_items();
    let live_hh = handle.heavy_hitters();
    println!(
        "  {} items ingested, epoch {epoch} cut, {} heavy hitters, hot keys {:?}",
        m_snap,
        live_hh.len(),
        handle.metrics().hot_keys
    );
    println!("{}", handle.metrics().to_table());

    // Traffic after the snapshot keeps flowing (and the background flusher
    // keeps cutting epochs) until the process "dies" mid-stream: whatever
    // arrived after the *last* flushed epoch is lost, as in a real crash.
    let mut truth_all = truth.clone();
    for _ in 0..10 {
        let batch = zipf.next_minibatch(20_000);
        if handle.ingest(&batch).is_err() {
            eprintln!("engine closed; stopping ingest early");
            break;
        }
        for &x in &batch {
            *truth_all.entry(x).or_insert(0) += 1;
        }
    }
    engine.drain().unwrap();
    let total_ingested = handle.total_items();
    println!("phase 2 — crash: killing the engine mid-stream at {total_ingested} items\n");
    engine.kill();

    println!("phase 3 — recovery from the latest consistent epoch");
    let recovered = Engine::recover(&dir, config).expect("recover");
    let handle = recovered.handle();
    let m_rec = handle.total_items();
    println!(
        "  recovered {m_rec} items (last flushed epoch; {} in-memory items lost), hot keys {:?}",
        total_ingested - m_rec,
        handle.metrics().hot_keys
    );
    assert!((m_snap..=total_ingested).contains(&m_rec));
    // One-sided ε·m accuracy of the recovered state: the recovered prefix
    // contains everything up to the manual cut (so at least `truth`'s
    // counts, minus ε·m_rec) and nothing beyond what was ever ingested.
    let slack = (handle.epsilon() * m_rec as f64).ceil() as u64;
    let mut checked = 0u64;
    for hh in &live_hh {
        let est = handle.estimate(hh.item);
        assert!(est <= truth_all[&hh.item], "overestimate for {}", hh.item);
        assert!(
            est + slack >= truth[&hh.item],
            "bound violated for {}",
            hh.item
        );
        checked += 1;
    }
    println!("  {checked} recovered heavy-hitter estimates within the one-sided ε·m bound");

    println!("\nphase 4 — time travel while ingesting");
    for _ in 0..40 {
        handle
            .ingest(&zipf.next_minibatch(20_000))
            .expect("engine closed");
    }
    recovered.drain().unwrap();
    let epoch2 = handle.snapshot_now().expect("snapshot");
    let then = handle.heavy_hitters_at(epoch).expect("history");
    let now = handle.heavy_hitters_at(epoch2).expect("history");
    println!(
        "  epochs retained: {:?}",
        handle.persisted_epochs().expect("epochs")
    );
    println!(
        "  heavy_hitters_at({epoch})  = {} items over {} stream items (frozen)",
        then.len(),
        handle.view_at(epoch).expect("view").total_items()
    );
    println!(
        "  heavy_hitters_at({epoch2}) = {} items over {} stream items",
        now.len(),
        handle.view_at(epoch2).expect("view").total_items()
    );
    assert_eq!(then, live_hh, "epoch {epoch} is immutable history");

    println!("{}", handle.metrics().to_table());
    recovered.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    println!("done.");
}
