//! Property-based tests: the sliding-window counting structures must satisfy
//! the paper's accuracy invariants on arbitrary streams and minibatch splits.

use proptest::prelude::*;

use psfa_window::{BasicCounter, CompactedSegment, GammaSnapshot, QueryResult, Sbbc, WindowedSum};

fn window_count(bits: &[bool], n: u64) -> u64 {
    let start = bits.len().saturating_sub(n as usize);
    bits[start..].iter().filter(|&&b| b).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 3.2: m ≤ val ≤ m + 2γ for arbitrary bit streams, γ, window and
    /// minibatch boundaries.
    #[test]
    fn gamma_snapshot_value_bounds(
        bits in prop::collection::vec(any::<bool>(), 1..2500),
        gamma in 1u64..16,
        window in 1u64..2000,
        chunk in 1usize..300,
    ) {
        let mut snap = GammaSnapshot::new(gamma);
        let mut consumed = 0u64;
        for piece in bits.chunks(chunk) {
            snap.ingest(&CompactedSegment::from_bits(piece), consumed);
            consumed += piece.len() as u64;
        }
        let t = bits.len() as u64;
        let start = t.saturating_sub(window) + 1;
        snap.expire_before(start);
        let m = window_count(&bits, window);
        prop_assert!(snap.val() >= m);
        prop_assert!(snap.val() <= m + 2 * gamma);
    }

    /// Corollary 3.5 + Theorem 3.4: a non-overflowed SBBC estimate is within
    /// [m, m + λ]; an overflowed one certifies m ≥ σλ.
    #[test]
    fn sbbc_estimate_or_overflow_guarantee(
        bits in prop::collection::vec(any::<bool>(), 1..2500),
        lambda_half in 1u64..12,
        sigma in 1u64..40,
        window in 16u64..2000,
        chunk in 1usize..400,
    ) {
        let lambda = lambda_half * 2;
        let mut sbbc = Sbbc::new(sigma, lambda, window);
        let mut consumed: Vec<bool> = Vec::new();
        for piece in bits.chunks(chunk) {
            sbbc.advance(&CompactedSegment::from_bits(piece));
            consumed.extend_from_slice(piece);
            let m = window_count(&consumed, window);
            match sbbc.query() {
                QueryResult::Estimate(est) => {
                    prop_assert!(est >= m);
                    prop_assert!(est <= m + lambda);
                }
                QueryResult::Overflowed => {
                    prop_assert!(m >= sigma * lambda, "overflow with m = {m} < σλ = {}", sigma * lambda);
                }
            }
        }
    }

    /// Theorem 3.4 (space): the number of stored blocks never exceeds the cap
    /// derived from σ nor the O(m/λ) bound.
    #[test]
    fn sbbc_space_bounds(
        bits in prop::collection::vec(any::<bool>(), 1..2500),
        lambda_half in 1u64..8,
        sigma in 1u64..30,
        chunk in 1usize..300,
    ) {
        let lambda = lambda_half * 2;
        let window = 100_000u64; // effectively infinite: everything stays in-window
        let mut sbbc = Sbbc::new(sigma, lambda, window);
        let mut ones = 0u64;
        for piece in bits.chunks(chunk) {
            sbbc.advance(&CompactedSegment::from_bits(piece));
            ones += piece.iter().filter(|&&b| b).count() as u64;
            let blocks = sbbc.space_blocks() as u64;
            prop_assert!(blocks <= 2 * sigma + 2);
            prop_assert!(blocks <= 2 * ones / lambda + 2);
        }
    }

    /// Theorem 4.1: basic counting has one-sided relative error at most ε.
    #[test]
    fn basic_counting_relative_error(
        bits in prop::collection::vec(any::<bool>(), 1..3000),
        eps_percent in 2u32..50,
        window_log in 6u32..12,
        chunk in 1usize..500,
    ) {
        let epsilon = eps_percent as f64 / 100.0;
        let window = 1u64 << window_log;
        let mut counter = BasicCounter::new(epsilon, window);
        let mut consumed: Vec<bool> = Vec::new();
        for piece in bits.chunks(chunk) {
            counter.advance_bits(piece);
            consumed.extend_from_slice(piece);
            let m = window_count(&consumed, window);
            let est = counter.estimate();
            prop_assert!(est >= m);
            prop_assert!(est as f64 <= m as f64 * (1.0 + epsilon) + 1e-9);
        }
    }

    /// Theorem 4.2: the windowed sum has one-sided relative error at most ε.
    #[test]
    fn windowed_sum_relative_error(
        values in prop::collection::vec(0u64..200, 1..1500),
        eps_percent in 5u32..40,
        window_log in 6u32..11,
        chunk in 1usize..400,
    ) {
        let epsilon = eps_percent as f64 / 100.0;
        let window = 1u64 << window_log;
        let mut ws = WindowedSum::new(epsilon, window, 255);
        let mut consumed: Vec<u64> = Vec::new();
        for piece in values.chunks(chunk) {
            ws.advance(piece);
            consumed.extend_from_slice(piece);
            let start = consumed.len().saturating_sub(window as usize);
            let truth: u64 = consumed[start..].iter().sum();
            let est = ws.estimate();
            prop_assert!(est >= truth);
            prop_assert!(est as f64 <= truth as f64 * (1.0 + epsilon) + ws.num_bit_counters() as f64);
        }
    }

    /// Decrement semantics: decrementing by r reduces the value by exactly r
    /// (down to zero) and never breaks later ingestion.
    #[test]
    fn sbbc_decrement_then_advance_is_consistent(
        ones_a in 0u64..500,
        dec in 0u64..700,
        ones_b in 0u64..300,
        lambda_half in 1u64..8,
    ) {
        let lambda = lambda_half * 2;
        let mut sbbc = Sbbc::unbounded(lambda, 1_000_000);
        let bits_a: Vec<bool> = (0..ones_a).map(|_| true).collect();
        sbbc.advance(&CompactedSegment::from_bits(&bits_a));
        let before = sbbc.value().unwrap();
        sbbc.decrement(dec);
        prop_assert_eq!(sbbc.value().unwrap(), before.saturating_sub(dec));
        let bits_b: Vec<bool> = (0..ones_b).map(|_| true).collect();
        sbbc.advance(&CompactedSegment::from_bits(&bits_b));
        let after = sbbc.value().unwrap();
        // The counter still overestimates the "logical" count (ones_a - dec + ones_b)
        // by at most λ and never undercounts it.
        let logical = before.saturating_sub(dec) + ones_b;
        prop_assert!(after >= logical.saturating_sub(0));
        prop_assert!(after <= logical + lambda);
    }
}
