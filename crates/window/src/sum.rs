//! Sliding-window sum of bounded non-negative integers (Theorem 4.2).
//!
//! For a stream of integers in `{0, …, R}`, the windowed sum is maintained by
//! keeping one [`BasicCounter`] per bit position of the binary representation
//! of the values: counter `D_i` counts how many in-window values have bit `i`
//! set, and the sum estimate is `Σ_i 2^i · D_i`. Since every per-bit count is
//! an overestimate by at most a factor `(1 + ε)` and all weights are
//! positive, the weighted total inherits the same relative error bound.
//!
//! Processing a minibatch extracts the per-bit indicator sequences and
//! advances all `⌈log₂(R+1)⌉` counters in parallel, for `O((S + µ) log R)`
//! work and polylogarithmic depth.

use rayon::prelude::*;

use psfa_primitives::CompactedSegment;

use crate::basic_counting::BasicCounter;

/// ε-relative-error sum of the last `n` stream values, each in `{0, …, R}`.
#[derive(Debug, Clone)]
pub struct WindowedSum {
    epsilon: f64,
    n: u64,
    max_value: u64,
    /// One basic counter per bit position, least significant first.
    bit_counters: Vec<BasicCounter>,
}

impl WindowedSum {
    /// Creates a windowed-sum structure for window size `n`, relative error
    /// `ε`, and values bounded by `max_value` (the paper's `R`).
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)`, `n == 0`, or `max_value == 0`.
    pub fn new(epsilon: f64, n: u64, max_value: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(n >= 1, "window size must be at least 1");
        assert!(max_value >= 1, "max_value must be at least 1");
        let bits = 64 - max_value.leading_zeros();
        let bit_counters = (0..bits).map(|_| BasicCounter::new(epsilon, n)).collect();
        Self {
            epsilon,
            n,
            max_value,
            bit_counters,
        }
    }

    /// The relative-error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The window size n.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// The value bound R.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Number of per-bit basic counters (⌈log₂(R+1)⌉).
    pub fn num_bit_counters(&self) -> usize {
        self.bit_counters.len()
    }

    /// Total sampled blocks stored across all per-bit counters.
    pub fn space_blocks(&self) -> usize {
        self.bit_counters
            .iter()
            .map(BasicCounter::space_blocks)
            .sum()
    }

    /// Incorporates a minibatch of values.
    ///
    /// # Panics
    /// Panics if any value exceeds `max_value`.
    pub fn advance(&mut self, values: &[u64]) {
        if let Some(&bad) = values.iter().find(|&&v| v > self.max_value) {
            panic!(
                "value {bad} exceeds the configured bound {}",
                self.max_value
            );
        }
        self.bit_counters
            .par_iter_mut()
            .enumerate()
            .for_each(|(bit, counter)| {
                let segment = CompactedSegment::from_predicate(values, |&v| (v >> bit) & 1 == 1);
                counter.advance(&segment);
            });
    }

    /// Returns the ε-approximate sum of the values in the current window.
    pub fn estimate(&self) -> u64 {
        self.bit_counters
            .par_iter()
            .enumerate()
            .map(|(bit, counter)| counter.estimate() << bit)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn window_sum(values: &[u64], n: u64) -> u64 {
        let start = values.len().saturating_sub(n as usize);
        values[start..].iter().sum()
    }

    fn drive(epsilon: f64, n: u64, max_value: u64, batches: usize, mu: usize, seed: u64) {
        let mut ws = WindowedSum::new(epsilon, n, max_value);
        let mut rng = Lcg(seed);
        let mut values: Vec<u64> = Vec::new();
        for _ in 0..batches {
            let piece: Vec<u64> = (0..mu).map(|_| rng.next() % (max_value + 1)).collect();
            ws.advance(&piece);
            values.extend_from_slice(&piece);
            let truth = window_sum(&values, n);
            let est = ws.estimate();
            assert!(est >= truth, "estimate {est} below true sum {truth}");
            let bound =
                (truth as f64 * (1.0 + epsilon)).ceil() as u64 + ws.num_bit_counters() as u64;
            assert!(est <= bound, "estimate {est} exceeds (1+ε)·sum = {bound}");
        }
    }

    #[test]
    fn relative_error_small_values() {
        drive(0.1, 2048, 7, 20, 400, 1);
    }

    #[test]
    fn relative_error_large_values() {
        drive(0.1, 2048, 65_535, 20, 400, 2);
        drive(0.05, 4096, 1 << 20, 15, 600, 3);
    }

    #[test]
    fn binary_values_match_basic_counting() {
        // With values in {0, 1} the sum is exactly basic counting.
        drive(0.1, 1024, 1, 25, 300, 4);
    }

    #[test]
    fn zero_values_give_zero_sum() {
        let mut ws = WindowedSum::new(0.1, 500, 100);
        ws.advance(&vec![0u64; 2000]);
        assert_eq!(ws.estimate(), 0);
    }

    #[test]
    fn counter_count_is_log_r() {
        assert_eq!(WindowedSum::new(0.1, 100, 1).num_bit_counters(), 1);
        assert_eq!(WindowedSum::new(0.1, 100, 255).num_bit_counters(), 8);
        assert_eq!(WindowedSum::new(0.1, 100, 256).num_bit_counters(), 9);
        assert_eq!(
            WindowedSum::new(0.1, 100, (1 << 32) - 1).num_bit_counters(),
            32
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the configured bound")]
    fn out_of_range_value_rejected() {
        let mut ws = WindowedSum::new(0.1, 100, 10);
        ws.advance(&[5, 11]);
    }

    #[test]
    fn mean_can_be_derived_from_sum() {
        // The paper notes the mean reduces to the sum; sanity-check that use.
        let n = 1000u64;
        let mut ws = WindowedSum::new(0.05, n, 1000);
        let values: Vec<u64> = (0..3000u64).map(|i| (i * 37) % 1001).collect();
        ws.advance(&values);
        let truth: f64 = window_sum(&values, n) as f64 / n as f64;
        let est = ws.estimate() as f64 / n as f64;
        assert!(est >= truth && est <= truth * 1.06 + 1.0);
    }
}
