//! γ-snapshots (Definition 3.1, Lemmas 3.2 and 3.3).
//!
//! A γ-snapshot deterministically samples every γ-th 1 bit of the stream
//! (by *rank*, i.e. the γ-th, 2γ-th, … one) and records the id of the
//! length-γ block that contains each sampled bit, together with `ℓ`, the
//! number of 1s seen after the most recent sampled 1. The value
//! `γ·|Q| + ℓ` then approximates the number of 1s in the sliding window
//! with additive error at most `2γ` (Lemma 3.2).
//!
//! The snapshot here is the *internal* representation used by the
//! space-bounded block counter ([`crate::sbbc::Sbbc`]); it is exposed
//! publicly both for testing Lemma 3.2 in isolation and because `query`
//! (Theorem 3.4) returns it.

use std::collections::VecDeque;

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::CompactedSegment;

/// Type tag for encoded γ-snapshots (see `psfa_primitives::codec`).
const TAG: u8 = 0x01;
const VERSION: u8 = 1;

/// A γ-snapshot: sampled block ids plus the trailing-ones counter `ℓ`.
///
/// Block ids are 1-indexed (block `k` covers stream positions
/// `(k−1)·γ + 1 ..= k·γ`), strictly increasing from oldest to newest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GammaSnapshot {
    gamma: u64,
    /// Sampled block ids, oldest at the front.
    blocks: VecDeque<u64>,
    /// Number of 1s observed after the most recent sampled 1.
    ell: u64,
}

impl GammaSnapshot {
    /// Creates an empty snapshot with block size `γ ≥ 1`.
    ///
    /// # Panics
    /// Panics if `gamma == 0`.
    pub fn new(gamma: u64) -> Self {
        assert!(gamma >= 1, "gamma must be at least 1");
        Self {
            gamma,
            blocks: VecDeque::new(),
            ell: 0,
        }
    }

    /// The block size γ.
    pub fn gamma(&self) -> u64 {
        self.gamma
    }

    /// The trailing-ones counter ℓ (always `< γ`).
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// Number of sampled blocks currently stored (`|Q|`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The sampled block ids, oldest first.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().copied()
    }

    /// The snapshot value `val = γ·|Q| + ℓ` (Lemma 3.2). Constant work.
    pub fn val(&self) -> u64 {
        self.gamma * self.blocks.len() as u64 + self.ell
    }

    /// Ingests a stream segment encoded as a CSS. `stream_len_before` is the
    /// absolute length of the stream *before* this segment (so the segment
    /// occupies 1-indexed positions `stream_len_before + 1 ..`).
    ///
    /// Work is `O(‖T‖₀ / γ + 1)` beyond reading the CSS header: only every
    /// γ-th 1 of the segment is examined, exactly as in the proof of
    /// Theorem 3.4.
    pub fn ingest(&mut self, segment: &CompactedSegment, stream_len_before: u64) {
        let ones = segment.positions();
        let k = ones.len() as u64;
        if k == 0 {
            return;
        }
        // The next sampled 1 is the (γ − ℓ)-th 1 of the segment, then every
        // γ-th after that.
        let first = self.gamma - self.ell; // 1-indexed rank within the segment
        if first <= k {
            let mut idx = first - 1; // 0-indexed into `ones`
            while idx < k {
                let global_pos = stream_len_before + ones[idx as usize] + 1; // 1-indexed
                let block = global_pos.div_ceil(self.gamma);
                debug_assert!(self.blocks.back().is_none_or(|&b| b < block));
                self.blocks.push_back(block);
                idx += self.gamma;
            }
        }
        self.ell = (self.ell + k) % self.gamma.max(1);
        if self.gamma == 1 {
            self.ell = 0;
        }
    }

    /// Drops sampled blocks that lie entirely before stream position
    /// `window_start` (1-indexed): block `q` is kept iff `q·γ ≥ window_start`.
    ///
    /// This realises `shrink` (Lemma 3.3) and window expiry during `advance`.
    pub fn expire_before(&mut self, window_start: u64) {
        while let Some(&front) = self.blocks.front() {
            if front * self.gamma >= window_start {
                break;
            }
            self.blocks.pop_front();
        }
    }

    /// Value the snapshot would report if blocks before `window_start` were
    /// expired, without mutating the snapshot. Used by `predict`
    /// (Section 5.3.3) to cheaply pre-compute post-slide counter values.
    pub fn val_if_expired_before(&self, window_start: u64) -> u64 {
        let kept = self
            .blocks
            .iter()
            .take_while(|&&q| q * self.gamma < window_start)
            .count();
        self.gamma * (self.blocks.len() - kept) as u64 + self.ell
    }

    /// Decrements the snapshot value by `r`, i.e. turns the latest `r` 1s into
    /// 0s (Theorem 3.4's `decrement`). Saturates at value 0.
    pub fn decrement(&mut self, r: u64) {
        if r == 0 {
            return;
        }
        if r <= self.ell {
            self.ell -= r;
            return;
        }
        let deficit = r - self.ell;
        let k = deficit.div_ceil(self.gamma);
        let available = self.blocks.len() as u64;
        if k > available {
            // Saturate: remove everything.
            self.blocks.clear();
            self.ell = 0;
            return;
        }
        for _ in 0..k {
            self.blocks.pop_back();
        }
        self.ell = k * self.gamma - deficit;
    }

    /// Keeps only the newest `max_blocks` sampled blocks, returning the id of
    /// the newest *dropped* block (if any). Used by the SBBC to enforce its
    /// space cap σ.
    pub fn truncate_to(&mut self, max_blocks: usize) -> Option<u64> {
        let mut dropped = None;
        while self.blocks.len() > max_blocks {
            dropped = self.blocks.pop_front();
        }
        dropped
    }

    /// Canonical binary encoding, appended to `w` (used by [`crate::Sbbc`]'s
    /// encoding; see `psfa_primitives::codec` for the conventions).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_u64(self.gamma);
        w.put_u64(self.ell);
        w.put_u32(self.blocks.len() as u32);
        for &block in &self.blocks {
            w.put_u64(block);
        }
    }

    /// Decodes a snapshot previously written by
    /// [`GammaSnapshot::encode_into`], validating every structural
    /// invariant (never panics on corrupted input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let gamma = r.get_u64()?;
        if gamma == 0 {
            return Err(CodecError::Invalid("gamma-snapshot: gamma must be >= 1"));
        }
        let ell = r.get_u64()?;
        if ell >= gamma {
            return Err(CodecError::Invalid("gamma-snapshot: ell must be < gamma"));
        }
        let len = r.get_len(8)?;
        let mut blocks = VecDeque::with_capacity(len);
        for _ in 0..len {
            let block = r.get_u64()?;
            if block == 0 || blocks.back().is_some_and(|&b| b >= block) {
                return Err(CodecError::Invalid(
                    "gamma-snapshot: block ids must be strictly increasing and 1-indexed",
                ));
            }
            blocks.push_back(block);
        }
        Ok(Self { gamma, blocks, ell })
    }

    /// Reference (sequential, non-streaming) construction of the γ-snapshot of
    /// the last `window` bits of `bits`, following Definition 3.1 literally.
    /// Only used by tests and the experiment harness as ground truth.
    pub fn reference(bits: &[bool], gamma: u64, window: u64) -> Self {
        assert!(gamma >= 1);
        let t = bits.len() as u64;
        let window_start = t.saturating_sub(window) + 1; // 1-indexed
        let mut blocks = VecDeque::new();
        let mut ones_seen = 0u64;
        let mut last_sampled_pos = 0u64;
        for (i, &b) in bits.iter().enumerate() {
            if !b {
                continue;
            }
            ones_seen += 1;
            if ones_seen.is_multiple_of(gamma) {
                let pos = i as u64 + 1;
                last_sampled_pos = pos;
                let block = pos.div_ceil(gamma);
                if block * gamma >= window_start {
                    blocks.push_back(block);
                }
            }
        }
        // ℓ: ones after the last sampled one (there are < γ of them).
        let ell = bits
            .iter()
            .enumerate()
            .skip(last_sampled_pos as usize)
            .filter(|(_, &b)| b)
            .count() as u64;
        Self {
            gamma,
            blocks,
            ell: if gamma == 1 { 0 } else { ell },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_ones_in_window(bits: &[bool], window: u64) -> u64 {
        let start = bits.len().saturating_sub(window as usize);
        bits[start..].iter().filter(|&&b| b).count() as u64
    }

    fn ingest_all(bits: &[bool], gamma: u64, chunk: usize) -> GammaSnapshot {
        let mut snap = GammaSnapshot::new(gamma);
        let mut consumed = 0u64;
        for piece in bits.chunks(chunk.max(1)) {
            let css = CompactedSegment::from_bits(piece);
            snap.ingest(&css, consumed);
            consumed += piece.len() as u64;
        }
        snap
    }

    /// The worked example of Figure 2 in the paper: a 23-bit stream, γ = 3,
    /// window size 12.
    ///
    /// The figure reports (Q = {4, 7}, ℓ = 1) under a convention where the
    /// still-incomplete tail block is not yet eligible for Q. Definition 3.1
    /// as written (which the paper's own `advance` pseudocode relies on,
    /// since it keeps ℓ < γ) also records the sampled 1 at position 22 whose
    /// block 8 overlaps the window, yielding Q = {4, 7, 8} and ℓ = 0. Both
    /// encodings describe the same sample set and both satisfy Lemma 3.2;
    /// we implement the definition as written and check that here.
    #[test]
    fn figure2_example() {
        let bits: Vec<bool> = [
            0, 1, 1, 1, 1, 1, 1, 1, 1, 0, 1, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0,
        ]
        .iter()
        .map(|&x| x == 1)
        .collect();
        let t = bits.len() as u64;
        let window = 12;
        let gamma = 3;
        let mut snap = ingest_all(&bits, gamma, 5);
        snap.expire_before(t - window + 1);
        let q: Vec<u64> = snap.blocks().collect();
        // The figure's sampled blocks {4, 7} are present…
        assert!(
            q.contains(&4) && q.contains(&7),
            "Q must contain the figure's blocks, got {q:?}"
        );
        // …and the full Definition-3.1 sample set is {4, 7, 8} with ℓ = 0.
        assert_eq!(q, vec![4, 7, 8]);
        assert_eq!(snap.ell(), 0);
        // Lemma 3.2 bounds hold for the figure's window: m = 6 ones.
        let m = count_ones_in_window(&bits, window);
        assert_eq!(m, 6);
        assert!(snap.val() >= m && snap.val() <= m + 2 * gamma);
        // The reference (offline) construction agrees with the incremental one.
        let reference = GammaSnapshot::reference(&bits, gamma, window);
        assert_eq!(reference.blocks().collect::<Vec<_>>(), q);
        assert_eq!(reference.ell(), snap.ell());
    }

    #[test]
    fn incremental_matches_reference_construction() {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 40
        };
        for &gamma in &[1u64, 2, 3, 5, 8] {
            for &density_mod in &[2u64, 3, 7] {
                let bits: Vec<bool> = (0..4000).map(|_| next() % density_mod == 0).collect();
                let window = 1000u64;
                for &chunk in &[1usize, 7, 64, 513] {
                    let mut snap = ingest_all(&bits, gamma, chunk);
                    snap.expire_before(bits.len() as u64 - window + 1);
                    let reference = GammaSnapshot::reference(&bits, gamma, window);
                    assert_eq!(
                        snap.blocks().collect::<Vec<_>>(),
                        reference.blocks().collect::<Vec<_>>(),
                        "gamma={gamma} chunk={chunk} density=1/{density_mod}"
                    );
                    assert_eq!(snap.ell(), reference.ell());
                }
            }
        }
    }

    #[test]
    fn lemma_3_2_value_bounds() {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            state >> 40
        };
        for &gamma in &[1u64, 2, 4, 10] {
            for trial in 0..10 {
                let len = 2000 + trial * 137;
                let bits: Vec<bool> = (0..len).map(|_| next() % 3 != 0).collect();
                let window = 700u64;
                let mut snap = ingest_all(&bits, gamma, 53);
                snap.expire_before(bits.len() as u64 - window + 1);
                let m = count_ones_in_window(&bits, window);
                let val = snap.val();
                assert!(
                    val >= m,
                    "lower bound violated: val={val} m={m} gamma={gamma}"
                );
                assert!(
                    val <= m + 2 * gamma,
                    "upper bound violated: val={val} m={m} gamma={gamma}"
                );
                assert!(snap.ell() < gamma.max(2), "ell must stay below gamma");
            }
        }
    }

    #[test]
    fn gamma_one_is_exact() {
        let bits: Vec<bool> = (0..3000).map(|i| i % 5 == 0 || i % 7 == 3).collect();
        let window = 800u64;
        let mut snap = ingest_all(&bits, 1, 97);
        snap.expire_before(bits.len() as u64 - window + 1);
        assert_eq!(snap.val(), count_ones_in_window(&bits, window));
    }

    #[test]
    fn decrement_reduces_value_exactly() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        let snap0 = ingest_all(&bits, 4, 100);
        for r in [0u64, 1, 3, 4, 5, 17, 100, 999] {
            let mut snap = snap0.clone();
            let before = snap.val();
            snap.decrement(r);
            assert_eq!(snap.val(), before.saturating_sub(r), "r={r}");
            assert!(snap.ell() < 4);
        }
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let bits = vec![true; 50];
        let mut snap = ingest_all(&bits, 4, 10);
        snap.decrement(10_000);
        assert_eq!(snap.val(), 0);
        assert_eq!(snap.num_blocks(), 0);
    }

    #[test]
    fn expire_before_is_monotone() {
        let bits: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
        let mut snap = ingest_all(&bits, 5, 100);
        let v0 = snap.val();
        snap.expire_before(500);
        let v1 = snap.val();
        snap.expire_before(900);
        let v2 = snap.val();
        assert!(v0 >= v1 && v1 >= v2);
    }

    #[test]
    fn val_if_expired_matches_mutating_expire() {
        let bits: Vec<bool> = (0..3000).map(|i| (i * 31) % 4 == 0).collect();
        let snap = ingest_all(&bits, 3, 71);
        for start in [1u64, 100, 1500, 2500, 3500] {
            let mut clone = snap.clone();
            clone.expire_before(start);
            assert_eq!(
                snap.val_if_expired_before(start),
                clone.val(),
                "start={start}"
            );
        }
    }

    #[test]
    fn truncate_keeps_newest_blocks() {
        let bits = vec![true; 300];
        let mut snap = ingest_all(&bits, 3, 50);
        let total_blocks = snap.num_blocks();
        assert!(total_blocks > 10);
        let newest: Vec<u64> = snap.blocks().skip(total_blocks - 10).collect();
        let dropped = snap.truncate_to(10);
        assert_eq!(snap.num_blocks(), 10);
        assert_eq!(snap.blocks().collect::<Vec<_>>(), newest);
        assert!(dropped.is_some());
        assert!(dropped.unwrap() < newest[0]);
    }

    #[test]
    fn zero_length_and_zero_ones_segments_are_noops() {
        let mut snap = GammaSnapshot::new(3);
        snap.ingest(&CompactedSegment::zeros(100), 0);
        assert_eq!(snap.val(), 0);
        snap.ingest(&CompactedSegment::from_bits(&[]), 100);
        assert_eq!(snap.val(), 0);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn zero_gamma_rejected() {
        let _ = GammaSnapshot::new(0);
    }
}
