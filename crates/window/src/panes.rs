//! Boundary-aligned pane rings: the sliding-window-of-summaries substrate.
//!
//! A *pane* is the slice of a stream between two consecutive window
//! boundaries (cut by `psfa_stream::WindowFence` in the engine). A
//! [`PaneRing`] keeps the most recent `k` **sealed** panes — each carrying
//! its item count and an arbitrary per-pane summary — so that "the last `k`
//! panes" is a boundary-aligned sliding window over whatever the summaries
//! aggregate. Sealing pane `k + 1` evicts the oldest pane, which is all the
//! window maintenance there is: no per-item expiry, no timestamps inside
//! the summaries.
//!
//! The ring is deliberately generic over the summary type: `psfa-freq`
//! instantiates it with mergeable Misra–Gries summaries for sliding-window
//! frequency estimation, but any mergeable aggregate (sums, sketches,
//! distinct counters) slots in the same way.
//!
//! ```
//! use psfa_window::panes::PaneRing;
//!
//! // A 3-pane window of per-pane item sums.
//! let mut ring: PaneRing<u64> = PaneRing::new(3);
//! for pane in 1..=5u64 {
//!     ring.seal(10, pane * 100); // 10 items, summary = pane * 100
//! }
//! assert_eq!(ring.sealed_seq(), 5);
//! assert_eq!(ring.len(), 3); // panes 3, 4, 5 — 1 and 2 were evicted
//! assert_eq!(ring.window_items(), 30);
//! assert_eq!(ring.oldest_seq(), Some(3));
//! let sums: Vec<u64> = ring.panes().map(|p| p.summary).collect();
//! assert_eq!(sums, vec![300, 400, 500]);
//! ```

use std::collections::VecDeque;

/// One sealed pane: the summary of the items between two consecutive
/// window boundaries, tagged with the boundary sequence that sealed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pane<T> {
    /// Sequence number of the boundary that sealed this pane (1-based;
    /// pane `t` covers the items between boundaries `t − 1` and `t`).
    pub seq: u64,
    /// Number of items the summary covers.
    pub items: u64,
    /// The per-pane summary.
    pub summary: T,
}

/// A bounded ring of the most recent sealed panes (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaneRing<T> {
    capacity: usize,
    /// Sealed panes, oldest first; sequence numbers are consecutive and
    /// end at `sealed`.
    panes: VecDeque<Pane<T>>,
    /// Sequence number of the newest sealed pane (`0` before the first).
    sealed: u64,
}

impl<T> PaneRing<T> {
    /// Creates an empty ring keeping at most `capacity` sealed panes.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a pane ring needs at least one pane");
        Self {
            capacity,
            panes: VecDeque::with_capacity(capacity),
            sealed: 0,
        }
    }

    /// Creates an empty ring that continues numbering after boundary
    /// `seq`: the next [`PaneRing::seal`] produces pane `seq + 1`. Used
    /// when a restarted worker resumes from a snapshot whose pane
    /// contents are tracked elsewhere but whose boundary fence keeps
    /// counting — the sequence numbers must stay aligned with the
    /// engine-wide fence even though the ring itself starts empty.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn resume_after(capacity: usize, seq: u64) -> Self {
        assert!(capacity >= 1, "a pane ring needs at least one pane");
        Self {
            capacity,
            panes: VecDeque::with_capacity(capacity),
            sealed: seq,
        }
    }

    /// Rebuilds a ring from previously sealed panes (oldest first), e.g.
    /// decoded from a persisted snapshot. Returns `None` if the panes are
    /// not consecutively numbered, exceed `capacity`, or contain `seq 0`.
    pub fn restore(capacity: usize, panes: Vec<Pane<T>>) -> Option<Self> {
        if capacity == 0 || panes.len() > capacity {
            return None;
        }
        for pair in panes.windows(2) {
            if pair[1].seq != pair[0].seq + 1 {
                return None;
            }
        }
        if panes.first().is_some_and(|p| p.seq == 0) {
            return None;
        }
        let sealed = panes.last().map_or(0, |p| p.seq);
        Some(Self {
            capacity,
            panes: panes.into(),
            sealed,
        })
    }

    /// Maximum number of sealed panes retained (`k`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sealed panes currently held (`≤ capacity`).
    pub fn len(&self) -> usize {
        self.panes.len()
    }

    /// True before the first pane is sealed.
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty()
    }

    /// Sequence number of the newest sealed pane (`0` before the first).
    pub fn sealed_seq(&self) -> u64 {
        self.sealed
    }

    /// Sequence number of the oldest retained pane.
    pub fn oldest_seq(&self) -> Option<u64> {
        self.panes.front().map(|p| p.seq)
    }

    /// Total items covered by the retained panes — the item count of the
    /// boundary-aligned window.
    pub fn window_items(&self) -> u64 {
        self.panes.iter().map(|p| p.items).sum()
    }

    /// Seals one pane, evicting the oldest if the ring is full, and
    /// returns the new pane's sequence number.
    pub fn seal(&mut self, items: u64, summary: T) -> u64 {
        self.sealed += 1;
        if self.panes.len() == self.capacity {
            self.panes.pop_front();
        }
        self.panes.push_back(Pane {
            seq: self.sealed,
            items,
            summary,
        });
        self.sealed
    }

    /// Iterates the retained panes, oldest first.
    pub fn panes(&self) -> impl Iterator<Item = &Pane<T>> {
        self.panes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealing_evicts_beyond_capacity() {
        let mut ring: PaneRing<&str> = PaneRing::new(2);
        assert!(ring.is_empty());
        assert_eq!(ring.seal(5, "a"), 1);
        assert_eq!(ring.seal(7, "b"), 2);
        assert_eq!(ring.seal(9, "c"), 3);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.window_items(), 16);
        assert_eq!(ring.oldest_seq(), Some(2));
        assert_eq!(ring.sealed_seq(), 3);
        let kept: Vec<&str> = ring.panes().map(|p| p.summary).collect();
        assert_eq!(kept, vec!["b", "c"]);
    }

    #[test]
    fn restore_validates_consecutive_sequences() {
        let pane = |seq| Pane {
            seq,
            items: 1,
            summary: (),
        };
        let ring = PaneRing::restore(3, vec![pane(4), pane(5)]).expect("valid");
        assert_eq!(ring.sealed_seq(), 5);
        assert_eq!(ring.len(), 2);
        assert!(PaneRing::restore(3, vec![pane(4), pane(6)]).is_none());
        assert!(PaneRing::restore(1, vec![pane(1), pane(2)]).is_none());
        assert!(PaneRing::restore(2, vec![pane(0)]).is_none());
        assert!(PaneRing::restore(0, Vec::<Pane<()>>::new()).is_none());
        let empty = PaneRing::<()>::restore(2, Vec::new()).expect("empty ok");
        assert_eq!(empty.sealed_seq(), 0);
    }

    #[test]
    fn restored_ring_continues_the_sequence() {
        let ring = PaneRing::restore(
            2,
            vec![Pane {
                seq: 9,
                items: 3,
                summary: 'x',
            }],
        )
        .unwrap();
        let mut ring = ring;
        assert_eq!(ring.seal(4, 'y'), 10);
        assert_eq!(ring.oldest_seq(), Some(9));
    }
}
