//! The (σ, λ) space-bounded block counter (SBBC) of Theorem 3.4.
//!
//! An SBBC maintains a λ/2-snapshot of the stream together with the coverage
//! bookkeeping `(t, r)`: `t` is the total stream length ingested so far and
//! `r` is the size of the suffix window the snapshot currently covers.
//! The counter targets a window of size `n` but is allowed to *truncate* its
//! coverage to some `r < n` when the snapshot would otherwise exceed the
//! space cap σ; a query in that state reports [`QueryResult::Overflowed`],
//! which certifies that the window contains at least `σ·λ` ones.
//!
//! Operations (matching the paper's interface):
//!
//! * [`Sbbc::new`] — create a counter.
//! * [`Sbbc::advance`] — ingest a minibatch encoded as a
//!   [`CompactedSegment`]; work `O(min{σ, m/λ} + ‖T‖/λ)`.
//! * [`Sbbc::query`] — return the snapshot (or `Overflowed`); `O(1)` work
//!   for the value itself.
//! * [`Sbbc::decrement`] — logically turn the latest `r` ones into zeros,
//!   used by the sliding-window frequency-estimation algorithms to mimic
//!   Misra–Gries decrements.

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::CompactedSegment;

use crate::snapshot::GammaSnapshot;

/// Type tag for encoded SBBCs (see `psfa_primitives::codec`).
const TAG: u8 = 0x02;
const VERSION: u8 = 1;

/// Result of querying an [`Sbbc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryResult {
    /// The counter had to truncate its coverage below the target window; the
    /// true count of ones in the window is at least `σ·λ`.
    Overflowed,
    /// The snapshot value `m̂`, satisfying `m ≤ m̂ ≤ m + λ` (Corollary 3.5).
    Estimate(u64),
}

impl QueryResult {
    /// The estimate, or `None` if the counter overflowed.
    pub fn estimate(self) -> Option<u64> {
        match self {
            QueryResult::Overflowed => None,
            QueryResult::Estimate(v) => Some(v),
        }
    }
}

/// A (σ, λ) space-bounded block counter over a sliding window of size `n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sbbc {
    /// Space cap: maximum number of sampled blocks retained is `2σ + 2`.
    sigma: u64,
    /// Additive error budget; the internal snapshot uses γ = λ/2.
    lambda: u64,
    /// Target window size.
    n: u64,
    /// Total stream length ingested.
    t: u64,
    /// Size of the suffix window currently covered by the snapshot.
    r: u64,
    snapshot: GammaSnapshot,
}

impl Sbbc {
    /// Creates a new `(σ, λ)`-SBBC for a window of size `n`.
    ///
    /// `λ` must be an even integer `≥ 2` (the snapshot granularity is
    /// `γ = λ/2`); σ ≥ 1.
    ///
    /// # Panics
    /// Panics if `lambda` is odd or `< 2`, if `sigma == 0`, or if `n == 0`.
    pub fn new(sigma: u64, lambda: u64, n: u64) -> Self {
        assert!(
            lambda >= 2 && lambda.is_multiple_of(2),
            "lambda must be an even integer >= 2"
        );
        assert!(sigma >= 1, "sigma must be at least 1");
        assert!(n >= 1, "window size must be at least 1");
        Self {
            sigma,
            lambda,
            n,
            t: 0,
            r: 0,
            snapshot: GammaSnapshot::new(lambda / 2),
        }
    }

    /// Creates an SBBC with an effectively unlimited space cap (σ = ∞), as
    /// used by the basic sliding-window frequency-estimation algorithm
    /// (Theorem 5.5).
    pub fn unbounded(lambda: u64, n: u64) -> Self {
        Self::new(u64::MAX / (2 * lambda.max(2)), lambda, n)
    }

    /// Marks the (so far unobserved) history of this counter as known-zero,
    /// so that the counter is considered to cover the full window from the
    /// start. This is the right initialisation for per-item counters created
    /// the first time an item appears: positions before the counter's
    /// creation genuinely contain no occurrences of the item.
    pub fn assume_zero_history(mut self) -> Self {
        self.r = self.n;
        self
    }

    /// The additive error budget λ.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// The space cap σ.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The target window size n.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Total stream length ingested so far.
    pub fn stream_len(&self) -> u64 {
        self.t
    }

    /// Number of sampled blocks currently stored — the dominant part of the
    /// counter's memory footprint, used by the space experiments.
    pub fn space_blocks(&self) -> usize {
        self.snapshot.num_blocks()
    }

    /// Maximum number of sampled blocks the counter may retain.
    ///
    /// The paper trims once the block sequence reaches `2σ + 1` entries; we
    /// retain up to `2σ + 2` so that an overflowed query certifies
    /// `m ≥ σ·λ` exactly (see DESIGN.md): the kept blocks alone witness
    /// `γ(2σ + 2) − 2γ = σλ` ones inside the covered suffix.
    fn capacity(&self) -> u64 {
        2 * self.sigma + 2
    }

    /// Ingests a minibatch encoded as a CSS (Theorem 3.4's `advance`).
    pub fn advance(&mut self, segment: &CompactedSegment) {
        self.snapshot.ingest(segment, self.t);
        self.t += segment.len();
        self.r = (self.r + segment.len()).min(self.n);
        // Expire blocks that fell out of the covered window.
        let window_start = self.t.saturating_sub(self.r) + 1;
        self.snapshot.expire_before(window_start);
        // Enforce the space cap by truncating coverage.
        if self.snapshot.num_blocks() as u64 > self.capacity() {
            let dropped = self.snapshot.truncate_to(self.capacity() as usize);
            if let Some(q) = dropped {
                // Coverage now starts right after the newest dropped block.
                let gamma = self.lambda / 2;
                self.r = self.t.saturating_sub(q * gamma);
            }
        }
    }

    /// Queries the counter (Theorem 3.4's `query`).
    pub fn query(&self) -> QueryResult {
        if self.r < self.n.min(self.t) {
            QueryResult::Overflowed
        } else {
            QueryResult::Estimate(self.snapshot.val())
        }
    }

    /// The counter value, or `None` when overflowed (Corollary 3.5's `m̂`).
    pub fn value(&self) -> Option<u64> {
        self.query().estimate()
    }

    /// A read-only view of the maintained λ/2-snapshot.
    pub fn snapshot(&self) -> &GammaSnapshot {
        &self.snapshot
    }

    /// The value this counter would report after the window slides forward by
    /// `advance_len` positions *without* ingesting any new ones. Used by the
    /// survivor-prediction step of the work-efficient sliding-window
    /// algorithm (Section 5.3.3) to evaluate `val(shrink(Γ.query()))` cheaply
    /// and without mutation.
    pub fn value_after_slide(&self, advance_len: u64) -> Option<u64> {
        if self.r < self.n.min(self.t) {
            return None;
        }
        let new_t = self.t + advance_len;
        let window_start = new_t.saturating_sub(self.n) + 1;
        Some(self.snapshot.val_if_expired_before(window_start))
    }

    /// Logically converts the latest `count` ones into zeros (Theorem 3.4's
    /// `decrement`). Saturates at zero.
    pub fn decrement(&mut self, count: u64) {
        self.snapshot.decrement(count);
    }

    /// Canonical binary encoding, appended to `w` (consumed by the
    /// sliding-window estimators' `encode` and ultimately by `psfa-store`).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_u64(self.sigma);
        w.put_u64(self.lambda);
        w.put_u64(self.n);
        w.put_u64(self.t);
        w.put_u64(self.r);
        self.snapshot.encode_into(w);
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a counter previously written by [`Sbbc::encode_into`],
    /// validating every constructor invariant (never panics on corrupted
    /// input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let sigma = r.get_u64()?;
        let lambda = r.get_u64()?;
        let n = r.get_u64()?;
        let t = r.get_u64()?;
        let rr = r.get_u64()?;
        if sigma == 0 {
            return Err(CodecError::Invalid("sbbc: sigma must be >= 1"));
        }
        if lambda < 2 || !lambda.is_multiple_of(2) {
            return Err(CodecError::Invalid("sbbc: lambda must be even and >= 2"));
        }
        if n == 0 {
            return Err(CodecError::Invalid("sbbc: window must be >= 1"));
        }
        if rr > n {
            return Err(CodecError::Invalid("sbbc: coverage r must not exceed n"));
        }
        let snapshot = GammaSnapshot::decode_from(r)?;
        if snapshot.gamma() != lambda / 2 {
            return Err(CodecError::Invalid(
                "sbbc: snapshot gamma must equal lambda/2",
            ));
        }
        Ok(Self {
            sigma,
            lambda,
            n,
            t,
            r: rr,
            snapshot,
        })
    }

    /// Decodes a counter from a standalone buffer produced by
    /// [`Sbbc::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple deterministic pseudo-random bit generator for tests.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn bit(&mut self, one_in: u64) -> bool {
            self.next().is_multiple_of(one_in)
        }
    }

    fn window_count(bits: &[bool], n: u64) -> u64 {
        let start = bits.len().saturating_sub(n as usize);
        bits[start..].iter().filter(|&&b| b).count() as u64
    }

    #[test]
    fn corollary_3_5_estimate_bounds() {
        // For several (σ, λ) settings and densities, the estimate must satisfy
        // m <= m̂ <= m + λ whenever the counter has not overflowed.
        for &(sigma, lambda) in &[(1000u64, 2u64), (1000, 8), (1000, 32), (1000, 128)] {
            for &one_in in &[1u64, 2, 5, 20] {
                let n = 2_000u64;
                let mut sbbc = Sbbc::new(sigma, lambda, n);
                let mut rng = Lcg(sigma * 31 + lambda * 7 + one_in);
                let mut bits: Vec<bool> = Vec::new();
                for batch in 0..40 {
                    let mu = 100 + (batch * 37) % 400;
                    let piece: Vec<bool> = (0..mu).map(|_| rng.bit(one_in)).collect();
                    sbbc.advance(&CompactedSegment::from_bits(&piece));
                    bits.extend_from_slice(&piece);
                    let m = window_count(&bits, n);
                    match sbbc.query() {
                        QueryResult::Estimate(est) => {
                            assert!(est >= m, "est {est} < m {m} (λ={lambda}, 1/{one_in})");
                            assert!(
                                est <= m + lambda,
                                "est {est} > m + λ = {} (λ={lambda}, 1/{one_in})",
                                m + lambda
                            );
                        }
                        QueryResult::Overflowed => {
                            panic!("σ=1000 should never overflow in this test");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn overflow_certifies_many_ones() {
        // Small σ on a dense stream: once the counter reports Overflowed, the
        // true window count must be at least σ·λ (Theorem 3.4).
        let sigma = 4u64;
        let lambda = 8u64;
        let n = 10_000u64;
        let mut sbbc = Sbbc::new(sigma, lambda, n);
        let mut bits: Vec<bool> = Vec::new();
        let mut rng = Lcg(5);
        let mut saw_overflow = false;
        for _ in 0..60 {
            let piece: Vec<bool> = (0..200).map(|_| rng.bit(2)).collect();
            sbbc.advance(&CompactedSegment::from_bits(&piece));
            bits.extend_from_slice(&piece);
            if let QueryResult::Overflowed = sbbc.query() {
                saw_overflow = true;
                let m = window_count(&bits, n);
                assert!(
                    m >= sigma * lambda,
                    "overflowed but m = {m} < σλ = {}",
                    sigma * lambda
                );
            }
        }
        assert!(saw_overflow, "test should exercise the overflow path");
    }

    #[test]
    fn space_respects_sigma_cap() {
        let sigma = 10u64;
        let lambda = 4u64;
        let mut sbbc = Sbbc::new(sigma, lambda, 100_000);
        let mut rng = Lcg(77);
        for _ in 0..50 {
            let piece: Vec<bool> = (0..1000).map(|_| rng.bit(2)).collect();
            sbbc.advance(&CompactedSegment::from_bits(&piece));
            assert!(
                sbbc.space_blocks() as u64 <= 2 * sigma + 2,
                "space cap violated: {} blocks",
                sbbc.space_blocks()
            );
        }
    }

    #[test]
    fn space_is_proportional_to_ones_over_lambda() {
        // With a huge σ, the number of stored blocks must be O(m / λ).
        let lambda = 64u64;
        let n = 50_000u64;
        let mut sbbc = Sbbc::unbounded(lambda, n);
        let mut bits = Vec::new();
        let mut rng = Lcg(3);
        for _ in 0..50 {
            let piece: Vec<bool> = (0..500).map(|_| rng.bit(4)).collect();
            sbbc.advance(&CompactedSegment::from_bits(&piece));
            bits.extend_from_slice(&piece);
        }
        let m = window_count(&bits, n);
        let blocks = sbbc.space_blocks() as u64;
        assert!(
            blocks <= 2 * m / lambda + 2,
            "blocks {blocks} vs 2m/λ = {}",
            2 * m / lambda
        );
    }

    #[test]
    fn no_overflow_before_window_fills_with_zero_history() {
        let mut sbbc = Sbbc::new(4, 4, 1000).assume_zero_history();
        sbbc.advance(&CompactedSegment::from_bits(&[true, false, true]));
        let est = sbbc
            .value()
            .expect("zero-history counter must not overflow");
        assert!((2..=2 + 4).contains(&est));
    }

    #[test]
    fn partial_stream_window_semantics() {
        // Before the stream reaches n elements, the "window" is the whole
        // stream so far and the counter must not spuriously overflow.
        let mut sbbc = Sbbc::new(1000, 4, 1_000_000);
        let piece: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        sbbc.advance(&CompactedSegment::from_bits(&piece));
        let m = piece.iter().filter(|&&b| b).count() as u64;
        let est = sbbc.value().expect("must not overflow");
        assert!(est >= m && est <= m + 4);
    }

    #[test]
    fn decrement_then_query_reduces_estimate() {
        let mut sbbc = Sbbc::unbounded(4, 10_000);
        let bits: Vec<bool> = (0..2000).map(|i| i % 2 == 0).collect();
        sbbc.advance(&CompactedSegment::from_bits(&bits));
        let before = sbbc.value().unwrap();
        sbbc.decrement(100);
        let after = sbbc.value().unwrap();
        assert_eq!(after, before - 100);
        // Decrementing far past the value saturates at zero.
        sbbc.decrement(u64::MAX / 4);
        assert_eq!(sbbc.value().unwrap(), 0);
    }

    #[test]
    fn value_after_slide_matches_actual_slide() {
        let lambda = 8u64;
        let n = 1500u64;
        let mut rng = Lcg(123);
        let mut sbbc = Sbbc::unbounded(lambda, n);
        let mut bits = Vec::new();
        for _ in 0..20 {
            let piece: Vec<bool> = (0..300).map(|_| rng.bit(3)).collect();
            sbbc.advance(&CompactedSegment::from_bits(&piece));
            bits.extend_from_slice(&piece);
        }
        for &slide in &[0u64, 10, 100, 500, 1499] {
            let predicted = sbbc.value_after_slide(slide).unwrap();
            let mut clone = sbbc.clone();
            clone.advance(&CompactedSegment::zeros(slide));
            let actual = clone.value().unwrap();
            assert_eq!(predicted, actual, "slide={slide}");
        }
    }

    #[test]
    fn advance_with_empty_segment_is_noop_on_value() {
        let mut sbbc = Sbbc::new(10, 4, 100);
        sbbc.advance(&CompactedSegment::from_bits(&[true, true, false]));
        let v = sbbc.value().unwrap();
        sbbc.advance(&CompactedSegment::zeros(0));
        assert_eq!(sbbc.value().unwrap(), v);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_state_and_behaviour() {
        let mut rng = Lcg(11);
        let mut sbbc = Sbbc::new(6, 8, 3_000).assume_zero_history();
        for _ in 0..25 {
            let piece: Vec<bool> = (0..400).map(|_| rng.bit(3)).collect();
            sbbc.advance(&CompactedSegment::from_bits(&piece));
        }
        sbbc.decrement(17);
        let decoded = Sbbc::decode(&sbbc.encode()).expect("roundtrip");
        assert_eq!(decoded, sbbc);
        // Behavioural equality: both continue identically.
        let mut a = sbbc.clone();
        let mut b = decoded;
        let piece: Vec<bool> = (0..500).map(|_| rng.bit(2)).collect();
        a.advance(&CompactedSegment::from_bits(&piece));
        b.advance(&CompactedSegment::from_bits(&piece));
        assert_eq!(a, b);
        assert_eq!(a.query(), b.query());
    }

    #[test]
    fn decode_rejects_truncation_and_corruption_without_panic() {
        let mut sbbc = Sbbc::unbounded(4, 1_000);
        sbbc.advance(&CompactedSegment::from_bits(&[true; 64]));
        let bytes = sbbc.encode();
        // Every truncation point must be a typed error, not a panic.
        for cut in 0..bytes.len() {
            assert!(Sbbc::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Flipping any single byte must never panic (it may still decode to
        // some other valid counter, e.g. a different t).
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0xFF;
            let _ = Sbbc::decode(&copy);
        }
        // A zeroed lambda is structurally invalid.
        let mut copy = bytes.clone();
        copy[10..18].fill(0); // lambda field (tag, version, sigma, then lambda)
        assert!(Sbbc::decode(&copy).is_err());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_lambda_rejected() {
        let _ = Sbbc::new(10, 3, 100);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn zero_sigma_rejected() {
        let _ = Sbbc::new(0, 4, 100);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = Sbbc::new(1, 4, 0);
    }
}
