//! Basic counting over a sliding window (Theorem 4.1).
//!
//! The basic-counting structure answers "how many 1s are in the last `n`
//! stream positions?" with relative error at most ε using `O(ε⁻¹ log n)`
//! words. Following the paper (and Lee–Ting), it keeps a geometric ladder of
//! space-bounded block counters Γ₀, Γ₁, …, Γ_k where Γ_i is a
//! `(σ, λ_i)`-SBBC with σ = ⌈2/ε⌉ and λ_i halving at each level down to the
//! exact level λ = 2 (γ = 1, which counts exactly). A query walks from the
//! finest level upwards and reports the first counter that has not
//! overflowed; the overflow of the next-finer level certifies that the true
//! count is large enough for the chosen level's additive error to be within
//! ε relative error.
//!
//! A minibatch is incorporated by advancing **all** levels in parallel
//! (`rayon`), giving `O(S + µ)` work and polylogarithmic depth per minibatch.

use rayon::prelude::*;

use psfa_primitives::CompactedSegment;

use crate::sbbc::{QueryResult, Sbbc};

/// ε-relative-error basic counting over a count-based sliding window.
#[derive(Debug, Clone)]
pub struct BasicCounter {
    epsilon: f64,
    n: u64,
    /// Ladder of counters, coarsest (largest λ) first, finest (λ = 2) last.
    levels: Vec<Sbbc>,
}

impl BasicCounter {
    /// Creates a basic counter for window size `n` and relative error `ε`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `n == 0`.
    pub fn new(epsilon: f64, n: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(n >= 1, "window size must be at least 1");
        let sigma = (2.0 / epsilon).ceil() as u64;
        // λ₀ = largest power of two ≤ εn (at least 2); levels halve down to 2.
        let target = (epsilon * n as f64).max(2.0);
        let mut lambda0 = 2u64;
        while (lambda0 * 2) as f64 <= target {
            lambda0 *= 2;
        }
        let mut levels = Vec::new();
        let mut lambda = lambda0;
        loop {
            levels.push(Sbbc::new(sigma, lambda, n));
            if lambda == 2 {
                break;
            }
            lambda /= 2;
        }
        Self { epsilon, n, levels }
    }

    /// The relative-error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The window size n.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Number of SBBC levels maintained (Θ(log(εn))).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total number of sampled blocks stored across all levels — the dominant
    /// memory footprint, `O(ε⁻¹ log n)` by Theorem 4.1.
    pub fn space_blocks(&self) -> usize {
        self.levels.iter().map(Sbbc::space_blocks).sum()
    }

    /// Total stream length ingested so far.
    pub fn stream_len(&self) -> u64 {
        self.levels.first().map_or(0, Sbbc::stream_len)
    }

    /// Incorporates a minibatch given as a compacted segment, advancing every
    /// level in parallel.
    pub fn advance(&mut self, segment: &CompactedSegment) {
        self.levels
            .par_iter_mut()
            .for_each(|level| level.advance(segment));
    }

    /// Convenience wrapper: incorporates a minibatch given as a bit slice.
    pub fn advance_bits(&mut self, bits: &[bool]) {
        self.advance(&CompactedSegment::from_bits(bits));
    }

    /// Returns the ε-approximate count of 1s in the current window.
    ///
    /// The estimate `m̂` satisfies `m ≤ m̂ ≤ (1 + ε)·m` where `m` is the true
    /// count (Theorem 4.1).
    pub fn estimate(&self) -> u64 {
        // Walk from the finest level to the coarsest and return the first
        // non-overflowed estimate. Γ₀ can never overflow because
        // σ·λ₀ ≥ (2/ε)(εn/2) = n ≥ m.
        for level in self.levels.iter().rev() {
            if let QueryResult::Estimate(v) = level.query() {
                return v;
            }
        }
        unreachable!("the coarsest SBBC can never overflow (σ·λ₀ ≥ n)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn window_count(bits: &[bool], n: u64) -> u64 {
        let start = bits.len().saturating_sub(n as usize);
        bits[start..].iter().filter(|&&b| b).count() as u64
    }

    fn drive(epsilon: f64, n: u64, batches: usize, mu: usize, one_in: u64, seed: u64) {
        let mut counter = BasicCounter::new(epsilon, n);
        let mut rng = Lcg(seed);
        let mut bits: Vec<bool> = Vec::new();
        for _ in 0..batches {
            let piece: Vec<bool> = (0..mu).map(|_| rng.next().is_multiple_of(one_in)).collect();
            counter.advance_bits(&piece);
            bits.extend_from_slice(&piece);
            let m = window_count(&bits, n);
            let est = counter.estimate();
            assert!(est >= m, "estimate {est} below true count {m}");
            let bound = (m as f64 * (1.0 + epsilon)).ceil() as u64 + 1;
            assert!(
                est <= bound,
                "estimate {est} exceeds (1+ε)m = {bound} (ε={epsilon}, m={m})"
            );
        }
    }

    #[test]
    fn relative_error_dense_stream() {
        drive(0.1, 4096, 30, 500, 1, 1);
        drive(0.1, 4096, 30, 500, 2, 2);
    }

    #[test]
    fn relative_error_sparse_stream() {
        drive(0.1, 4096, 30, 500, 50, 3);
        drive(0.25, 2048, 30, 300, 10, 4);
    }

    #[test]
    fn relative_error_fine_epsilon() {
        drive(0.02, 8192, 20, 1000, 3, 5);
    }

    #[test]
    fn exact_for_tiny_counts() {
        // With very few ones in the window the finest (exact) level answers.
        let mut counter = BasicCounter::new(0.1, 10_000);
        let mut bits = vec![false; 5000];
        bits[10] = true;
        bits[4999] = true;
        counter.advance_bits(&bits);
        assert_eq!(counter.estimate(), 2);
    }

    #[test]
    fn zero_stream_reports_zero() {
        let mut counter = BasicCounter::new(0.1, 1000);
        counter.advance_bits(&vec![false; 3000]);
        assert_eq!(counter.estimate(), 0);
    }

    #[test]
    fn all_ones_stream_reports_window_size_approximately() {
        let n = 2048u64;
        let mut counter = BasicCounter::new(0.05, n);
        counter.advance_bits(&vec![true; 5000]);
        let est = counter.estimate();
        assert!(est >= n && est as f64 <= n as f64 * 1.05 + 1.0);
    }

    #[test]
    fn space_is_bounded_by_eps_inverse_log_n() {
        let epsilon = 0.05;
        let n = 1 << 16;
        let mut counter = BasicCounter::new(epsilon, n);
        let mut rng = Lcg(9);
        for _ in 0..40 {
            let piece: Vec<bool> = (0..2000).map(|_| rng.next().is_multiple_of(2)).collect();
            counter.advance_bits(&piece);
        }
        let levels = counter.num_levels() as f64;
        let sigma = (2.0 / epsilon).ceil();
        let bound = levels * (2.0 * sigma + 2.0);
        assert!(
            (counter.space_blocks() as f64) <= bound,
            "space {} exceeds per-level cap total {bound}",
            counter.space_blocks()
        );
        // And the number of levels is logarithmic in n.
        assert!(levels <= (n as f64).log2() + 1.0);
    }

    #[test]
    fn window_smaller_than_minibatch() {
        // Minibatches larger than the window must still give correct answers.
        let n = 256u64;
        let mut counter = BasicCounter::new(0.1, n);
        let mut rng = Lcg(11);
        let mut bits = Vec::new();
        for _ in 0..5 {
            let piece: Vec<bool> = (0..1000).map(|_| rng.next().is_multiple_of(3)).collect();
            counter.advance_bits(&piece);
            bits.extend_from_slice(&piece);
            let m = window_count(&bits, n);
            let est = counter.estimate();
            assert!(est >= m && est as f64 <= m as f64 * 1.1 + 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        let _ = BasicCounter::new(1.5, 100);
    }
}
