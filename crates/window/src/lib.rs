//! # psfa-window
//!
//! Sliding-window counting substrate of the PSFA reproduction: Sections 3
//! and 4 of Tangwongsan, Tirthapura and Wu, *Parallel Streaming
//! Frequency-Based Aggregates* (SPAA 2014).
//!
//! * [`snapshot`] — the γ-snapshot deterministic sampling synopsis of Lee and
//!   Ting (Definition 3.1, Lemmas 3.2–3.3) with parallel minibatch ingestion.
//! * [`sbbc`] — the (σ, λ) **space-bounded block counter** of Theorem 3.4:
//!   an approximate count of the 1 bits in a sliding window with additive
//!   error λ, a hard space cap σ, and `advance` / `query` / `decrement`
//!   operations.
//! * [`basic_counting`] — Theorem 4.1: relative-error-ε basic counting over a
//!   count-based sliding window using a geometric ladder of SBBCs in
//!   `O(ε⁻¹ log n)` space.
//! * [`sum`] — Theorem 4.2: the sliding-window sum of integers in `[0, R]`
//!   via one basic counter per bit position.
//! * [`panes`] — boundary-aligned pane rings: a bounded ring of sealed
//!   per-pane summaries, the substrate `psfa-freq` and the engine use for
//!   globally consistent cross-shard sliding windows.
//!
//! Positions are 1-indexed along the stream (matching the paper); minibatch
//! contents arrive as [`CompactedSegment`]s whose positions are 0-indexed
//! within the segment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basic_counting;
pub mod panes;
pub mod sbbc;
pub mod snapshot;
pub mod sum;

pub use basic_counting::BasicCounter;
pub use panes::{Pane, PaneRing};
pub use sbbc::{QueryResult, Sbbc};
pub use snapshot::GammaSnapshot;
pub use sum::WindowedSum;

pub use psfa_primitives::CompactedSegment;
