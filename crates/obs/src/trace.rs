//! A bounded lock-free event-trace ring.
//!
//! [`TraceRing`] records fixed-size, sequence-stamped control-plane events
//! (boundary cuts, epoch publishes, flushes, hot-key promotions, worker
//! lifecycle) from any thread without locking, overwriting the oldest
//! records when full. Readers drain recent events without ever blocking a
//! writer.
//!
//! ## How writers and readers avoid tearing
//!
//! Each slot is a per-slot **seqlock**. A writer claims its slot for ticket
//! `t` by CASing the slot version from its observed completed (even) value
//! to the odd `2t + 1` (an `AcqRel` RMW, so the payload stores that follow
//! cannot move above the claim), fills the payload, then publishes with a
//! `Release` store of the even `2t + 2`. A reader loads the version with
//! `Acquire`, copies the payload, issues an `Acquire` fence, and re-reads
//! the version: the record is accepted only if both reads agree on the same
//! even value *and* the payload's own sequence stamp matches the version's
//! lap — otherwise the slot was mid-overwrite and the record is simply
//! dropped (the ring is telemetry; a lost record under overwrite races is
//! by design, a *mixed* record is not). Payload words are themselves
//! relaxed atomics, so even a theoretical doomed read is a benign stale
//! value, never undefined behaviour.
//!
//! If a writer finds its claim CAS fails (a slower writer from a previous
//! lap still mid-write, or a faster writer already a lap ahead), it drops
//! its own event rather than spin — writers are therefore wait-free and
//! the ring can never stall a boundary cut or an epoch publish.

use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of control-plane event a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceKind {
    /// A window boundary was cut at global stream position `a` (boundary
    /// sequence number in `b`).
    Boundary,
    /// A shard (`shard`) published a snapshot epoch `a` (trigger reason
    /// index in `b`, see `ObsReport`'s republish counters).
    EpochPublish,
    /// A persistence snapshot of epoch `a` was appended (`b` = bytes).
    EpochPersist,
    /// A background flush attempt failed (`a` = total flush failures so
    /// far; successes appear as [`TraceKind::EpochPersist`]).
    Flush,
    /// The router's hot set changed (`a` = promotion epoch, `b` = hot-set
    /// size after the change).
    HotPromote,
    /// Shard worker `shard` started.
    WorkerStart,
    /// Shard worker `shard` exited (`a` = items processed).
    WorkerExit,
    /// Shard worker `shard` panicked and the shard is quarantined
    /// (`a` = restart attempts so far, `b` = last published epoch).
    ShardQuarantined,
    /// Quarantined shard `shard` was restarted from its last published
    /// snapshot (`a` = restart attempts so far, `b` = reseed epoch).
    WorkerRestart,
    /// A persistence flush attempt failed on an I/O error (`a` = total
    /// flush failures so far; successes appear as
    /// [`TraceKind::EpochPersist`]).
    FlushFailed,
}

impl TraceKind {
    fn code(self) -> u64 {
        match self {
            TraceKind::Boundary => 0,
            TraceKind::EpochPublish => 1,
            TraceKind::EpochPersist => 2,
            TraceKind::Flush => 3,
            TraceKind::HotPromote => 4,
            TraceKind::WorkerStart => 5,
            TraceKind::WorkerExit => 6,
            TraceKind::ShardQuarantined => 7,
            TraceKind::WorkerRestart => 8,
            TraceKind::FlushFailed => 9,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => TraceKind::Boundary,
            1 => TraceKind::EpochPublish,
            2 => TraceKind::EpochPersist,
            3 => TraceKind::Flush,
            4 => TraceKind::HotPromote,
            5 => TraceKind::WorkerStart,
            6 => TraceKind::WorkerExit,
            7 => TraceKind::ShardQuarantined,
            8 => TraceKind::WorkerRestart,
            9 => TraceKind::FlushFailed,
            _ => return None,
        })
    }

    /// Short lowercase name (report rendering).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Boundary => "boundary",
            TraceKind::EpochPublish => "epoch_publish",
            TraceKind::EpochPersist => "epoch_persist",
            TraceKind::Flush => "flush",
            TraceKind::HotPromote => "hot_promote",
            TraceKind::WorkerStart => "worker_start",
            TraceKind::WorkerExit => "worker_exit",
            TraceKind::ShardQuarantined => "shard_quarantined",
            TraceKind::WorkerRestart => "worker_restart",
            TraceKind::FlushFailed => "flush_failed",
        }
    }
}

/// One drained trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global ring sequence number (monotone across all writers; gaps mean
    /// overwritten or dropped records).
    pub seq: u64,
    /// Clock timestamp (nanoseconds) captured by the writer.
    pub at_ns: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Shard index the event concerns (`u32::MAX` when not shard-scoped).
    pub shard: u32,
    /// Kind-specific payload (see [`TraceKind`] docs).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

/// Marker for events not scoped to a shard.
pub const NO_SHARD: u32 = u32::MAX;

#[derive(Debug)]
struct Slot {
    /// Seqlock version: `2t + 1` while ticket `t` writes, `2t + 2` once
    /// its record is complete, `0` before first use.
    version: AtomicU64,
    seq: AtomicU64,
    at_ns: AtomicU64,
    kind: AtomicU64,
    shard: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            shard: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Bounded lock-free overwrite-oldest trace ring; see the module docs.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    /// Next ticket to hand out (ticket t → slot `t & mask`).
    head: AtomicU64,
    /// First sequence number not yet returned by `drain` (advanced with
    /// `fetch_max` so concurrent drains never replay records).
    cursor: AtomicU64,
    mask: u64,
    /// Events dropped because a claim CAS failed (writer overlap).
    dropped: AtomicU64,
}

impl TraceRing {
    /// Creates a ring holding `capacity` records (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            cursor: AtomicU64::new(0),
            mask: cap as u64 - 1,
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded (ticket counter; includes overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because two writers overlapped on one slot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an event. Wait-free: claims a ticket, CASes the slot, and
    /// on claim failure drops the event instead of spinning.
    pub fn push(&self, at_ns: u64, kind: TraceKind, shard: u32, a: u64, b: u64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Claim the slot from whatever completed (even) version it last
        // held. An odd version means an older writer is still mid-record;
        // a version above `2·ticket` means a newer lap already claimed
        // past us. Either way we drop our event instead of waiting — one
        // load + one CAS attempt, never a loop.
        let current = slot.version.load(Ordering::Relaxed);
        if current % 2 == 1
            || current > 2 * ticket
            || slot
                .version
                .compare_exchange(current, 2 * ticket + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.seq.store(ticket, Ordering::Relaxed);
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.shard.store(u64::from(shard), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.version.store(2 * ticket + 2, Ordering::Release);
    }

    /// Reads the record for ticket `t`, validating the per-slot seqlock.
    fn read_ticket(&self, ticket: u64) -> Option<TraceEvent> {
        let slot = &self.slots[(ticket & self.mask) as usize];
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 != 2 * ticket + 2 {
            return None; // not yet written, being written, or overwritten
        }
        let seq = slot.seq.load(Ordering::Relaxed);
        let at_ns = slot.at_ns.load(Ordering::Relaxed);
        let kind = slot.kind.load(Ordering::Relaxed);
        let shard = slot.shard.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        let v2 = slot.version.load(Ordering::Relaxed);
        if v2 != v1 || seq != ticket {
            return None; // overwritten mid-read: drop, never mix
        }
        Some(TraceEvent {
            seq,
            at_ns,
            kind: TraceKind::from_code(kind)?,
            shard: shard as u32,
            a,
            b,
        })
    }

    /// Drains every completed record not yet drained, oldest first.
    ///
    /// Concurrent drains partition the records between them (the drain
    /// cursor advances with `fetch_max`); records overwritten before being
    /// drained are lost, which is the overwrite-oldest contract.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.mask + 1;
        let oldest = head.saturating_sub(capacity);
        let from = self.cursor.fetch_max(head, Ordering::AcqRel).max(oldest);
        let mut out = Vec::with_capacity((head - from) as usize);
        for ticket in from..head {
            if let Some(event) = self.read_ticket(ticket) {
                out.push(event);
            }
        }
        out
    }

    /// Copies the most recent `limit` completed records (oldest first)
    /// without advancing the drain cursor.
    pub fn peek(&self, limit: usize) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.mask + 1;
        let from = head.saturating_sub((limit as u64).min(capacity));
        (from..head).filter_map(|t| self.read_ticket(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_in_order() {
        let ring = TraceRing::new(16);
        for i in 0..10u64 {
            ring.push(i * 100, TraceKind::Boundary, 3, i, i + 1);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.at_ns, i as u64 * 100);
            assert_eq!(e.kind, TraceKind::Boundary);
            assert_eq!(e.shard, 3);
            assert_eq!((e.a, e.b), (i as u64, i as u64 + 1));
        }
        // A second drain returns nothing new.
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.push(i, TraceKind::Flush, NO_SHARD, i, 0);
        }
        let events = ring.drain();
        // Only the last `capacity` records survive.
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().seq, 12);
        assert_eq!(events.last().unwrap().seq, 19);
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn peek_does_not_consume() {
        let ring = TraceRing::new(8);
        for i in 0..4u64 {
            ring.push(i, TraceKind::WorkerStart, i as u32, 0, 0);
        }
        assert_eq!(ring.peek(2).len(), 2);
        assert_eq!(ring.drain().len(), 4);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(64));
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        // Payload words are all derived from the writer id
                        // so a mixed record is detectable.
                        let stamp = (u64::from(w) << 32) | i;
                        ring.push(stamp, TraceKind::EpochPublish, w, stamp, !stamp);
                    }
                })
            })
            .collect();
        let reader = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..200 {
                    for e in ring.peek(64) {
                        assert_eq!(e.a, e.at_ns, "torn record: payload mixed across writers");
                        assert_eq!(e.b, !e.a, "torn record: payload mixed across writers");
                        assert_eq!(e.shard, (e.a >> 32) as u32);
                        seen += 1;
                    }
                    std::thread::yield_now();
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(ring.recorded(), 20_000);
        // Every record that survives the final drain is coherent.
        for e in ring.drain() {
            assert_eq!(e.a, e.at_ns);
            assert_eq!(e.b, !e.a);
        }
    }
}
