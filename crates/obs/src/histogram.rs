//! Lock-free log-bucketed histograms for latency and size telemetry.
//!
//! [`AtomicLogHistogram`] follows the `AtomicCountMin` pattern from the
//! PR 5 hot path: a flat slab of `AtomicU64` counters updated with
//! **relaxed** read-modify-writes, so recording a sample from any thread is
//! exactly one `fetch_add(1, Relaxed)` — no locks, no CAS loops, no
//! stronger-than-relaxed ordering on the recording path. Telemetry needs no
//! happens-before edge of its own: readers take an instantaneous *snapshot*
//! whose counts are exact for every sample that happened-before the read
//! via some other synchronisation (a queue send, a snapshot publication)
//! and merely *recent* for in-flight ones.
//!
//! ## Bucketing and error bounds
//!
//! Buckets are log-linear in the HdrHistogram style with
//! [`SUB_BITS`]` = 5` (32 sub-buckets per octave):
//!
//! * values `v < 32` are recorded **exactly** (bucket `v` holds only `v`);
//! * larger values fall in a bucket of width `2^(o-1)` whose lower bound is
//!   at least `32 · 2^(o-1)`, so the **relative bucket width is at most
//!   `2^-SUB_BITS = 1/32 ≈ 3.2 %`**.
//!
//! Percentile extraction reports the **inclusive upper bound** of the
//! bucket containing the requested rank. The estimate is therefore
//! *one-sided*: it never understates the true percentile and overstates it
//! by less than the bucket width — a relative error below `1/32` (zero for
//! values under 32). This matches the one-sided `ε·m` style of every other
//! bound in the workspace: a reported p99 of `x` means the true p99 is in
//! `(x·32/33, x]`.
//!
//! The value range covers all of `u64` in [`NUM_BUCKETS`]` = 1920` buckets
//! (15 KiB of counters). Consecutive buckets are adjacent in memory, so a
//! workload whose samples cluster within a ±12 % band (8 adjacent buckets)
//! keeps its recording traffic on a single cache line.
//!
//! ## Merging
//!
//! Histograms are **mergeable summaries** in the sense the paper uses for
//! its frequency aggregates: [`HistogramSnapshot::merge`] is bucket-wise
//! saturating addition, which is exactly commutative and associative, so
//! per-shard histograms can be recorded independently and combined at query
//! time in any order — the same per-substream-then-merge pattern the engine
//! applies to Misra–Gries summaries, now applied to its own telemetry.
//!
//! Snapshots round-trip through the workspace codec
//! ([`HistogramSnapshot::encode`]/[`HistogramSnapshot::decode`]) as a
//! sparse `(bucket, count)` list with the usual tag+version header and
//! length validation, so persisted benchmark artefacts can carry exact
//! distributions.

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: `2^SUB_BITS` sub-buckets per octave.
///
/// Controls the bucket-error bound: relative bucket width (and therefore
/// the one-sided percentile overestimate) is at most `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (`2^SUB_BITS`). Values below this are exact.
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering every `u64` value.
///
/// Octave 0/1 are the identity range `0..64`; octaves `2..=59` each add
/// [`SUB`] buckets: `64 + 58·32 = 1920`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Codec tag for an encoded [`HistogramSnapshot`].
const HIST_TAG: u8 = 0x4C; // 'L' for log histogram
const HIST_VERSION: u8 = 1;

/// Maps a value to its bucket index (total order preserving).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (top - SUB_BITS + 1) as usize;
    let sub = (v >> (top - SUB_BITS)) - SUB;
    (octave << SUB_BITS) + sub as usize
}

/// Inclusive lower bound of bucket `idx` (the smallest value mapping to it).
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    debug_assert!(idx < NUM_BUCKETS);
    if idx < (2 << SUB_BITS) {
        return idx as u64; // identity range
    }
    let octave = (idx >> SUB_BITS) as u32;
    let sub = (idx as u64) & (SUB - 1);
    (SUB + sub) << (octave - 1)
}

/// Inclusive upper bound of bucket `idx` (the largest value mapping to it).
///
/// This is the value percentile queries report, making them one-sided
/// overestimates (see the module docs for the error bound).
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 < NUM_BUCKETS {
        bucket_low(idx + 1) - 1
    } else {
        u64::MAX
    }
}

/// The standard percentile set reported by the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Percentiles {
    /// Samples recorded.
    pub count: u64,
    /// Median (one-sided bucket upper bound, like all fields below).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded sample's bucket upper bound.
    pub max: u64,
}

/// Lock-free log-bucketed histogram; see the module docs.
///
/// Recording is wait-free: one relaxed `fetch_add` on the sample's bucket.
#[derive(Debug)]
pub struct AtomicLogHistogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for AtomicLogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLogHistogram {
    /// Creates an empty histogram (all buckets zero).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// Records one sample. Exactly one relaxed RMW; safe from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` samples of the same value in one RMW (batch sizes,
    /// repeated waits).
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n > 0 {
            self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Folds another histogram's counts into this one (bucket-wise relaxed
    /// adds). Used to combine per-shard recorders at report time.
    pub fn merge_from(&self, other: &AtomicLogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Takes an instantaneous snapshot of the counts.
    ///
    /// Concurrent recordings may or may not be included (each bucket is
    /// read once, relaxed); every sample recorded happens-before the call
    /// via external synchronisation is included exactly.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Resets every bucket to zero (relaxed stores; racing recordings may
    /// survive). Test/bench helper — production reports snapshot instead.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Convenience: percentiles of the current contents.
    pub fn percentiles(&self) -> Percentiles {
        self.snapshot().percentiles()
    }
}

/// An immutable copy of a histogram's buckets: the mergeable, encodable,
/// queryable form (see the module docs for merge laws and error bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
        }
    }

    /// Total samples across all buckets (saturating).
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Count in one bucket (tests / exact inspection).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Bucket-wise saturating addition — **exactly commutative and
    /// associative**, so any merge order of per-shard snapshots yields
    /// identical counts (the mergeable-summaries law, applied to telemetry).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, &theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(theirs);
        }
    }

    /// One-sided percentile: the inclusive upper bound of the bucket
    /// holding the sample of rank `⌈q·count⌉`, for `q` in `(0, 1]`.
    ///
    /// Never understates the true quantile; overstates by `< 2^-SUB_BITS`
    /// relative (exactly correct for values under [`SUB`]). Returns 0 when
    /// the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_high(idx);
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    }

    /// The standard report set (p50/p90/p99/p999/max).
    pub fn percentiles(&self) -> Percentiles {
        let count = self.count();
        if count == 0 {
            return Percentiles::default();
        }
        let max = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_high);
        Percentiles {
            count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            max,
        }
    }

    /// Encodes as a sparse `(bucket, count)` list with the workspace codec
    /// conventions (tag + version header, `u32` lengths). Exact: decoding
    /// reproduces every bucket count bit-for-bit.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w, HIST_TAG, HIST_VERSION);
        w.put_u8(SUB_BITS as u8);
        let nonzero: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        w.put_u32(nonzero.len() as u32);
        for (idx, count) in nonzero {
            w.put_u32(idx as u32);
            w.put_u64(count);
        }
        w.into_bytes()
    }

    /// Decodes an [`encode`](Self::encode)d snapshot. Never panics on
    /// corrupt input: bad tags, versions, lengths, out-of-range or
    /// out-of-order bucket indices all surface as [`CodecError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(HIST_TAG, HIST_VERSION)?;
        let sub_bits = r.get_u8()?;
        if u32::from(sub_bits) != SUB_BITS {
            return Err(CodecError::Invalid("histogram sub-bucket resolution"));
        }
        let len = r.get_len(12)?; // 4 (index) + 8 (count) bytes per entry
        let mut snapshot = Self::empty();
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let idx = r.get_u32()?;
            if idx as usize >= NUM_BUCKETS {
                return Err(CodecError::Invalid("histogram bucket index out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(CodecError::Invalid(
                    "histogram bucket indices not ascending",
                ));
            }
            prev = Some(idx);
            let count = r.get_u64()?;
            if count == 0 {
                return Err(CodecError::Invalid(
                    "histogram sparse entry with zero count",
                ));
            }
            snapshot.counts[idx as usize] = count;
        }
        r.expect_end()?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let probes: Vec<u64> = (0..200)
            .chain((0..64).flat_map(|s| {
                let base = 1u64 << s;
                [base.saturating_sub(1), base, base + 1, base + base / 3]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            assert!(bucket_index(pair[0]) <= bucket_index(pair[1]));
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in (0..100u64).chain([127, 128, 1000, 1 << 20, u64::MAX / 3, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low bound of {idx} above {v}");
            assert!(v <= bucket_high(idx), "high bound of {idx} below {v}");
            // Bounds themselves map back to the same bucket.
            assert_eq!(bucket_index(bucket_low(idx)), idx);
            assert_eq!(bucket_index(bucket_high(idx)), idx);
        }
    }

    #[test]
    fn small_values_are_exact_and_large_within_relative_bound() {
        for v in 0..SUB {
            let idx = bucket_index(v);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_high(idx), v);
        }
        for v in [100u64, 12_345, 1 << 30, u64::MAX / 7] {
            let idx = bucket_index(v);
            let width = bucket_high(idx) - bucket_low(idx);
            // Relative bucket width ≤ 2^-SUB_BITS.
            assert!(width as f64 / bucket_low(idx) as f64 <= 1.0 / SUB as f64 + 1e-12);
        }
    }

    #[test]
    fn percentiles_are_one_sided() {
        let h = AtomicLogHistogram::new();
        // 1000 samples: 990 at 100ns, 10 at 10_000ns.
        h.record_n(100, 990);
        h.record_n(10_000, 10);
        let p = h.percentiles();
        assert_eq!(p.count, 1000);
        // p50/p90 land in 100's bucket; never below the true value.
        assert!(p.p50 >= 100 && p.p50 as f64 <= 100.0 * (1.0 + 1.0 / SUB as f64));
        assert!(p.p99 >= 100);
        // p999 must see the tail.
        assert!(p.p999 >= 10_000 && p.p999 as f64 <= 10_000.0 * (1.0 + 1.0 / SUB as f64));
        assert!(p.max >= 10_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        assert_eq!(
            AtomicLogHistogram::new().percentiles(),
            Percentiles::default()
        );
        assert_eq!(HistogramSnapshot::empty().percentile(0.99), 0);
    }

    #[test]
    fn merge_from_accumulates() {
        let a = AtomicLogHistogram::new();
        let b = AtomicLogHistogram::new();
        a.record(5);
        b.record(5);
        b.record(70);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.bucket_count(bucket_index(5)), 2);
    }

    #[test]
    fn codec_rejects_corruption() {
        let h = AtomicLogHistogram::new();
        h.record_n(42, 7);
        h.record_n(9_999, 3);
        let bytes = h.snapshot().encode();
        assert_eq!(HistogramSnapshot::decode(&bytes).unwrap(), h.snapshot());
        // Truncations and tag flips error, never panic.
        for cut in 0..bytes.len() {
            assert!(HistogramSnapshot::decode(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(HistogramSnapshot::decode(&bad).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(HistogramSnapshot::decode(&trailing).is_err());
    }
}
