//! Rendering the observability layer's measurements.
//!
//! An [`ObsReport`] is a plain data object: named percentile sections (one
//! per latency/size histogram), named counters, and recent trace events.
//! The engine assembles one from its recorders; this module renders it as
//! a human-readable table ([`ObsReport::to_table`]) or in the Prometheus
//! text exposition format ([`ObsReport::prometheus_text`]) — plain text,
//! zero dependencies, suitable for a `/metrics` endpoint or a log line.

use crate::histogram::Percentiles;
use crate::trace::TraceEvent;
use std::fmt::Write as _;

/// One histogram rendered as percentiles, e.g. producer enqueue wait.
#[derive(Debug, Clone)]
pub struct ObsSection {
    /// Metric name in `snake_case` (becomes the Prometheus metric name,
    /// prefixed with `psfa_`).
    pub name: String,
    /// Unit suffix rendered in tables and appended to the Prometheus name
    /// (`"ns"`, `"items"`, …).
    pub unit: &'static str,
    /// One-line description (the Prometheus `# HELP` text).
    pub help: &'static str,
    /// The percentile set extracted from the histogram snapshot.
    pub percentiles: Percentiles,
}

/// One monotone counter, e.g. pool misses or republishes by reason.
#[derive(Debug, Clone)]
pub struct ObsCounter {
    /// Counter name in `snake_case` (Prometheus name gains `psfa_` and
    /// `_total`).
    pub name: String,
    /// One-line description (the Prometheus `# HELP` text).
    pub help: &'static str,
    /// Current value.
    pub value: u64,
}

/// A complete observability report; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Percentile sections, in presentation order.
    pub sections: Vec<ObsSection>,
    /// Counters, in presentation order.
    pub counters: Vec<ObsCounter>,
    /// Most recent trace events (newest last), if the caller drained any.
    pub recent_events: Vec<TraceEvent>,
}

impl ObsReport {
    /// True when nothing was recorded (all sections empty, all counters 0).
    pub fn is_empty(&self) -> bool {
        self.sections.iter().all(|s| s.percentiles.count == 0)
            && self.counters.iter().all(|c| c.value == 0)
            && self.recent_events.is_empty()
    }

    /// Looks up a section's percentiles by name (tests, bench export).
    pub fn percentiles(&self, name: &str) -> Option<Percentiles> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.percentiles)
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Renders an aligned text table of percentile rows and counters.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .sections
            .iter()
            .map(|s| s.name.len())
            .chain(self.counters.iter().map(|c| c.name.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        let _ = writeln!(
            out,
            "{:name_w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  unit",
            "metric", "count", "p50", "p90", "p99", "p999", "max"
        );
        for s in &self.sections {
            let p = s.percentiles;
            let _ = writeln!(
                out,
                "{:name_w$}  {:>10}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}  {}",
                s.name, p.count, p.p50, p.p90, p.p99, p.p999, p.max, s.unit
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:name_w$}  {:>10}", "counter", "value");
            for c in &self.counters {
                let _ = writeln!(out, "{:name_w$}  {:>10}", c.name, c.value);
            }
        }
        out
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// histograms as `summary` metrics with `quantile` labels, counters as
    /// `counter` metrics with the conventional `_total` suffix.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for s in &self.sections {
            let metric = if s.unit.is_empty() {
                format!("psfa_{}", s.name)
            } else {
                format!("psfa_{}_{}", s.name, s.unit)
            };
            let p = s.percentiles;
            let _ = writeln!(out, "# HELP {metric} {}", s.help);
            let _ = writeln!(out, "# TYPE {metric} summary");
            for (q, v) in [
                ("0.5", p.p50),
                ("0.9", p.p90),
                ("0.99", p.p99),
                ("0.999", p.p999),
            ] {
                let _ = writeln!(out, "{metric}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{metric}_count {}", p.count);
        }
        for c in &self.counters {
            let metric = format!("psfa_{}_total", c.name);
            let _ = writeln!(out, "# HELP {metric} {}", c.help);
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {}", c.value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::AtomicLogHistogram;

    fn sample_report() -> ObsReport {
        let h = AtomicLogHistogram::new();
        h.record_n(100, 99);
        h.record(5_000);
        ObsReport {
            sections: vec![ObsSection {
                name: "enqueue_wait".into(),
                unit: "ns",
                help: "producer wait for shard queue space",
                percentiles: h.snapshot().percentiles(),
            }],
            counters: vec![ObsCounter {
                name: "pool_miss".into(),
                help: "buffer-pool checkouts served by a fresh allocation",
                value: 3,
            }],
            recent_events: Vec::new(),
        }
    }

    #[test]
    fn table_contains_all_rows() {
        let table = sample_report().to_table();
        assert!(table.contains("enqueue_wait"));
        assert!(table.contains("pool_miss"));
        assert!(table.contains("p999"));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = sample_report().prometheus_text();
        assert!(text.contains("# TYPE psfa_enqueue_wait_ns summary"));
        assert!(text.contains("psfa_enqueue_wait_ns{quantile=\"0.99\"}"));
        assert!(text.contains("psfa_enqueue_wait_ns_count 100"));
        assert!(text.contains("# TYPE psfa_pool_miss_total counter"));
        assert!(text.contains("psfa_pool_miss_total 3"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad sample line: {line}");
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn lookup_helpers_find_entries() {
        let report = sample_report();
        assert_eq!(report.percentiles("enqueue_wait").unwrap().count, 100);
        assert_eq!(report.counter("pool_miss"), Some(3));
        assert!(report.percentiles("nope").is_none());
        assert!(!report.is_empty());
        assert!(ObsReport::default().is_empty());
    }
}
