//! Time sources for the instrumentation layer.
//!
//! Instrumented code paths take timestamps through the [`Clock`] trait so
//! that (a) tests can drive time deterministically with a [`ManualClock`],
//! and (b) the production [`MonotonicClock`] amortises the cost of
//! `Instant::now` into a single `u64` nanosecond read against a
//! process-wide anchor — cheap enough that the only *truly* hot paths
//! (per-item ingest) still avoid it entirely by recording durations only
//! around per-*batch* operations or slow paths (a full queue).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotone nanosecond clock. `now_ns` must never decrease.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary fixed origin (process start for the
    /// production clock). Only differences are meaningful.
    fn now_ns(&self) -> u64;
}

/// Process-wide monotone anchor so every clock instance shares one origin
/// and `now_ns` fits comfortably in `u64` (584 years of nanoseconds).
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// The production clock: `Instant` elapsed-nanoseconds against a
/// process-wide origin.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl MonotonicClock {
    /// Creates the clock (and initialises the process anchor).
    pub fn new() -> Self {
        let _ = anchor();
        MonotonicClock
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        anchor().elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`advance`](ManualClock::advance) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Starts at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `delta_ns` and returns the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let clock = MonotonicClock::new();
        let mut prev = clock.now_ns();
        for _ in 0..1000 {
            let now = clock.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn manual_clock_is_hand_cranked() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.advance(5), 5);
        assert_eq!(clock.advance(10), 15);
        assert_eq!(clock.now_ns(), 15);
    }
}
