//! # psfa-obs
//!
//! Lock-free observability for the PSFA reproduction: the engine measured
//! with the paper's own medicine. Telemetry here follows the same design
//! rules as the data path it watches —
//!
//! * **relaxed-atomic recording** ([`AtomicLogHistogram`]): one relaxed
//!   RMW per sample, the `AtomicCountMin` pattern applied to latency and
//!   size distributions, so instrumentation never adds a synchronisation
//!   point to the hot path;
//! * **mergeable summaries** ([`HistogramSnapshot::merge`]): per-shard
//!   recorders combine bucket-wise at query time, exactly commutative and
//!   associative, with documented one-sided bucket-error bounds
//!   (`≤ 2^-5` relative) — the per-substream-then-merge pattern of the
//!   paper's frequency aggregates;
//! * **bounded lock-free tracing** ([`TraceRing`]): a seq-stamped
//!   overwrite-oldest ring of control-plane events (boundary cuts, epoch
//!   publishes, flushes) whose per-slot seqlock drops torn records instead
//!   of ever blocking a writer;
//! * **plain-text surfacing** ([`ObsReport`]): percentile tables and a
//!   zero-dependency Prometheus text exporter.
//!
//! The crate depends only on `psfa-primitives` (for the canonical codec,
//! so histograms persist alongside every other summary). The engine crate
//! owns *what* is measured; this crate owns *how*.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod histogram;
pub mod report;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::{
    bucket_high, bucket_index, bucket_low, AtomicLogHistogram, HistogramSnapshot, Percentiles,
    NUM_BUCKETS, SUB, SUB_BITS,
};
pub use report::{ObsCounter, ObsReport, ObsSection};
pub use trace::{TraceEvent, TraceKind, TraceRing, NO_SHARD};
