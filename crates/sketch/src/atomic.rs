//! Lock-free concurrent Count-Min: single-writer relaxed-atomic counters.
//!
//! [`crate::ParallelCountMin`] is a plain-memory sketch: sharing it between
//! an ingesting shard worker and concurrent point queries requires a mutex,
//! which serialises the worker's `O((µ + w)·d)` batch update against every
//! `O(d)` query — the one lock left on the engine's ingest hot path after
//! snapshot publication went atomic. [`AtomicCountMin`] removes it by
//! storing the counter matrix as [`AtomicU64`]s:
//!
//! * the (single) writer adds histogram counts with **relaxed**
//!   `fetch_add`s — an atomic read-modify-write per `(row, distinct item)`;
//! * readers take **relaxed** loads and the row-wise minimum, with no
//!   synchronisation against the writer at all.
//!
//! ## Why relaxed ordering preserves the Count-Min guarantee
//!
//! Count-Min's contract is one-sided: a point query must **never
//! underestimate** the true frequency of the stream prefix it answers for,
//! and overestimates by at most `ε·m` (w.h.p.). Both sides survive relaxed
//! atomics:
//!
//! * **No increment is ever lost.** `fetch_add` is an atomic RMW; relaxed
//!   ordering weakens *when other threads observe* an increment, never
//!   whether it happens. Every counter is monotonically non-decreasing.
//! * **A read observes some prefix of each counter's increments.** A
//!   concurrent query may see row `i` already updated by a batch and row
//!   `j` not yet — so the row-wise min is an overestimate of the item's
//!   frequency in the *least-advanced visible prefix*, and a lower bound
//!   on nothing it shouldn't be: each counter the min inspects only ever
//!   contains real mass from routed occurrences (plus collisions), so the
//!   answer still never under-counts any prefix it claims to cover.
//! * **The upper bound is inherited.** Counters never exceed what the
//!   plain-memory sketch would hold after the same updates, so
//!   `f̂ ≤ f + ε·m` holds with the same probability once the writer's
//!   updates are visible (e.g. after a queue drain, or via the engine's
//!   snapshot-publication `Release`/`Acquire` edge, which orders the
//!   relaxed adds of every batch at or before the snapshot's epoch before
//!   any reader that loaded that snapshot).
//!
//! With **multiple** writers the same argument holds per increment (RMWs
//! from different threads interleave without losing updates), but this
//! engine only ever has one writer per shard, which additionally makes the
//! writer's own reads (e.g. a persistence clone on the worker thread)
//! exact.

use std::sync::atomic::{AtomicU64, Ordering};

use psfa_primitives::{HashFamily, HistogramEntry, PolynomialHash};

use crate::count_min::CountMinSketch;
use crate::parallel::ParallelCountMin;

/// A Count-Min sketch whose counters are relaxed atomics: one writer
/// ingests minibatch histograms through `&self` while any number of
/// readers run point queries concurrently, lock-free (see the module docs
/// for the memory-ordering argument).
#[derive(Debug)]
pub struct AtomicCountMin {
    epsilon: f64,
    delta: f64,
    seed: u64,
    /// Histogram seed carried for codec continuity with
    /// [`ParallelCountMin`] (this type ingests pre-built histograms, so the
    /// seed is never advanced here).
    hist_seed: u64,
    width: usize,
    depth: usize,
    /// Row-major `depth × width` counter matrix.
    counters: Vec<AtomicU64>,
    hashes: Vec<PolynomialHash>,
    /// Total mass added (`m`); incremented after the counter adds, so it
    /// trails them — a reader never sees a total ahead of the counters.
    total: AtomicU64,
}

impl AtomicCountMin {
    /// Creates an empty sketch for error `ε` and failure probability `δ`,
    /// dimensioned and hashed exactly like
    /// [`CountMinSketch::new`] with the same arguments (so snapshots taken
    /// with [`AtomicCountMin::to_parallel`] stay mergeable with any sketch
    /// built from the same `(ε, δ, seed)`).
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `0 < δ < 1`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        Self::from_parallel(&ParallelCountMin::new(epsilon, delta, seed))
    }

    /// Builds an atomic sketch holding exactly the state of `sketch`
    /// (crash recovery: the persisted [`ParallelCountMin`] is rehydrated
    /// into the shared atomic matrix).
    pub fn from_parallel(sketch: &ParallelCountMin) -> Self {
        let inner = sketch.sketch();
        let counters = inner
            .counters()
            .iter()
            .flat_map(|row| row.iter().map(|&c| AtomicU64::new(c)))
            .collect();
        let depth = inner.depth();
        let hashes = (0..depth).map(|row| inner.row_hash(row).clone()).collect();
        Self {
            epsilon: inner.epsilon(),
            delta: inner.delta(),
            seed: inner.seed(),
            hist_seed: sketch.histogram_seed(),
            width: inner.width(),
            depth,
            counters,
            hashes,
            total: AtomicU64::new(inner.total()),
        }
    }

    /// Snapshots the atomic matrix into a plain [`ParallelCountMin`]
    /// (persistence, cross-shard merging). Called by the single writer, the
    /// snapshot is exact; called concurrently with the writer, it holds
    /// some recent value of every counter — still a valid Count-Min of a
    /// recent prefix per the module docs.
    pub fn to_parallel(&self) -> ParallelCountMin {
        let rows: Vec<Vec<u64>> = (0..self.depth)
            .map(|row| {
                self.row(row)
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect()
            })
            .collect();
        let sketch = CountMinSketch::from_parts(
            self.epsilon,
            self.delta,
            self.seed,
            self.total.load(Ordering::Relaxed),
            rows,
        );
        ParallelCountMin::from_sketch_with_seed(sketch, self.hist_seed)
    }

    fn row(&self, row: usize) -> &[AtomicU64] {
        &self.counters[row * self.width..(row + 1) * self.width]
    }

    /// Adds one minibatch's histogram: one relaxed `fetch_add` per
    /// `(row, distinct item)` and no allocation. `&self` — the writer needs
    /// no exclusive access.
    pub fn ingest_histogram(&self, hist: &[HistogramEntry]) {
        if hist.is_empty() {
            return;
        }
        let mut added = 0u64;
        for entry in hist {
            added += entry.count;
            for (row, hash) in self.hashes.iter().enumerate() {
                let col = hash.hash(entry.item) as usize;
                self.row(row)[col].fetch_add(entry.count, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(added, Ordering::Relaxed);
    }

    /// Lock-free point query: the row-wise minimum under relaxed loads —
    /// an overestimate of `item`'s frequency in every fully visible prefix
    /// and never more than `f + ε·m` (w.h.p.) over the whole stream.
    pub fn query(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.row(row)[self.hashes[row].hash(item) as usize].load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Total mass the writer has recorded so far (trails the counters; see
    /// the field docs).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The hash seed the rows were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn hist_of(batch: &[u64]) -> Vec<HistogramEntry> {
        let mut counts = std::collections::HashMap::new();
        for &x in batch {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        counts
            .into_iter()
            .map(|(item, count)| HistogramEntry { item, count })
            .collect()
    }

    #[test]
    fn matches_the_plain_sketch_exactly() {
        let atomic = AtomicCountMin::new(0.01, 0.02, 42);
        let mut plain = ParallelCountMin::new(0.01, 0.02, 42);
        let mut state = 1u64;
        for _ in 0..20 {
            let batch: Vec<u64> = (0..500)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) % 300
                })
                .collect();
            let hist = hist_of(&batch);
            atomic.ingest_histogram(&hist);
            plain.ingest_histogram(&hist);
        }
        assert_eq!(atomic.total(), plain.total());
        for item in 0..300u64 {
            assert_eq!(atomic.query(item), plain.query(item));
        }
        // The snapshot is byte-equal state: same counters, same params.
        assert_eq!(atomic.to_parallel(), plain);
    }

    #[test]
    fn roundtrips_through_parallel_for_recovery() {
        let mut plain = ParallelCountMin::new(0.05, 0.05, 9);
        plain.process_minibatch(&[1, 1, 2, 3, 3, 3]);
        let atomic = AtomicCountMin::from_parallel(&plain);
        assert_eq!(atomic.to_parallel(), plain);
        assert_eq!(atomic.query(3), plain.query(3));
        // The rehydrated sketch keeps ingesting correctly.
        atomic.ingest_histogram(&[HistogramEntry { item: 3, count: 4 }]);
        assert_eq!(atomic.query(3), plain.query(3) + 4);
    }

    #[test]
    fn concurrent_queries_never_observe_lost_increments() {
        // One writer, several readers: every reader's estimate of the single
        // hot item must be monotone and end at the exact total.
        let sketch = Arc::new(AtomicCountMin::new(0.01, 0.01, 7));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let sketch = sketch.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let q = sketch.query(77);
                    assert!(q >= last, "estimate went backwards: {q} < {last}");
                    last = q;
                }
            }));
        }
        let rounds = 2_000u64;
        for _ in 0..rounds {
            sketch.ingest_histogram(&[HistogramEntry { item: 77, count: 3 }]);
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(sketch.query(77), 3 * rounds);
        assert_eq!(sketch.total(), 3 * rounds);
    }
}
