//! Sequential Count-Min sketch (Cormode–Muthukrishnan), the baseline the
//! parallel minibatch version of Section 6 builds on.

use psfa_primitives::{HashFamily, PolynomialHash};

/// A Count-Min sketch: `d = ⌈ln(1/δ)⌉` rows of `w = ⌈e/ε⌉` counters.
///
/// For a stream of `m` updates, a point query returns `a_e` with
/// `f_e ≤ a_e ≤ f_e + εm` with probability at least `1 − δ`.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    epsilon: f64,
    delta: f64,
    width: usize,
    depth: usize,
    /// Row-major counter array, `depth` rows of `width` counters.
    rows: Vec<Vec<u64>>,
    hashes: Vec<PolynomialHash>,
    /// Total mass added so far (`m`).
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch for error `ε` and failure probability `δ`, seeded
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `0 < δ < 1`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        let hashes = (0..depth)
            .map(|i| PolynomialHash::from_seed(2, width as u64, seed ^ (0x9E37 + i as u64)))
            .collect();
        Self {
            epsilon,
            delta,
            width,
            depth,
            rows: vec![vec![0u64; width]; depth],
            hashes,
            total: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of counters per row, `w = ⌈e/ε⌉`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows, `d = ⌈ln(1/δ)⌉`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total mass inserted so far (`m = Σ counts`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of counters, `w·d` — the space bound `O(ε⁻¹ log(1/δ))`.
    pub fn num_counters(&self) -> usize {
        self.width * self.depth
    }

    /// Column used by row `row` for `item` (exposed for the parallel updater).
    pub(crate) fn column(&self, row: usize, item: u64) -> usize {
        self.hashes[row].hash(item) as usize
    }

    /// Adds `count` occurrences of `item` (the classic per-element update,
    /// applied once per distinct item when driven from a histogram).
    pub fn update(&mut self, item: u64, count: u64) {
        for row in 0..self.depth {
            let col = self.column(row, item);
            self.rows[row][col] += count;
        }
        self.total += count;
    }

    /// Point query: an overestimate of the frequency of `item`.
    pub fn query(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[row][self.column(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Mutable access to a row (used by the parallel minibatch updater).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<u64>> {
        &mut self.rows
    }

    /// Adds to the running total (used by the parallel minibatch updater).
    pub(crate) fn add_total(&mut self, count: u64) {
        self.total += count;
    }

    /// Read-only access to the counter matrix (tests / experiments).
    pub fn counters(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// True if `other` uses identical dimensions *and* hash functions, i.e.
    /// the two sketches were created with the same `(ε, δ, seed)` and may be
    /// merged counter-wise.
    pub fn is_mergeable_with(&self, other: &CountMinSketch) -> bool {
        self.width == other.width
            && self.depth == other.depth
            && self.hashes.iter().zip(&other.hashes).all(|(a, b)| {
                (0..16u64).all(|probe| a.hash(probe ^ 0xABCD) == b.hash(probe ^ 0xABCD))
            })
    }

    /// Merges another sketch into this one by adding counters point-wise.
    ///
    /// Both sketches must have been created with the same `(ε, δ, seed)` so
    /// their rows share hash functions; the merged sketch then answers point
    /// queries over the union of both input streams with the usual
    /// `f ≤ f̂ ≤ f + ε(m₁ + m₂)` guarantee — per-shard sketches merge into a
    /// global sketch of the full stream.
    ///
    /// # Panics
    /// Panics if the sketches' dimensions or hash functions differ.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert!(
            self.is_mergeable_with(other),
            "CountMinSketch::merge requires identical (epsilon, delta, seed)"
        );
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (m, &t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dimensions_follow_epsilon_delta() {
        let cm = CountMinSketch::new(0.01, 0.01, 1);
        assert_eq!(cm.width(), (std::f64::consts::E / 0.01).ceil() as usize);
        assert_eq!(cm.depth(), 5); // ln(100) ≈ 4.6
        assert_eq!(cm.num_counters(), cm.width() * cm.depth());
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(0.01, 0.05, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 5u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 500;
            cm.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for (&item, &f) in &truth {
            assert!(cm.query(item) >= f);
        }
    }

    #[test]
    fn overestimate_bounded_by_epsilon_m_for_most_items() {
        let epsilon = 0.005;
        let mut cm = CountMinSketch::new(epsilon, 0.01, 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 9u64;
        let m = 50_000u64;
        for _ in 0..m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 2000;
            cm.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        assert_eq!(cm.total(), m);
        let bound = (epsilon * m as f64).ceil() as u64;
        let violations = truth
            .iter()
            .filter(|(&item, &f)| cm.query(item) > f + bound)
            .count();
        // With probability 1 − δ per item the bound holds; allow a small
        // number of unlucky items (δ = 1%, 2000 items ⇒ expected ≈ 20).
        assert!(
            violations <= truth.len() / 20,
            "{violations} of {} items exceeded the εm bound",
            truth.len()
        );
    }

    #[test]
    fn unseen_item_query_is_small() {
        let mut cm = CountMinSketch::new(0.01, 0.01, 11);
        for item in 0..1000u64 {
            cm.update(item, 1);
        }
        // An unseen item's estimate is bounded by collisions only.
        assert!(cm.query(999_999) <= (0.01f64 * 1000.0).ceil() as u64 + 1);
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut cm = CountMinSketch::new(0.1, 0.1, 2);
        cm.update(5, 10);
        cm.update(5, 7);
        assert!(cm.query(5) >= 17);
        assert_eq!(cm.total(), 17);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_rejected() {
        let _ = CountMinSketch::new(0.1, 1.0, 0);
    }
}
