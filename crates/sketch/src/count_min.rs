//! Sequential Count-Min sketch (Cormode–Muthukrishnan), the baseline the
//! parallel minibatch version of Section 6 builds on.

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{HashFamily, PolynomialHash};

/// Type tag for encoded Count-Min sketches (see `psfa_primitives::codec`).
const TAG: u8 = 0x07;
const VERSION: u8 = 1;

/// A Count-Min sketch: `d = ⌈ln(1/δ)⌉` rows of `w = ⌈e/ε⌉` counters.
///
/// For a stream of `m` updates, a point query returns `a_e` with
/// `f_e ≤ a_e ≤ f_e + εm` with probability at least `1 − δ`.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    epsilon: f64,
    delta: f64,
    /// Seed the row hash functions were derived from; stored so the sketch
    /// can be re-materialised exactly by `decode` (hashes are a
    /// deterministic function of `(depth, width, seed)`).
    seed: u64,
    width: usize,
    depth: usize,
    /// Row-major counter array, `depth` rows of `width` counters.
    rows: Vec<Vec<u64>>,
    hashes: Vec<PolynomialHash>,
    /// Total mass added so far (`m`).
    total: u64,
}

impl PartialEq for CountMinSketch {
    fn eq(&self, other: &Self) -> bool {
        // Hash functions are a pure function of (epsilon, delta, seed), so
        // comparing the parameters and counters compares the whole sketch.
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.delta.to_bits() == other.delta.to_bits()
            && self.seed == other.seed
            && self.rows == other.rows
            && self.total == other.total
    }
}

impl CountMinSketch {
    /// Creates a sketch for error `ε` and failure probability `δ`, seeded
    /// deterministically from `seed`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `0 < δ < 1`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        let hashes = (0..depth)
            .map(|i| PolynomialHash::from_seed(2, width as u64, seed ^ (0x9E37 + i as u64)))
            .collect();
        Self {
            epsilon,
            delta,
            seed,
            width,
            depth,
            rows: vec![vec![0u64; width]; depth],
            hashes,
            total: 0,
        }
    }

    /// The seed the row hash functions were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of counters per row, `w = ⌈e/ε⌉`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows, `d = ⌈ln(1/δ)⌉`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total mass inserted so far (`m = Σ counts`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of counters, `w·d` — the space bound `O(ε⁻¹ log(1/δ))`.
    pub fn num_counters(&self) -> usize {
        self.width * self.depth
    }

    /// Column used by row `row` for `item` (exposed for the parallel updater).
    pub(crate) fn column(&self, row: usize, item: u64) -> usize {
        self.hashes[row].hash(item) as usize
    }

    /// The hash function of row `row` (exposed for the atomic concurrent
    /// sketch, which shares this sketch's exact hashing).
    pub(crate) fn row_hash(&self, row: usize) -> &PolynomialHash {
        &self.hashes[row]
    }

    /// Rebuilds a sketch from raw parts: the `(ε, δ, seed)` triple plus a
    /// counter matrix and total previously read out of a sketch with the
    /// same parameters (e.g. a relaxed-atomic snapshot of
    /// [`crate::AtomicCountMin`]). The row hashes are re-derived from the
    /// seed, so the result is hash-identical — and therefore mergeable —
    /// with every sketch built from the same triple.
    ///
    /// # Panics
    /// Panics if the parameters are out of range or `rows` does not match
    /// the `(ε, δ)`-derived dimensions.
    pub(crate) fn from_parts(
        epsilon: f64,
        delta: f64,
        seed: u64,
        total: u64,
        rows: Vec<Vec<u64>>,
    ) -> Self {
        let mut sketch = CountMinSketch::new(epsilon, delta, seed);
        assert!(
            rows.len() == sketch.depth && rows.iter().all(|r| r.len() == sketch.width),
            "from_parts: counter matrix does not match the (epsilon, delta) dimensions"
        );
        sketch.rows = rows;
        sketch.total = total;
        sketch
    }

    /// Adds `count` occurrences of `item` (the classic per-element update,
    /// applied once per distinct item when driven from a histogram).
    pub fn update(&mut self, item: u64, count: u64) {
        for row in 0..self.depth {
            let col = self.column(row, item);
            self.rows[row][col] += count;
        }
        self.total += count;
    }

    /// Point query: an overestimate of the frequency of `item`.
    pub fn query(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[row][self.column(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Mutable access to a row (used by the parallel minibatch updater).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<u64>> {
        &mut self.rows
    }

    /// Adds to the running total (used by the parallel minibatch updater).
    pub(crate) fn add_total(&mut self, count: u64) {
        self.total += count;
    }

    /// Read-only access to the counter matrix (tests / experiments).
    pub fn counters(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// True if `other` uses identical dimensions *and* hash functions, i.e.
    /// the two sketches were created with the same `(ε, δ, seed)` and may be
    /// merged counter-wise.
    pub fn is_mergeable_with(&self, other: &CountMinSketch) -> bool {
        self.width == other.width
            && self.depth == other.depth
            && self.hashes.iter().zip(&other.hashes).all(|(a, b)| {
                (0..16u64).all(|probe| a.hash(probe ^ 0xABCD) == b.hash(probe ^ 0xABCD))
            })
    }

    /// Merges another sketch into this one by adding counters point-wise.
    ///
    /// Both sketches must have been created with the same `(ε, δ, seed)` so
    /// their rows share hash functions; the merged sketch then answers point
    /// queries over the union of both input streams with the usual
    /// `f ≤ f̂ ≤ f + ε(m₁ + m₂)` guarantee — per-shard sketches merge into a
    /// global sketch of the full stream.
    ///
    /// # Panics
    /// Panics if the sketches' dimensions or hash functions differ.
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert!(
            self.is_mergeable_with(other),
            "CountMinSketch::merge requires identical (epsilon, delta, seed)"
        );
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (m, &t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
        self.total += other.total;
    }

    /// Canonical binary encoding, appended to `w`. Only the parameters and
    /// the counter matrix are written; the row hashes are re-derived from
    /// the seed on decode, so the encoding stays compact and the decoded
    /// sketch is hash-identical (and therefore mergeable) with the original.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_f64(self.epsilon);
        w.put_f64(self.delta);
        w.put_u64(self.seed);
        w.put_u64(self.total);
        w.put_u32(self.width as u32);
        w.put_u32(self.depth as u32);
        for row in &self.rows {
            for &counter in row {
                w.put_u64(counter);
            }
        }
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a sketch previously written by
    /// [`CountMinSketch::encode_into`], re-deriving the row hashes from the
    /// seed and validating dimensions against `(ε, δ)` (never panics on
    /// corrupted input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let epsilon = r.get_f64()?;
        let delta = r.get_f64()?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CodecError::Invalid("count-min: epsilon not in (0, 1)"));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(CodecError::Invalid("count-min: delta not in (0, 1)"));
        }
        let seed = r.get_u64()?;
        let total = r.get_u64()?;
        let width = r.get_u32()? as usize;
        let depth = r.get_u32()? as usize;
        // Validate the dimensions arithmetically *before* constructing the
        // sketch: `CountMinSketch::new` allocates `width × depth` counters,
        // and a corrupted epsilon (e.g. 1e-300, still inside (0, 1)) would
        // otherwise drive a huge allocation or a capacity-overflow panic.
        // Float→int casts saturate in Rust, so these derivations are safe
        // for any decoded epsilon/delta.
        let expected_width = (std::f64::consts::E / epsilon).ceil() as usize;
        let expected_depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        if width != expected_width || depth != expected_depth {
            return Err(CodecError::Invalid(
                "count-min: dimensions inconsistent with (epsilon, delta)",
            ));
        }
        let needed = width
            .checked_mul(depth)
            .and_then(|c| c.checked_mul(8))
            .ok_or(CodecError::Invalid("count-min: dimension overflow"))?;
        if needed > r.remaining() {
            return Err(CodecError::UnexpectedEof {
                needed,
                remaining: r.remaining(),
            });
        }
        let mut sketch = CountMinSketch::new(epsilon, delta, seed);
        debug_assert!(sketch.width == width && sketch.depth == depth);
        for row in sketch.rows.iter_mut() {
            for counter in row.iter_mut() {
                *counter = r.get_u64()?;
            }
        }
        sketch.total = total;
        Ok(sketch)
    }

    /// Decodes a sketch from a standalone buffer produced by
    /// [`CountMinSketch::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dimensions_follow_epsilon_delta() {
        let cm = CountMinSketch::new(0.01, 0.01, 1);
        assert_eq!(cm.width(), (std::f64::consts::E / 0.01).ceil() as usize);
        assert_eq!(cm.depth(), 5); // ln(100) ≈ 4.6
        assert_eq!(cm.num_counters(), cm.width() * cm.depth());
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(0.01, 0.05, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 5u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 500;
            cm.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        for (&item, &f) in &truth {
            assert!(cm.query(item) >= f);
        }
    }

    #[test]
    fn overestimate_bounded_by_epsilon_m_for_most_items() {
        let epsilon = 0.005;
        let mut cm = CountMinSketch::new(epsilon, 0.01, 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 9u64;
        let m = 50_000u64;
        for _ in 0..m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = (state >> 33) % 2000;
            cm.update(item, 1);
            *truth.entry(item).or_insert(0) += 1;
        }
        assert_eq!(cm.total(), m);
        let bound = (epsilon * m as f64).ceil() as u64;
        let violations = truth
            .iter()
            .filter(|(&item, &f)| cm.query(item) > f + bound)
            .count();
        // With probability 1 − δ per item the bound holds; allow a small
        // number of unlucky items (δ = 1%, 2000 items ⇒ expected ≈ 20).
        assert!(
            violations <= truth.len() / 20,
            "{violations} of {} items exceeded the εm bound",
            truth.len()
        );
    }

    #[test]
    fn unseen_item_query_is_small() {
        let mut cm = CountMinSketch::new(0.01, 0.01, 11);
        for item in 0..1000u64 {
            cm.update(item, 1);
        }
        // An unseen item's estimate is bounded by collisions only.
        assert!(cm.query(999_999) <= (0.01f64 * 1000.0).ceil() as u64 + 1);
    }

    #[test]
    fn weighted_updates_accumulate() {
        let mut cm = CountMinSketch::new(0.1, 0.1, 2);
        cm.update(5, 10);
        cm.update(5, 7);
        assert!(cm.query(5) >= 17);
        assert_eq!(cm.total(), 17);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_rejected() {
        let _ = CountMinSketch::new(0.1, 1.0, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut sketch = CountMinSketch::new(0.01, 0.05, 77);
        for item in 0..500u64 {
            sketch.update(item % 40, 1 + item % 3);
        }
        let decoded = CountMinSketch::decode(&sketch.encode()).unwrap();
        assert_eq!(decoded, sketch);
        for item in 0..40u64 {
            assert_eq!(decoded.query(item), sketch.query(item));
        }
        assert!(decoded.is_mergeable_with(&sketch));
    }

    #[test]
    fn decode_rejects_absurd_epsilon_without_allocating() {
        // A corrupted epsilon deep in (0, 1) — e.g. 1e-300 — must be caught
        // by the dimension cross-check *before* any counter allocation, not
        // panic with a capacity overflow.
        let sketch = CountMinSketch::new(0.01, 0.05, 1);
        let mut bytes = sketch.encode();
        // Layout: tag(1) + version(1) + epsilon f64 bits at [2..10].
        bytes[2..10].copy_from_slice(&1e-300f64.to_bits().to_le_bytes());
        assert!(matches!(
            CountMinSketch::decode(&bytes),
            Err(CodecError::Invalid(_))
        ));
        // Same for a delta driving the depth out of range.
        let mut bytes = sketch.encode();
        bytes[10..18].copy_from_slice(&1e-300f64.to_bits().to_le_bytes());
        assert!(CountMinSketch::decode(&bytes).is_err());
    }
}
