//! # psfa-sketch
//!
//! Count-Min sketch with parallel minibatch ingestion — Section 6 of
//! Tangwongsan, Tirthapura and Wu, *Parallel Streaming Frequency-Based
//! Aggregates* (SPAA 2014) — plus a Count-Sketch implementation as the
//! natural extension (the paper cites it among the sketch-based approaches
//! in related work).
//!
//! * [`count_min`] — the classic sequential Count-Min sketch of Cormode and
//!   Muthukrishnan: `d = ⌈ln(1/δ)⌉` rows of `w = ⌈e/ε⌉` counters with
//!   pairwise-independent row hashes; point queries overestimate the true
//!   frequency by at most `εm` with probability `1 − δ`.
//! * [`parallel`] — the paper's minibatch update: build the minibatch
//!   histogram with `buildHist`, then for every row group the histogram
//!   entries by target column with the linear-work integer sort and apply
//!   each column's total increment once, in parallel across rows and
//!   columns (Theorem 6.1).
//! * [`count_sketch`] — Count-Sketch (Charikar–Chen–Farach-Colton) with the
//!   same minibatch interface, providing unbiased estimates.
//! * [`atomic`] — the single-writer/multi-reader concurrent variant: the
//!   same sketch over relaxed [`std::sync::atomic::AtomicU64`] counters, so
//!   an ingesting shard worker and concurrent point queries never contend
//!   on a lock (the one-sided overestimate bound survives relaxed ordering;
//!   see the module docs for the argument).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic;
pub mod count_min;
pub mod count_sketch;
pub mod parallel;

pub use atomic::AtomicCountMin;
pub use count_min::CountMinSketch;
pub use count_sketch::CountSketch;
pub use parallel::ParallelCountMin;
