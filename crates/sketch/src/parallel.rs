//! Parallel Count-Min minibatch ingestion (Theorem 6.1).
//!
//! Instead of touching the sketch once per stream element, the minibatch is
//! first collapsed into a histogram with `buildHist` (Theorem 2.3); then, for
//! every row in parallel, the histogram entries are grouped by their target
//! column with the linear-work integer sort and each column receives one
//! combined increment. Work per minibatch is `O(µ + (µ + w)·d)` and the
//! depth is polylogarithmic; point queries take `O(d)` work with an
//! `O(log d)`-depth parallel min-reduction.

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{build_hist, HistogramEntry};
use rayon::prelude::*;

use crate::count_min::CountMinSketch;

/// Type tag for encoded parallel Count-Min sketches (see
/// `psfa_primitives::codec`).
const TAG: u8 = 0x08;
const VERSION: u8 = 1;

/// A Count-Min sketch driven by minibatches, wrapping [`CountMinSketch`] with
/// the parallel update of Section 6.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelCountMin {
    sketch: CountMinSketch,
    seed: u64,
}

impl ParallelCountMin {
    /// Creates a sketch for error `ε` and failure probability `δ`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        Self {
            sketch: CountMinSketch::new(epsilon, delta, seed),
            seed,
        }
    }

    /// Wraps an existing sequential sketch.
    pub fn from_sketch(sketch: CountMinSketch) -> Self {
        Self {
            sketch,
            seed: 0x1234_5678,
        }
    }

    /// Wraps an existing sequential sketch with an explicit per-minibatch
    /// histogram seed (state rehydration from [`crate::AtomicCountMin`]).
    pub fn from_sketch_with_seed(sketch: CountMinSketch, seed: u64) -> Self {
        Self { sketch, seed }
    }

    /// The per-minibatch histogram seed (advances on every
    /// [`ParallelCountMin::process_minibatch`]; callers feeding pre-built
    /// histograms never advance it).
    pub fn histogram_seed(&self) -> u64 {
        self.seed
    }

    /// Read-only access to the underlying sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }

    /// Incorporates a minibatch of item identifiers.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.seed);
        self.ingest_histogram(&hist);
    }

    /// Incorporates a pre-computed histogram (useful when the caller already
    /// ran `buildHist`, e.g. a pipeline stage shared with other aggregates).
    pub fn ingest_histogram(&mut self, hist: &[HistogramEntry]) {
        if hist.is_empty() {
            return;
        }
        let added: u64 = hist.iter().map(|e| e.count).sum();
        let depth = self.sketch.depth();
        // Pre-compute, for every row, the (column, count) pairs. Reading the
        // hash functions is immutable, so this pass can run before the rows
        // are mutated.
        let per_row_updates: Vec<Vec<(usize, u64)>> = (0..depth)
            .into_par_iter()
            .map(|row| {
                hist.iter()
                    .map(|e| (self.sketch.column(row, e.item), e.count))
                    .collect()
            })
            .collect();
        // Every row is owned by exactly one task: simultaneous column updates
        // within a row are combined by that task, so no atomics are needed.
        self.sketch
            .rows_mut()
            .par_iter_mut()
            .zip(per_row_updates.into_par_iter())
            .for_each(|(row, updates)| {
                for (col, count) in updates {
                    row[col] += count;
                }
            });
        self.sketch.add_total(added);
    }

    /// Point query: an overestimate of `item`'s frequency, computed with a
    /// parallel min-reduction over the rows.
    pub fn query(&self, item: u64) -> u64 {
        (0..self.sketch.depth())
            .into_par_iter()
            .map(|row| self.sketch.counters()[row][self.sketch.column(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Total mass inserted so far.
    pub fn total(&self) -> u64 {
        self.sketch.total()
    }

    /// Merges another sketch (same `(ε, δ, seed)`) into this one; see
    /// [`CountMinSketch::merge`].
    ///
    /// # Panics
    /// Panics if the sketches' dimensions or hash functions differ.
    pub fn merge(&mut self, other: &ParallelCountMin) {
        self.sketch.merge(other.sketch());
    }

    /// Canonical binary encoding, appended to `w`. The per-minibatch
    /// histogram seed is included, so a decoded sketch continues the stream
    /// exactly as the original would have.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_u64(self.seed);
        self.sketch.encode_into(w);
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a sketch previously written by
    /// [`ParallelCountMin::encode_into`] (never panics on corrupted input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let seed = r.get_u64()?;
        let sketch = CountMinSketch::decode_from(r)?;
        Ok(Self { sketch, seed })
    }

    /// Decodes a sketch from a standalone buffer produced by
    /// [`ParallelCountMin::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn parallel_and_sequential_updates_agree_exactly() {
        // Driving the same sketch (same seeds) per-element or per-minibatch
        // must produce identical counter arrays.
        let mut seq = CountMinSketch::new(0.01, 0.02, 42);
        let mut par = ParallelCountMin::from_sketch(CountMinSketch::new(0.01, 0.02, 42));
        let mut rng = Lcg(1);
        for _ in 0..20 {
            let batch: Vec<u64> = (0..500).map(|_| rng.next() % 300).collect();
            for &x in &batch {
                seq.update(x, 1);
            }
            par.process_minibatch(&batch);
        }
        assert_eq!(seq.counters(), par.sketch().counters());
        assert_eq!(seq.total(), par.total());
        for item in 0..300u64 {
            assert_eq!(seq.query(item), par.query(item));
        }
    }

    #[test]
    fn theorem_6_1_accuracy() {
        let epsilon = 0.002;
        let delta = 0.01;
        let mut par = ParallelCountMin::new(epsilon, delta, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = Lcg(3);
        for _ in 0..40 {
            let batch: Vec<u64> = (0..1000)
                .map(|_| {
                    let r = rng.next();
                    if r.is_multiple_of(2) {
                        r % 10
                    } else {
                        10 + r % 5000
                    }
                })
                .collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            par.process_minibatch(&batch);
        }
        let m = par.total();
        let bound = (epsilon * m as f64).ceil() as u64;
        let mut violations = 0usize;
        for (&item, &f) in &truth {
            let q = par.query(item);
            assert!(q >= f, "Count-Min must never underestimate");
            if q > f + bound {
                violations += 1;
            }
        }
        assert!(
            violations <= truth.len() / 20,
            "{violations}/{} items exceeded εm",
            truth.len()
        );
    }

    #[test]
    fn empty_minibatch_is_noop() {
        let mut par = ParallelCountMin::new(0.1, 0.1, 1);
        par.process_minibatch(&[]);
        assert_eq!(par.total(), 0);
    }

    #[test]
    fn merged_shards_answer_like_one_sketch() {
        // Partition a stream across 4 "shards" with independent sketches
        // (same seed), merge, and compare against one sketch that saw it all.
        let mut whole = ParallelCountMin::new(0.01, 0.01, 77);
        let mut shards: Vec<ParallelCountMin> = (0..4)
            .map(|_| ParallelCountMin::new(0.01, 0.01, 77))
            .collect();
        let mut rng = Lcg(5);
        for _ in 0..10 {
            let batch: Vec<u64> = (0..2000).map(|_| rng.next() % 500).collect();
            whole.process_minibatch(&batch);
            let mut parts: Vec<Vec<u64>> = vec![Vec::new(); 4];
            for &x in &batch {
                parts[(x % 4) as usize].push(x);
            }
            for (shard, part) in shards.iter_mut().zip(&parts) {
                shard.process_minibatch(part);
            }
        }
        let mut merged = shards.swap_remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.total(), whole.total());
        assert_eq!(merged.sketch().counters(), whole.sketch().counters());
        for item in 0..500u64 {
            assert_eq!(merged.query(item), whole.query(item));
        }
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn merge_rejects_mismatched_seeds() {
        let mut a = ParallelCountMin::new(0.01, 0.01, 1);
        let b = ParallelCountMin::new(0.01, 0.01, 2);
        a.merge(&b);
    }

    #[test]
    fn histogram_ingestion_matches_expanded_stream() {
        let mut a = ParallelCountMin::new(0.05, 0.05, 9);
        let mut b = ParallelCountMin::new(0.05, 0.05, 9);
        let hist = vec![
            HistogramEntry { item: 1, count: 5 },
            HistogramEntry { item: 2, count: 3 },
        ];
        a.ingest_histogram(&hist);
        b.process_minibatch(&[1, 1, 1, 1, 1, 2, 2, 2]);
        assert_eq!(a.sketch().counters(), b.sketch().counters());
    }
}
