//! Count-Sketch (Charikar–Chen–Farach-Colton) with minibatch ingestion.
//!
//! Included as the natural extension of Section 6: the paper's minibatch
//! technique (histogram + per-row column grouping) applies verbatim to any
//! linear sketch, and Count-Sketch is the one the paper cites alongside
//! Count-Min in its related-work discussion. Unlike Count-Min its estimates
//! are unbiased (they can under- as well as over-estimate).

use psfa_primitives::{build_hist, HashFamily, PolynomialHash};
use rayon::prelude::*;

/// A Count-Sketch: `d` rows of `w` signed counters with pairwise-independent
/// bucket and sign hashes; point queries return the median of the per-row
/// signed estimates.
#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    depth: usize,
    rows: Vec<Vec<i64>>,
    bucket_hashes: Vec<PolynomialHash>,
    sign_hashes: Vec<PolynomialHash>,
    total: u64,
    seed: u64,
}

impl CountSketch {
    /// Creates a Count-Sketch with `3/ε²` columns and `⌈ln(1/δ)⌉` rows.
    ///
    /// # Panics
    /// Panics unless `0 < ε < 1` and `0 < δ < 1`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let width = ((3.0 / (epsilon * epsilon)).ceil() as usize).max(4);
        let depth = ((1.0 / delta).ln().ceil().max(1.0) as usize) | 1; // odd for a clean median
        let bucket_hashes = (0..depth)
            .map(|i| PolynomialHash::from_seed(2, width as u64, seed ^ (0xB0CE + i as u64)))
            .collect();
        let sign_hashes = (0..depth)
            .map(|i| PolynomialHash::from_seed(2, 2, seed ^ (0x51C4 + i as u64)))
            .collect();
        Self {
            width,
            depth,
            rows: vec![vec![0i64; width]; depth],
            bucket_hashes,
            sign_hashes,
            total: 0,
            seed,
        }
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total mass inserted so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn sign(&self, row: usize, item: u64) -> i64 {
        if self.sign_hashes[row].hash(item) == 0 {
            -1
        } else {
            1
        }
    }

    /// Adds `count` occurrences of `item`.
    pub fn update(&mut self, item: u64, count: u64) {
        for row in 0..self.depth {
            let col = self.bucket_hashes[row].hash(item) as usize;
            self.rows[row][col] += self.sign(row, item) * count as i64;
        }
        self.total += count;
    }

    /// Incorporates a minibatch using the histogram + per-row parallel update
    /// of Section 6.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.seed);
        let added: u64 = hist.iter().map(|e| e.count).sum();
        let updates: Vec<Vec<(usize, i64)>> = (0..self.depth)
            .into_par_iter()
            .map(|row| {
                hist.iter()
                    .map(|e| {
                        (
                            self.bucket_hashes[row].hash(e.item) as usize,
                            self.sign(row, e.item) * e.count as i64,
                        )
                    })
                    .collect()
            })
            .collect();
        self.rows
            .par_iter_mut()
            .zip(updates.into_par_iter())
            .for_each(|(row, ups)| {
                for (col, delta) in ups {
                    row[col] += delta;
                }
            });
        self.total += added;
    }

    /// Point query: the median of the per-row signed estimates (may be
    /// negative for items never seen; callers typically clamp at zero).
    pub fn query(&self, item: u64) -> i64 {
        let mut estimates: Vec<i64> = (0..self.depth)
            .map(|row| {
                let col = self.bucket_hashes[row].hash(item) as usize;
                self.sign(row, item) * self.rows[row][col]
            })
            .collect();
        estimates.sort_unstable();
        estimates[estimates.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn sequential_and_minibatch_agree() {
        let mut a = CountSketch::new(0.05, 0.05, 5);
        let mut b = CountSketch::new(0.05, 0.05, 5);
        let mut rng = Lcg(2);
        let stream: Vec<u64> = (0..5000).map(|_| rng.next() % 100).collect();
        for &x in &stream {
            a.update(x, 1);
        }
        for chunk in stream.chunks(512) {
            b.process_minibatch(chunk);
        }
        for item in 0..100u64 {
            assert_eq!(a.query(item), b.query(item));
        }
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn heavy_items_estimated_reasonably() {
        let epsilon = 0.05;
        let mut cs = CountSketch::new(epsilon, 0.01, 9);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = Lcg(7);
        for _ in 0..20 {
            let batch: Vec<u64> = (0..1000)
                .map(|_| {
                    let r = rng.next();
                    if r.is_multiple_of(2) {
                        r % 5
                    } else {
                        5 + r % 2000
                    }
                })
                .collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            cs.process_minibatch(&batch);
        }
        let m = cs.total() as f64;
        // For the five heavy items the error should be within ~ε·m.
        for item in 0..5u64 {
            let f = truth[&item] as i64;
            let q = cs.query(item);
            let err = (q - f).abs() as f64;
            assert!(
                err <= epsilon * m + 1.0,
                "item {item}: err {err} too large (m={m})"
            );
        }
    }

    #[test]
    fn unseen_item_estimate_is_near_zero() {
        let mut cs = CountSketch::new(0.05, 0.01, 13);
        cs.process_minibatch(&(0..2000u64).collect::<Vec<_>>());
        let q = cs.query(1_000_000);
        assert!(q.abs() <= (0.05 * 2000.0) as i64 + 1);
    }

    #[test]
    fn depth_is_odd_for_median() {
        for delta in [0.5, 0.1, 0.01, 0.001] {
            let cs = CountSketch::new(0.1, delta, 1);
            assert_eq!(cs.depth() % 2, 1);
        }
    }
}
