//! The `sift` routine (Lemma 5.9).
//!
//! Given a minibatch `T` and a set `K` of items that will survive pruning,
//! `sift` produces for every `κ ∈ K` the compacted stream segment of the
//! indicator sequence `1{T_j = κ}` — i.e. the per-item binary streams that
//! the surviving SBBCs must ingest — using `O(|T| + |K|)` work.
//!
//! The paper's construction partitions the filtered sequence into
//! `|T|/|K|` pieces and radix-sorts each piece sequentially, giving depth
//! `O(|K| + log|T|)`. We obtain the same work bound with polylogarithmic
//! depth by filtering with a parallel pack and then grouping with the stable
//! linear-work integer sort over the (dense) survivor indices — strictly
//! within the cost budget Lemma 5.9 allows.

use std::collections::HashMap;

use psfa_primitives::intsort::sort_indices_by_key;
use psfa_primitives::{pack_map, CompactedSegment};
use rayon::prelude::*;

/// Builds, for every item in `survivors`, the CSS of its indicator sequence
/// within `minibatch`. Items of `survivors` that never occur in the minibatch
/// map to an all-zero segment of the minibatch's length.
///
/// Work `O(|T| + |K|)`, polylogarithmic depth.
pub fn sift(minibatch: &[u64], survivors: &[u64]) -> HashMap<u64, CompactedSegment> {
    let len = minibatch.len() as u64;
    if survivors.is_empty() {
        return HashMap::new();
    }
    // Dense index for the survivor set.
    let index: HashMap<u64, u64> = survivors
        .iter()
        .enumerate()
        .map(|(i, &item)| (item, i as u64))
        .collect();

    // Keep only (survivor-index, position) pairs, preserving stream order.
    let filtered: Vec<(u64, u64)> = pack_map(
        &minibatch
            .par_iter()
            .enumerate()
            .map(|(pos, item)| (index.get(item).copied(), pos as u64))
            .collect::<Vec<_>>(),
        |_, (idx, _)| idx.is_some(),
    )
    .into_par_iter()
    .map(|(idx, pos)| (idx.unwrap(), pos))
    .collect();

    // Group by survivor index with the stable linear-work integer sort; the
    // positions within each group remain in increasing order.
    let keys: Vec<u64> = filtered.iter().map(|&(idx, _)| idx).collect();
    let perm = sort_indices_by_key(&keys, survivors.len() as u64);

    // Slice out each survivor's run of positions.
    let sorted: Vec<(u64, u64)> = perm.par_iter().map(|&i| filtered[i as usize]).collect();
    let mut out: HashMap<u64, CompactedSegment> = HashMap::with_capacity(survivors.len());
    let mut cursor = 0usize;
    for (idx, &item) in survivors.iter().enumerate() {
        let start = cursor;
        while cursor < sorted.len() && sorted[cursor].0 == idx as u64 {
            cursor += 1;
        }
        let positions: Vec<u64> = sorted[start..cursor].iter().map(|&(_, pos)| pos).collect();
        out.insert(item, CompactedSegment::from_positions(len, positions));
    }
    debug_assert_eq!(cursor, sorted.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(minibatch: &[u64], item: u64) -> CompactedSegment {
        CompactedSegment::from_predicate(minibatch, |&x| x == item)
    }

    #[test]
    fn empty_survivor_set() {
        assert!(sift(&[1, 2, 3], &[]).is_empty());
    }

    #[test]
    fn empty_minibatch_gives_zero_length_segments() {
        let out = sift(&[], &[5, 6]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[&5].len(), 0);
        assert_eq!(out[&6].count_ones(), 0);
    }

    #[test]
    fn small_example_matches_reference() {
        let t = vec![3u64, 1, 3, 2, 2, 3, 9];
        let k = vec![3u64, 2, 7];
        let out = sift(&t, &k);
        assert_eq!(out.len(), 3);
        assert_eq!(out[&3], reference(&t, 3));
        assert_eq!(out[&2], reference(&t, 2));
        assert_eq!(out[&7], reference(&t, 7));
        assert_eq!(out[&7].count_ones(), 0);
        assert_eq!(out[&3].positions(), &[0, 2, 5]);
    }

    #[test]
    fn large_random_minibatch_matches_reference() {
        let mut state = 11u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let t: Vec<u64> = (0..50_000).map(|_| next() % 200).collect();
        let k: Vec<u64> = (0..40u64).map(|i| i * 5).collect();
        let out = sift(&t, &k);
        assert_eq!(out.len(), k.len());
        for &item in &k {
            assert_eq!(out[&item], reference(&t, item), "mismatch for item {item}");
        }
        // Total ones across all survivors equals the number of minibatch
        // elements that belong to the survivor set.
        let total: u64 = out.values().map(CompactedSegment::count_ones).sum();
        let expect = t.iter().filter(|x| k.contains(x)).count() as u64;
        assert_eq!(total, expect);
    }

    #[test]
    fn survivors_absent_from_minibatch_get_zero_segments() {
        let t = vec![1u64; 1000];
        let k = vec![2u64, 3, 4];
        let out = sift(&t, &k);
        for &item in &k {
            assert_eq!(out[&item].len(), 1000);
            assert_eq!(out[&item].count_ones(), 0);
        }
    }
}
