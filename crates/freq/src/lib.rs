//! # psfa-freq
//!
//! Parallel frequency estimation and heavy-hitter tracking — Section 5 of
//! Tangwongsan, Tirthapura and Wu, *Parallel Streaming Frequency-Based
//! Aggregates* (SPAA 2014). This crate contains the paper's primary
//! contribution: minibatch algorithms that update a **single shared
//! summary** with linear work and polylogarithmic depth, instead of keeping
//! per-processor summaries that must be merged.
//!
//! * [`summary`] — the Misra–Gries summary representation and the parallel
//!   `MGaugment` merge of a summary with a minibatch histogram (Lemma 5.3).
//! * [`infinite`] — infinite-window frequency estimation and heavy hitters
//!   (Theorem 5.2): `buildHist` + `MGaugment` per minibatch, `O(ε⁻¹)` space,
//!   `O(ε⁻¹ + µ)` work.
//! * [`sliding_basic`] — the basic sliding-window algorithm (Theorem 5.5):
//!   one unbounded SBBC per observed item.
//! * [`sliding_space`] — the space-efficient variant (Algorithm 2,
//!   Theorem 5.8): prune to `O(ε⁻¹)` counters after every minibatch using
//!   the cut-off ϕ and SBBC `decrement`.
//! * [`sliding_work`] — the work-efficient variant (Theorem 5.4): predict the
//!   surviving counters first, then build per-item segments only for the
//!   survivors with `sift` (Lemma 5.9).
//! * [`mod@sift`] — the `sift` routine of Lemma 5.9.
//! * [`heavy_hitters`] — φ-heavy-hitter query layers over the estimators,
//!   including the reduction stated at the start of Section 5.
//! * [`windowed`] — boundary-aligned sliding windows across shards: per-pane
//!   mergeable summaries ([`PaneWindow`]), sealed at shard-consistent window
//!   boundaries and combined into a [`GlobalWindow`] with a one-sided
//!   `ε·n_W` bound over the *global* window.
//!
//! Items are identified by `u64` keys; map richer item types onto identifiers
//! at the ingestion boundary (see `psfa-stream`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod grouping;
pub mod heavy_hitters;
pub mod infinite;
pub mod sift;
pub mod sliding_basic;
pub mod sliding_space;
pub mod sliding_work;
pub mod summary;
#[cfg(test)]
pub(crate) mod test_support;
pub mod windowed;

pub use heavy_hitters::{HeavyHitter, InfiniteHeavyHitters, SlidingHeavyHitters};
pub use infinite::ParallelFrequencyEstimator;
pub use sift::sift;
pub use sliding_basic::SlidingFreqBasic;
pub use sliding_space::SlidingFreqSpaceEfficient;
pub use sliding_work::SlidingFreqWorkEfficient;
pub use summary::MgSummary;
pub use windowed::{merge_sum, GlobalWindow, PaneWindow, SealedWindow};

/// Common interface implemented by all sliding-window frequency estimators in
/// this crate, so experiments and examples can swap variants freely.
pub trait SlidingFrequencyEstimator {
    /// Incorporates one minibatch of item identifiers.
    fn process_minibatch(&mut self, minibatch: &[u64]);

    /// Returns the frequency estimate `f̂ₑ ∈ [fₑ − εn, fₑ]` for `item`.
    fn estimate(&self, item: u64) -> u64;

    /// The sliding-window size `n`.
    fn window(&self) -> u64;

    /// The error parameter ε.
    fn epsilon(&self) -> f64;

    /// Number of per-item counters currently stored (space proxy).
    fn num_counters(&self) -> usize;

    /// Items that currently have a counter, with their estimates.
    fn tracked_items(&self) -> Vec<(u64, u64)>;
}
