//! Work-efficient sliding-window frequency estimation (Theorem 5.4).
//!
//! Algorithm 2 (the space-efficient variant) still spends `O(µ log µ)` work
//! sorting the whole minibatch to build a per-item segment for *every* item,
//! even though all but `O(1/ε)` of those counters are discarded at the end of
//! the minibatch. The work-efficient variant removes that waste in two steps:
//!
//! 1. **`predict`** — build the minibatch histogram (`buildHist`, linear
//!    work), read the post-slide values of the existing counters without
//!    mutating them ([`psfa_window::Sbbc::value_after_slide`]), combine the
//!    two, and compute the pruning cut-off `ϕ` and the survivor set `K`
//!    (at most `S` items). Because an SBBC's value after `advance` equals
//!    its post-slide value plus the number of new occurrences, this predicts
//!    the outcome of Algorithm 2 exactly.
//! 2. **`sift`** (Lemma 5.9) — build per-item segments *only for the
//!    survivors*, advance and decrement those counters, and delete the rest.
//!
//! Total work per minibatch: `O(ε⁻¹ + µ)`; accuracy and space bounds are
//! inherited from Algorithm 2 because the two algorithms maintain identical
//! counter sets.

use std::collections::HashMap;

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{build_hist, phi_cutoff, CompactedSegment, WorkMeter};
use psfa_window::Sbbc;
use rayon::prelude::*;

/// Type tag for encoded sliding-window estimators (see
/// `psfa_primitives::codec`).
const TAG: u8 = 0x06;
const VERSION: u8 = 1;

use crate::sift::sift;
use crate::SlidingFrequencyEstimator;

/// Work-efficient sliding-window frequency estimator (Theorem 5.4).
///
/// Equality compares the persistent state (parameters, per-item counters,
/// histogram seed); an attached [`WorkMeter`] is instrumentation and is
/// ignored.
#[derive(Debug, Clone)]
pub struct SlidingFreqWorkEfficient {
    epsilon: f64,
    n: u64,
    /// Pruning capacity `S = ⌈8/ε⌉`.
    s: usize,
    /// Additive error of each counter, `λ = εn/4` (even, ≥ 2).
    lambda: u64,
    counters: HashMap<u64, Sbbc>,
    seed: u64,
    meter: Option<WorkMeter>,
}

impl PartialEq for SlidingFreqWorkEfficient {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.n == other.n
            && self.s == other.s
            && self.lambda == other.lambda
            && self.seed == other.seed
            && self.counters == other.counters
    }
}

impl SlidingFreqWorkEfficient {
    /// Creates an estimator for window size `n` and error `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `εn < 16`.
    pub fn new(epsilon: f64, n: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(
            epsilon * n as f64 >= 16.0,
            "εn must be at least 16 for the work-efficient variant"
        );
        let s = (8.0 / epsilon).ceil() as usize;
        let lambda = ((((epsilon * n as f64) / 4.0) as u64) & !1).max(2);
        Self {
            epsilon,
            n,
            s,
            lambda,
            counters: HashMap::new(),
            seed: 0xABCD,
            meter: None,
        }
    }

    /// Attaches a [`WorkMeter`] charged with `O(µ + 1/ε)` units per minibatch
    /// (experiment E8).
    pub fn with_meter(mut self, meter: WorkMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// The pruning capacity `S = ⌈8/ε⌉`.
    pub fn capacity(&self) -> usize {
        self.s
    }

    /// The per-counter additive slack `λ = εn/4`.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    /// `predict` (Section 5.3.3): returns the survivor set `K` and the
    /// cut-off `ϕ` that Algorithm 2 would apply to this minibatch.
    fn predict(&mut self, minibatch: &[u64]) -> (Vec<u64>, u64) {
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.seed);
        let mu = minibatch.len() as u64;

        // Post-advance value of every candidate counter: the slid value of an
        // existing counter plus the item's count in the minibatch.
        let mut combined: HashMap<u64, u64> =
            HashMap::with_capacity(self.counters.len() + hist.len());
        for (&item, counter) in &self.counters {
            let slid = counter
                .value_after_slide(mu)
                .expect("unbounded per-item counters never overflow");
            combined.insert(item, slid);
        }
        for e in &hist {
            *combined.entry(e.item).or_insert(0) += e.count;
        }

        let values: Vec<u64> = combined.values().copied().collect();
        let phi = phi_cutoff(&values, self.s);
        let survivors: Vec<u64> = combined
            .into_iter()
            .filter_map(|(item, value)| if value > phi { Some(item) } else { None })
            .collect();
        (survivors, phi)
    }

    /// Canonical binary encoding, appended to `w`. Counters are written in
    /// ascending item order (deterministic bytes); the histogram seed is
    /// included, so a decoded estimator continues the stream exactly as the
    /// original would have. Attached [`WorkMeter`]s are not persisted.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_f64(self.epsilon);
        w.put_u64(self.n);
        w.put_u64(self.seed);
        let mut items: Vec<u64> = self.counters.keys().copied().collect();
        items.sort_unstable();
        w.put_u32(items.len() as u32);
        for item in items {
            w.put_u64(item);
            self.counters[&item].encode_into(w);
        }
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes an estimator previously written by
    /// [`SlidingFreqWorkEfficient::encode_into`], validating the constructor
    /// invariants and every per-item counter (never panics on corrupted
    /// input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let epsilon = r.get_f64()?;
        let n = r.get_u64()?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CodecError::Invalid(
                "sliding estimator: epsilon not in (0, 1)",
            ));
        }
        if epsilon * (n as f64) < 16.0 {
            return Err(CodecError::Invalid(
                "sliding estimator: epsilon * n below 16",
            ));
        }
        let seed = r.get_u64()?;
        let s = (8.0 / epsilon).ceil() as usize;
        let lambda = ((((epsilon * n as f64) / 4.0) as u64) & !1).max(2);
        let len = r.get_len(8)?;
        if len > s {
            return Err(CodecError::Invalid(
                "sliding estimator: more counters than the pruning capacity",
            ));
        }
        let mut counters = HashMap::with_capacity(len);
        let mut prev: Option<u64> = None;
        for _ in 0..len {
            let item = r.get_u64()?;
            if prev.is_some_and(|p| p >= item) {
                return Err(CodecError::Invalid(
                    "sliding estimator: counters must be strictly ascending",
                ));
            }
            prev = Some(item);
            let counter = Sbbc::decode_from(r)?;
            if counter.lambda() != lambda || counter.window() != n {
                return Err(CodecError::Invalid(
                    "sliding estimator: counter parameters inconsistent with (epsilon, n)",
                ));
            }
            counters.insert(item, counter);
        }
        Ok(Self {
            epsilon,
            n,
            s,
            lambda,
            counters,
            seed,
            meter: None,
        })
    }

    /// Decodes an estimator from a standalone buffer produced by
    /// [`SlidingFreqWorkEfficient::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

impl SlidingFrequencyEstimator for SlidingFreqWorkEfficient {
    fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        let minibatch = if minibatch.len() as u64 >= self.n {
            // WLOG assumption: a window-sized minibatch resets the state.
            self.counters.clear();
            &minibatch[minibatch.len() - self.n as usize..]
        } else {
            minibatch
        };
        let mu = minibatch.len() as u64;

        // Phase 1: predict the survivors and the cut-off.
        let (survivors, phi) = self.predict(minibatch);

        // Phase 2: per-item segments for the survivors only.
        let segments = sift(minibatch, &survivors);

        if let Some(meter) = &self.meter {
            // predict: O(µ) histogram + O(1/ε) counter reads; sift: O(µ + |K|);
            // advance/decrement: O(1/ε) amortised.
            meter.charge(2 * mu + (self.counters.len() + self.s + survivors.len()) as u64);
        }

        // Phase 3: keep exactly the survivors, advancing and decrementing them.
        let template = Sbbc::unbounded(self.lambda, self.n).assume_zero_history();
        let mut kept: HashMap<u64, Sbbc> = HashMap::with_capacity(survivors.len());
        for &item in &survivors {
            let counter = self
                .counters
                .remove(&item)
                .unwrap_or_else(|| template.clone());
            kept.insert(item, counter);
        }
        kept.par_iter_mut().for_each(|(item, counter)| {
            let segment = segments
                .get(item)
                .cloned()
                .unwrap_or_else(|| CompactedSegment::zeros(mu));
            counter.advance(&segment);
            if phi > 0 {
                counter.decrement(phi);
            }
        });
        kept.retain(|_, counter| counter.value().unwrap_or(0) > 0);
        self.counters = kept;
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.counters.get(&item) {
            None => 0,
            Some(counter) => counter
                .value()
                .expect("unbounded per-item counters never overflow")
                .saturating_sub(self.lambda),
        }
    }

    fn window(&self) -> u64 {
        self.n
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn num_counters(&self) -> usize {
        self.counters.len()
    }

    fn tracked_items(&self) -> Vec<(u64, u64)> {
        self.counters
            .keys()
            .map(|&item| (item, self.estimate(item)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sliding_space::SlidingFreqSpaceEfficient;
    use crate::test_support::{check_sliding_bounds, SlidingDriver};

    #[test]
    fn theorem_5_4_accuracy_uniform() {
        let mut driver = SlidingDriver::new(21);
        let mut est = SlidingFreqWorkEfficient::new(0.1, 2000);
        for _ in 0..30 {
            let batch = driver.uniform_batch(250, 60);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn theorem_5_4_accuracy_skewed() {
        let mut driver = SlidingDriver::new(22);
        let mut est = SlidingFreqWorkEfficient::new(0.05, 4000);
        for _ in 0..25 {
            let batch = driver.skewed_batch(400, 6, 3000);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn space_stays_bounded() {
        let mut driver = SlidingDriver::new(23);
        let mut est = SlidingFreqWorkEfficient::new(0.1, 5000);
        for _ in 0..20 {
            let batch = driver.uniform_batch(600, 5000);
            est.process_minibatch(&batch);
            assert!(est.num_counters() <= est.capacity());
        }
    }

    #[test]
    fn matches_space_efficient_variant_exactly() {
        // The work-efficient algorithm simulates Algorithm 2; on the same
        // stream both must maintain identical counter sets and estimates.
        let mut driver = SlidingDriver::new(24);
        let mut work = SlidingFreqWorkEfficient::new(0.1, 3000);
        let mut space = SlidingFreqSpaceEfficient::new(0.1, 3000);
        for _ in 0..20 {
            let batch = driver.skewed_batch(350, 8, 1000);
            work.process_minibatch(&batch);
            space.process_minibatch(&batch);
            let mut a = work.tracked_items();
            let mut b = space.tracked_items();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "work-efficient and Algorithm 2 diverged");
        }
    }

    #[test]
    fn heavy_items_survive() {
        let mut driver = SlidingDriver::new(25);
        let mut est = SlidingFreqWorkEfficient::new(0.05, 4000);
        for _ in 0..20 {
            let batch = driver.skewed_batch(400, 3, 10_000);
            est.process_minibatch(&batch);
        }
        for item in 0..3u64 {
            assert!(est.estimate(item) > 0, "heavy item {item} lost");
        }
    }

    #[test]
    fn giant_minibatch_resets_state() {
        let n = 1000u64;
        let mut est = SlidingFreqWorkEfficient::new(0.1, n);
        est.process_minibatch(&vec![1u64; 800]);
        let mut batch = vec![2u64; 1200];
        batch.extend(vec![3u64; 800]);
        est.process_minibatch(&batch);
        assert_eq!(est.estimate(1), 0);
        assert!(est.estimate(2) <= 200 + est.lambda());
        assert!(est.estimate(3) <= 800);
    }

    #[test]
    fn meter_is_linear_in_batch_size() {
        let meter = WorkMeter::new();
        let mut est = SlidingFreqWorkEfficient::new(0.1, 20_000).with_meter(meter.clone());
        let mut driver = SlidingDriver::new(26);
        let mu = 2000usize;
        for _ in 0..5 {
            let batch = driver.uniform_batch(mu, 500);
            est.process_minibatch(&batch);
        }
        let per_batch = meter.total() as f64 / 5.0;
        let s = est.capacity() as f64;
        assert!(per_batch >= mu as f64);
        assert!(per_batch <= 6.0 * (mu as f64 + s));
    }
}
