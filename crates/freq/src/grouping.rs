//! Internal helper: group a minibatch into per-item compacted segments.
//!
//! Used by the basic (Theorem 5.5) and space-efficient (Theorem 5.8)
//! sliding-window algorithms, which the paper implements by tagging each
//! element with its position and gathering identical items with a parallel
//! sort — `O(µ log µ)` work and polylogarithmic depth. (The work-efficient
//! variant avoids this step via `predict` + `sift`.)

use std::collections::HashMap;

use psfa_primitives::CompactedSegment;
use rayon::prelude::*;

/// Returns, for every distinct item of `minibatch`, the CSS of its indicator
/// sequence within the minibatch.
pub(crate) fn group_by_item(minibatch: &[u64]) -> HashMap<u64, CompactedSegment> {
    let len = minibatch.len() as u64;
    if minibatch.is_empty() {
        return HashMap::new();
    }
    let mut tagged: Vec<(u64, u64)> = minibatch
        .par_iter()
        .enumerate()
        .map(|(pos, &item)| (item, pos as u64))
        .collect();
    // Stable parallel sort by item id keeps positions in increasing order
    // within each item's run.
    tagged.par_sort_by_key(|&(item, pos)| (item, pos));

    let mut out = HashMap::new();
    let mut start = 0usize;
    while start < tagged.len() {
        let item = tagged[start].0;
        let mut end = start + 1;
        while end < tagged.len() && tagged[end].0 == item {
            end += 1;
        }
        let positions: Vec<u64> = tagged[start..end].iter().map(|&(_, pos)| pos).collect();
        out.insert(item, CompactedSegment::from_positions(len, positions));
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_match_predicate_construction() {
        let batch: Vec<u64> = (0..5000u64).map(|i| (i * 37) % 23).collect();
        let groups = group_by_item(&batch);
        assert_eq!(groups.len(), 23);
        for (&item, css) in &groups {
            assert_eq!(
                *css,
                CompactedSegment::from_predicate(&batch, |&x| x == item)
            );
        }
        let total: u64 = groups.values().map(CompactedSegment::count_ones).sum();
        assert_eq!(total, batch.len() as u64);
    }

    #[test]
    fn empty_minibatch() {
        assert!(group_by_item(&[]).is_empty());
    }
}
