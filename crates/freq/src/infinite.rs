//! Infinite-window parallel frequency estimation (Theorem 5.2).
//!
//! The estimator keeps a single shared Misra–Gries summary with
//! `S = ⌈1/ε⌉` counters. A minibatch of `µ` items is incorporated by
//! building its frequency histogram with the linear-work `buildHist`
//! (Theorem 2.3) and merging the histogram into the summary with
//! `MGaugment` (Lemma 5.3), for `O(ε⁻¹ + µ)` work and polylogarithmic
//! depth — matching the best sequential algorithm's work and beating the
//! `Ω(1/ε)` depth of merge-based approaches.

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{build_hist, HistogramEntry, WorkMeter};

use crate::summary::MgSummary;

/// Type tag for encoded estimators (see `psfa_primitives::codec`).
const TAG: u8 = 0x04;
const VERSION: u8 = 1;

/// Infinite-window frequency estimator with guarantee
/// `f̂ₑ ∈ [fₑ − εm, fₑ]` after `m` stream elements (Theorem 5.2).
///
/// Equality compares the persistent state (ε, summary, stream length, seed);
/// an attached [`WorkMeter`] is instrumentation and is ignored.
#[derive(Debug, Clone)]
pub struct ParallelFrequencyEstimator {
    epsilon: f64,
    summary: MgSummary,
    /// Total number of stream elements processed so far (`m`).
    stream_len: u64,
    /// Seed for the histogram hash function; advanced per minibatch.
    seed: u64,
    /// Optional work meter charged with the dominant operations.
    meter: Option<WorkMeter>,
}

impl PartialEq for ParallelFrequencyEstimator {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.summary == other.summary
            && self.stream_len == other.stream_len
            && self.seed == other.seed
    }
}

impl ParallelFrequencyEstimator {
    /// Creates an estimator with error parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            summary: MgSummary::new(capacity),
            stream_len: 0,
            seed: 0x5eed_c0de,
            meter: None,
        }
    }

    /// Rebuilds an estimator from previously published `(item, estimate)`
    /// pairs and the stream length they covered — the reseed path a
    /// supervisor uses after a worker panic, starting from the shard's
    /// last published snapshot. Snapshot estimates are one-sided
    /// (`f̂ₑ ∈ [fₑ − εm, fₑ]`), so the rebuilt estimator keeps the
    /// Theorem 5.2 guarantee for the `stream_len` elements it claims to
    /// cover. This deliberately bypasses [`Self::process_histogram`],
    /// whose contract (histogram counts sum to the declared item count)
    /// does not hold for summary entries.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or there are more non-zero
    /// entries than the summary capacity `⌈1/ε⌉`.
    pub fn from_entries(epsilon: f64, entries: &[(u64, u64)], stream_len: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            summary: MgSummary::from_entries(capacity, entries),
            stream_len,
            seed: 0x5eed_c0de,
            meter: None,
        }
    }

    /// Attaches a [`WorkMeter`] that is charged `O(µ + S)` units per
    /// minibatch, used by the work-optimality experiment (E8).
    pub fn with_meter(mut self, meter: WorkMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The summary capacity `S = ⌈1/ε⌉`.
    pub fn capacity(&self) -> usize {
        self.summary.capacity()
    }

    /// Number of counters currently stored (`≤ S`).
    pub fn num_counters(&self) -> usize {
        self.summary.len()
    }

    /// Total number of elements processed so far (`m`).
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Incorporates one minibatch of item identifiers.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        self.seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.seed);
        if let Some(meter) = &self.meter {
            // buildHist is Θ(µ); MGaugment is Θ(S + p) with p ≤ µ.
            meter.charge(
                minibatch.len() as u64 + self.summary.capacity() as u64 + hist.len() as u64,
            );
        }
        self.summary.augment(&hist);
        self.stream_len += minibatch.len() as u64;
    }

    /// Incorporates one minibatch given its precomputed frequency
    /// histogram (`items` = the minibatch length, i.e. the sum of the
    /// histogram counts). Skips the `buildHist` pass, so a caller feeding
    /// the *same* minibatch into several summaries — the engine's shard
    /// workers update the infinite-window tracker and the sliding-window
    /// pane from one histogram — pays for it once. The estimator state
    /// after this call is identical to [`Self::process_minibatch`] on the
    /// originating minibatch (the histogram's entry order is irrelevant to
    /// `MGaugment`), except that the internal histogram seed is not
    /// advanced — the caller owns histogram construction.
    ///
    /// Returns the `MGaugment` cut-off `ϕ` that was applied: `0` means no
    /// counter was decremented — in particular, no tracked item can have
    /// been evicted, which is how the engine's lazy snapshot publication
    /// detects membership churn (a non-zero cut-off may have swapped one
    /// item for another without changing the entry count).
    pub fn process_histogram(&mut self, histogram: &[HistogramEntry], items: u64) -> u64 {
        debug_assert_eq!(
            histogram.iter().map(|e| e.count).sum::<u64>(),
            items,
            "histogram does not cover the declared item count"
        );
        if items == 0 {
            return 0;
        }
        if let Some(meter) = &self.meter {
            meter.charge(self.summary.capacity() as u64 + histogram.len() as u64);
        }
        let cutoff = self.summary.augment(histogram);
        self.stream_len += items;
        cutoff
    }

    /// Returns the estimate `f̂ₑ ∈ [fₑ − εm, fₑ]` for `item`.
    pub fn estimate(&self, item: u64) -> u64 {
        self.summary.estimate(item)
    }

    /// Merges another estimator over a *disjoint or concatenated* stream
    /// into this one (mergeable-summaries semantics; see
    /// [`crate::MgSummary::merge`]).
    ///
    /// After merging, `self` estimates frequencies of the combined stream of
    /// `m = m₁ + m₂` elements with the same one-sided guarantee
    /// `f̂ₑ ∈ [fₑ − εm, fₑ]`.
    ///
    /// # Panics
    /// Panics if the two estimators were built with different `ε` (their
    /// summaries would have incompatible capacities).
    pub fn merge(&mut self, other: &ParallelFrequencyEstimator) {
        assert!(
            self.summary.capacity() == other.summary.capacity(),
            "merge requires estimators with matching epsilon/capacity"
        );
        self.summary.merge(&other.summary);
        self.stream_len += other.stream_len;
    }

    /// All tracked `(item, estimate)` pairs in unspecified order.
    pub fn tracked_items(&self) -> Vec<(u64, u64)> {
        self.summary.entries()
    }

    /// All tracked `(item, estimate)` pairs, ascending by item — the layout
    /// snapshot publication wants: point queries binary-search it and
    /// cross-shard merges run as sorted merges ([`crate::merge_sum`]).
    pub fn tracked_items_sorted(&self) -> Vec<(u64, u64)> {
        let mut entries = self.summary.entries();
        entries.sort_unstable_by_key(|&(item, _)| item);
        entries
    }

    /// Canonical binary encoding, appended to `w`. The histogram seed is
    /// included, so a decoded estimator continues the stream exactly as the
    /// original would have (attached [`WorkMeter`]s are not persisted).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_f64(self.epsilon);
        w.put_u64(self.stream_len);
        w.put_u64(self.seed);
        self.summary.encode_into(w);
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes an estimator previously written by
    /// [`ParallelFrequencyEstimator::encode_into`] (never panics on
    /// corrupted input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let epsilon = r.get_f64()?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CodecError::Invalid(
                "frequency estimator: epsilon not in (0, 1)",
            ));
        }
        let stream_len = r.get_u64()?;
        let seed = r.get_u64()?;
        let summary = MgSummary::decode_from(r)?;
        if summary.capacity() != (1.0 / epsilon).ceil() as usize {
            return Err(CodecError::Invalid(
                "frequency estimator: summary capacity inconsistent with epsilon",
            ));
        }
        Ok(Self {
            epsilon,
            summary,
            stream_len,
            seed,
            meter: None,
        })
    }

    /// Decodes an estimator from a standalone buffer produced by
    /// [`ParallelFrequencyEstimator::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }

    /// Reports every item whose estimate certifies it *may* be a φ-heavy
    /// hitter: all items with `f̂ₑ ≥ (φ − ε)·m` are returned. By the standard
    /// reduction (Section 5 intro) this output contains every item with
    /// `fₑ ≥ φm` and no item with `fₑ < (φ − ε)·m`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = ((phi - self.epsilon) * self.stream_len as f64).max(0.0);
        let mut out: Vec<(u64, u64)> = self
            .summary
            .entries()
            .into_iter()
            .filter(|&(_, est)| est as f64 >= threshold)
            .collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// Drives the estimator over a stream and checks the Theorem 5.2 bound
    /// after every minibatch.
    fn drive(epsilon: f64, batches: usize, mu: usize, universe: u64, skew: bool, seed: u64) {
        let mut est = ParallelFrequencyEstimator::new(epsilon);
        let mut rng = Lcg(seed);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut m = 0u64;
        for _ in 0..batches {
            let batch: Vec<u64> = (0..mu)
                .map(|_| {
                    let r = rng.next();
                    if skew && !r.is_multiple_of(3) {
                        r % 8 // heavy items
                    } else {
                        r % universe
                    }
                })
                .collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            m += batch.len() as u64;
            est.process_minibatch(&batch);
            let allowed = (epsilon * m as f64).ceil() as u64;
            for (&item, &f) in &truth {
                let fh = est.estimate(item);
                assert!(fh <= f, "estimate {fh} above true frequency {f}");
                assert!(
                    fh + allowed >= f,
                    "estimate {fh} under {f} by more than εm = {allowed}"
                );
            }
        }
        assert_eq!(est.stream_len(), m);
        assert!(est.num_counters() <= est.capacity());
    }

    #[test]
    fn theorem_5_2_uniform_stream() {
        drive(0.05, 20, 500, 1000, false, 1);
    }

    #[test]
    fn theorem_5_2_skewed_stream() {
        drive(0.02, 20, 800, 10_000, true, 2);
    }

    #[test]
    fn theorem_5_2_coarse_epsilon() {
        drive(0.25, 30, 200, 50, true, 3);
    }

    #[test]
    fn heavy_hitters_no_false_negatives_and_no_bad_items() {
        let epsilon = 0.01;
        let phi = 0.05;
        let mut est = ParallelFrequencyEstimator::new(epsilon);
        let mut rng = Lcg(7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..40 {
            let batch: Vec<u64> = (0..1000)
                .map(|_| {
                    let r = rng.next();
                    if r.is_multiple_of(2) {
                        r % 5 // five genuinely heavy items
                    } else {
                        5 + r % 5000
                    }
                })
                .collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            est.process_minibatch(&batch);
        }
        let m: u64 = truth.values().sum();
        let reported: Vec<u64> = est.heavy_hitters(phi).into_iter().map(|(i, _)| i).collect();
        // Every item with f >= φm must be reported.
        for (&item, &f) in &truth {
            if f as f64 >= phi * m as f64 {
                assert!(
                    reported.contains(&item),
                    "missed heavy hitter {item} (f = {f})"
                );
            }
        }
        // No reported item may have f < (φ - ε)m.
        for &item in &reported {
            let f = truth.get(&item).copied().unwrap_or(0) as f64;
            assert!(
                f >= (phi - epsilon) * m as f64,
                "reported item {item} with frequency {f} below (φ−ε)m"
            );
        }
    }

    #[test]
    fn empty_minibatch_is_noop() {
        let mut est = ParallelFrequencyEstimator::new(0.1);
        est.process_minibatch(&[]);
        assert_eq!(est.stream_len(), 0);
        assert_eq!(est.num_counters(), 0);
    }

    #[test]
    fn single_item_stream_is_tracked_exactly() {
        let mut est = ParallelFrequencyEstimator::new(0.1);
        for _ in 0..10 {
            est.process_minibatch(&vec![42u64; 100]);
        }
        assert_eq!(est.estimate(42), 1000);
    }

    #[test]
    fn meter_charges_linear_work() {
        let meter = WorkMeter::new();
        let mut est = ParallelFrequencyEstimator::new(0.1).with_meter(meter.clone());
        let batch: Vec<u64> = (0..1000u64).map(|i| i % 17).collect();
        for _ in 0..5 {
            est.process_minibatch(&batch);
        }
        let per_batch = meter.total() as f64 / 5.0;
        // Work per minibatch should be Θ(µ + S): between µ and a small
        // constant multiple of µ + S.
        let mu = 1000.0;
        let s = est.capacity() as f64;
        assert!(per_batch >= mu);
        assert!(per_batch <= 4.0 * (mu + s));
    }

    #[test]
    fn varying_minibatch_sizes() {
        let mut est = ParallelFrequencyEstimator::new(0.05);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = Lcg(99);
        let mut m = 0u64;
        for size in [1usize, 3, 17, 256, 4097, 10] {
            let batch: Vec<u64> = (0..size).map(|_| rng.next() % 100).collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            m += size as u64;
            est.process_minibatch(&batch);
        }
        let allowed = (0.05 * m as f64).ceil() as u64;
        for (&item, &f) in &truth {
            let fh = est.estimate(item);
            assert!(fh <= f && fh + allowed >= f);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        let _ = ParallelFrequencyEstimator::new(0.0);
    }

    #[test]
    fn merged_estimators_cover_the_combined_stream() {
        let epsilon = 0.05;
        let mut rng = Lcg(41);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut parts = Vec::new();
        for _ in 0..3 {
            let mut est = ParallelFrequencyEstimator::new(epsilon);
            for _ in 0..10 {
                let batch: Vec<u64> = (0..400).map(|_| rng.next() % 50).collect();
                for &x in &batch {
                    *truth.entry(x).or_insert(0) += 1;
                }
                est.process_minibatch(&batch);
            }
            parts.push(est);
        }
        let mut merged = parts.swap_remove(0);
        for part in &parts {
            merged.merge(part);
        }
        let m: u64 = truth.values().sum();
        assert_eq!(merged.stream_len(), m);
        let allowed = (epsilon * m as f64).ceil() as u64;
        for (&item, &f) in &truth {
            let fh = merged.estimate(item);
            assert!(fh <= f, "merged estimate {fh} above true frequency {f}");
            assert!(
                fh + allowed >= f,
                "merged estimate {fh} under {f} by more than εm"
            );
        }
    }

    #[test]
    #[should_panic(expected = "matching epsilon")]
    fn merge_rejects_mismatched_epsilon() {
        let mut a = ParallelFrequencyEstimator::new(0.1);
        let b = ParallelFrequencyEstimator::new(0.01);
        a.merge(&b);
    }
}
