//! Basic sliding-window frequency estimation (Theorem 5.5).
//!
//! The simplest application of the SBBC: keep one `(∞, n/S)`-SBBC per item
//! ever observed, advance every counter on every minibatch (items absent
//! from the minibatch advance over an all-zero segment so their windows
//! still slide), and answer a query for item `e` with
//! `f̂ₑ = val(Γₑ) − n/S`, which satisfies `fₑ − εn ≤ f̂ₑ ≤ fₑ`.
//!
//! This variant meets the accuracy bound but neither the space nor the work
//! bound of the best sequential algorithm — its space grows with the number
//! of distinct items `|B|`. It is kept as the stepping stone the paper uses
//! (and as the comparison point for experiment E5).

use std::collections::HashMap;

use psfa_primitives::CompactedSegment;
use psfa_window::Sbbc;
use rayon::prelude::*;

use crate::grouping::group_by_item;
use crate::SlidingFrequencyEstimator;

/// Basic sliding-window frequency estimator: one SBBC per observed item.
#[derive(Debug, Clone)]
pub struct SlidingFreqBasic {
    epsilon: f64,
    n: u64,
    /// Additive slack `λ = n/S` used by each per-item counter.
    lambda: u64,
    counters: HashMap<u64, Sbbc>,
}

impl SlidingFreqBasic {
    /// Creates an estimator for window size `n` and error `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `n < 4`.
    pub fn new(epsilon: f64, n: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(n >= 4, "window size must be at least 4");
        let s = (1.0 / epsilon).ceil();
        // λ = n/S, rounded down to an even integer ≥ 2 so the additive error
        // never exceeds εn.
        let lambda = (((n as f64 / s) as u64) & !1).max(2);
        Self {
            epsilon,
            n,
            lambda,
            counters: HashMap::new(),
        }
    }

    /// The per-counter additive slack λ = n/S.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    fn new_counter(&self) -> Sbbc {
        Sbbc::unbounded(self.lambda, self.n).assume_zero_history()
    }
}

impl SlidingFrequencyEstimator for SlidingFreqBasic {
    fn process_minibatch(&mut self, minibatch: &[u64]) {
        let mu = minibatch.len() as u64;
        if mu == 0 {
            return;
        }
        // Step 1: per-item indicator segments for items present in the batch.
        let mut segments = group_by_item(minibatch);
        // Step 2: ensure a counter exists for every item in T or B, then
        // advance every counter (absent items over an all-zero segment).
        let template = self.new_counter();
        for &item in segments.keys() {
            self.counters
                .entry(item)
                .or_insert_with(|| template.clone());
        }
        let zero = CompactedSegment::zeros(mu);
        self.counters
            .par_iter_mut()
            .for_each(|(item, counter)| match segments.get(item) {
                Some(css) => counter.advance(css),
                None => counter.advance(&zero),
            });
        segments.clear();
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.counters.get(&item) {
            None => 0,
            Some(counter) => {
                let val = counter
                    .value()
                    .expect("unbounded per-item counters never overflow");
                val.saturating_sub(self.lambda)
            }
        }
    }

    fn window(&self) -> u64 {
        self.n
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn num_counters(&self) -> usize {
        self.counters.len()
    }

    fn tracked_items(&self) -> Vec<(u64, u64)> {
        self.counters
            .keys()
            .map(|&item| (item, self.estimate(item)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_sliding_bounds, SlidingDriver};

    #[test]
    fn theorem_5_5_accuracy_uniform() {
        let mut driver = SlidingDriver::new(1);
        let mut est = SlidingFreqBasic::new(0.1, 2000);
        for _ in 0..25 {
            let batch = driver.uniform_batch(300, 40);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn theorem_5_5_accuracy_skewed() {
        let mut driver = SlidingDriver::new(2);
        let mut est = SlidingFreqBasic::new(0.05, 4000);
        for _ in 0..20 {
            let batch = driver.skewed_batch(500, 5, 2000);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn absent_item_estimates_zero() {
        let mut est = SlidingFreqBasic::new(0.1, 100);
        est.process_minibatch(&[1, 2, 3]);
        assert_eq!(est.estimate(99), 0);
    }

    #[test]
    fn items_expire_as_window_slides() {
        let n = 64u64;
        let mut est = SlidingFreqBasic::new(0.25, n);
        est.process_minibatch(&vec![7u64; 64]);
        assert!(est.estimate(7) > 0);
        // Push two full windows of a different item; 7 must decay to zero
        // (up to the additive slack, which the estimate subtracts).
        for _ in 0..4 {
            est.process_minibatch(&vec![8u64; 64]);
        }
        assert_eq!(est.estimate(7), 0, "expired item should estimate 0");
        assert!(est.estimate(8) > 0);
    }

    #[test]
    fn space_grows_with_distinct_items() {
        // The known drawback of the basic variant: |B| counters.
        let mut est = SlidingFreqBasic::new(0.1, 10_000);
        let batch: Vec<u64> = (0..3000u64).collect();
        est.process_minibatch(&batch);
        assert_eq!(est.num_counters(), 3000);
    }
}
