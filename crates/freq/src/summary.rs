//! The Misra–Gries summary and the parallel `MGaugment` merge (Lemma 5.3).
//!
//! An MG summary of capacity `S = ⌈1/ε⌉` stores at most `S` items with
//! counters. The classic sequential algorithm processes one element at a
//! time; the paper's parallel algorithm instead merges the summary with the
//! *histogram of a whole minibatch* in one shot:
//!
//! 1. add corresponding counters of the summary and the histogram;
//! 2. find the cut-off `ϕ` such that at most `S` combined counters exceed it
//!    (a rank-selection problem, [`psfa_primitives::phi_cutoff`]);
//! 3. subtract `ϕ` from every counter and keep the strictly positive ones.
//!
//! Subtracting `ϕ` is equivalent to `ϕ` rounds of the sequential decrement
//! step, each of which decrements at least `S` distinct counters — so the
//! estimate error after processing `m` elements stays below `m / S ≤ εm`
//! (Lemma 5.1 / Lemma 5.3).

use std::collections::HashMap;

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{phi_cutoff_in_place, HistogramEntry};

/// Type tag for encoded MG summaries (see `psfa_primitives::codec`).
const TAG: u8 = 0x03;
const VERSION: u8 = 1;

/// A Misra–Gries summary: at most `capacity` items with approximate counters.
#[derive(Debug)]
pub struct MgSummary {
    capacity: usize,
    entries: HashMap<u64, u64>,
    /// Reusable counter-value buffer for the cut-off selection in
    /// [`MgSummary::augment`]; pure scratch, excluded from equality and
    /// cloning.
    scratch: Vec<u64>,
    /// High-water mark of the map reservation target (`2·(S + p)` for the
    /// widest batch seen). Monotone on purpose: `HashMap::capacity()` dips
    /// as `retain` leaves tombstones behind, so re-deriving the guard from
    /// it would re-reserve (and possibly reallocate) in steady state.
    reserved: usize,
}

impl Clone for MgSummary {
    /// Clones the persistent state only — the clone starts with empty
    /// scratch (copying up to `S + p` dead selection values would charge
    /// every state clone, e.g. a persistence cut, for nothing).
    fn clone(&self) -> Self {
        Self {
            capacity: self.capacity,
            entries: self.entries.clone(),
            scratch: Vec::new(),
            // The cloned map is sized for its current entries, not the
            // original's reservation, so the clone starts cold.
            reserved: 0,
        }
    }
}

impl PartialEq for MgSummary {
    fn eq(&self, other: &Self) -> bool {
        self.capacity == other.capacity && self.entries == other.entries
    }
}

impl Eq for MgSummary {}

impl MgSummary {
    /// Creates an empty summary with room for `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "summary capacity must be at least 1");
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            scratch: Vec::new(),
            reserved: 0,
        }
    }

    /// Rebuilds a summary from previously published `(item, counter)`
    /// pairs — e.g. the heavy-hitter entries of a shard snapshot. The
    /// entries of an MG summary are one-sided underestimates of the true
    /// frequencies, and this constructor copies them verbatim, so the
    /// rebuilt summary inherits the one-sided guarantee of the summary it
    /// was published from. Zero-count pairs are dropped (an MG summary
    /// never stores a zero counter).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or there are more non-zero entries than
    /// `capacity`.
    pub fn from_entries(capacity: usize, entries: &[(u64, u64)]) -> Self {
        assert!(capacity >= 1, "summary capacity must be at least 1");
        let mut map = HashMap::with_capacity(capacity + 1);
        for &(item, count) in entries {
            if count > 0 {
                map.insert(item, count);
            }
        }
        assert!(
            map.len() <= capacity,
            "more entries than the summary capacity"
        );
        Self {
            capacity,
            entries: map,
            scratch: Vec::new(),
            reserved: 0,
        }
    }

    /// The maximum number of counters retained (`S` in the paper).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of counters currently stored (always `≤ capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no counters are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter value for `item` (`0` when the item is not tracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.entries.get(&item).copied().unwrap_or(0)
    }

    /// All tracked `(item, counter)` pairs in unspecified order.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.entries.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Sequential Misra–Gries update for a single element (Algorithm 1).
    ///
    /// Provided for completeness and for differential testing against the
    /// batch path; the parallel pipeline uses [`MgSummary::augment`].
    pub fn update_sequential(&mut self, item: u64) {
        if let Some(c) = self.entries.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(item, 1);
            return;
        }
        // Decrement every counter; drop the ones that reach zero.
        self.entries.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// `MGaugment` (Lemma 5.3): merges a minibatch histogram into the summary.
    ///
    /// Runs in `O(S + p)` work where `p` is the number of distinct items in
    /// the histogram. Returns the cut-off `ϕ` that was applied (useful for
    /// instrumentation; `0` means no counter was decremented).
    ///
    /// The combine–select–subtract steps mutate the counter map **in
    /// place** (the map is the combined set once the histogram is added;
    /// `retain` keeps its table). The map and the selection buffer are
    /// pre-sized to the transient combined set `S + p` before combining,
    /// so once they have grown to the largest batch seen, an augment
    /// performs **zero** heap allocations — no mid-combine rehash even
    /// when `p` spikes. This is the per-minibatch core of the engine's
    /// ingest hot path (asserted by E13's counting-allocator audit).
    pub fn augment(&mut self, histogram: &[HistogramEntry]) -> u64 {
        // Pre-size for the transient combined set: the map holds up to
        // S + p entries between step 1 and step 3. The target is *twice*
        // that so the hash table always has room to reclaim the tombstones
        // `retain` leaves behind by rehashing in place inside its existing
        // allocation — at `2·(S + p)` the live set never crosses the
        // half-full threshold that would force a reallocating resize. The
        // guard is the monotone `reserved` high-water mark, not
        // `HashMap::capacity()` (which dips as tombstones accumulate), so
        // after the widest batch has been seen once no augment ever
        // reserves, rehashes mid-combine, or allocates again.
        let combined = 2 * (self.capacity + histogram.len());
        if combined > self.reserved {
            self.reserved = combined;
            self.entries
                .reserve(combined.saturating_sub(self.entries.len()));
        }
        // Step 1: combine counters (the map transiently holds up to
        // S + p entries).
        for e in histogram {
            *self.entries.entry(e.item).or_insert(0) += e.count;
        }
        if self.entries.len() <= self.capacity {
            // `phi_cutoff` is 0 whenever at most S counters exist; skip
            // even reading the values out.
            return 0;
        }

        // Step 2: find the cut-off ϕ such that at most S counters exceed it.
        self.scratch.clear();
        self.scratch.reserve(self.entries.len());
        self.scratch.extend(self.entries.values().copied());
        let phi = phi_cutoff_in_place(&mut self.scratch, self.capacity);

        // Step 3: subtract ϕ and keep the strictly positive counters.
        if phi > 0 {
            self.entries.retain(|_, count| {
                *count = count.saturating_sub(phi);
                *count > 0
            });
        }
        debug_assert!(self.entries.len() <= self.capacity);
        phi
    }

    /// Merges another summary into this one (mergeable-summaries semantics,
    /// Agarwal et al.): counters are added item-wise, then the combined set
    /// is cut back to `capacity` with the same cut-off rule as
    /// [`MgSummary::augment`]. Returns the applied cut-off `ϕ`.
    ///
    /// If `self` summarises a stream of `m₁` elements with error `m₁/S` and
    /// `other` summarises `m₂` elements with error `m₂/S`, the merged
    /// summary underestimates true frequencies of the concatenated stream by
    /// at most `(m₁ + m₂)/S` — per-shard ε summaries merge into a global ε
    /// summary. This is the query-side primitive behind cross-shard queries
    /// in `psfa-engine`.
    pub fn merge(&mut self, other: &MgSummary) -> u64 {
        let histogram: Vec<HistogramEntry> = other
            .entries
            .iter()
            .map(|(&item, &count)| HistogramEntry { item, count })
            .collect();
        self.augment(&histogram)
    }

    /// Canonical binary encoding, appended to `w`. Entries are written in
    /// ascending item order, so encoding the same logical summary always
    /// produces identical bytes.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_u64(self.capacity as u64);
        let mut entries: Vec<(u64, u64)> = self.entries();
        entries.sort_unstable();
        w.put_u32(entries.len() as u32);
        for (item, count) in entries {
            w.put_u64(item);
            w.put_u64(count);
        }
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a summary previously written by [`MgSummary::encode_into`],
    /// validating every structural invariant (never panics on corrupted
    /// input, never over-allocates from a corrupted length).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let capacity = r.get_u64()?;
        if capacity == 0 || capacity > usize::MAX as u64 {
            return Err(CodecError::Invalid("mg-summary: invalid capacity"));
        }
        let len = r.get_len(16)?;
        if len as u64 > capacity {
            return Err(CodecError::Invalid(
                "mg-summary: more entries than capacity",
            ));
        }
        let mut entries = HashMap::with_capacity(len);
        let mut prev: Option<u64> = None;
        for _ in 0..len {
            let item = r.get_u64()?;
            let count = r.get_u64()?;
            if count == 0 {
                return Err(CodecError::Invalid("mg-summary: zero counter stored"));
            }
            if prev.is_some_and(|p| p >= item) {
                return Err(CodecError::Invalid(
                    "mg-summary: entries must be strictly ascending",
                ));
            }
            prev = Some(item);
            entries.insert(item, count);
        }
        Ok(Self {
            capacity: capacity as usize,
            entries,
            scratch: Vec::new(),
            reserved: 0,
        })
    }

    /// Decodes a summary from a standalone buffer produced by
    /// [`MgSummary::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(u64, u64)]) -> Vec<HistogramEntry> {
        pairs
            .iter()
            .map(|&(item, count)| HistogramEntry { item, count })
            .collect()
    }

    #[test]
    fn augment_without_overflow_keeps_exact_counts() {
        let mut s = MgSummary::new(10);
        s.augment(&hist(&[(1, 5), (2, 3)]));
        s.augment(&hist(&[(1, 2), (3, 1)]));
        assert_eq!(s.estimate(1), 7);
        assert_eq!(s.estimate(2), 3);
        assert_eq!(s.estimate(3), 1);
        assert_eq!(s.estimate(99), 0);
    }

    #[test]
    fn augment_respects_capacity() {
        let mut s = MgSummary::new(3);
        let entries: Vec<(u64, u64)> = (0..20).map(|i| (i, 1 + i % 4)).collect();
        s.augment(&hist(&entries));
        assert!(s.len() <= 3);
    }

    #[test]
    fn augment_decrement_preserves_mg_invariant() {
        // After processing m elements, every counter underestimates the true
        // frequency by at most m / S.
        let capacity = 5usize;
        let mut s = MgSummary::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut m = 0u64;
        let mut state = 17u64;
        for batch in 0..50 {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for _ in 0..100 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(batch);
                let item = (state >> 33) % 12;
                *counts.entry(item).or_insert(0) += 1;
                *truth.entry(item).or_insert(0) += 1;
                m += 1;
            }
            let h: Vec<HistogramEntry> = counts
                .into_iter()
                .map(|(item, count)| HistogramEntry { item, count })
                .collect();
            s.augment(&h);
            for (&item, &f) in &truth {
                let c = s.estimate(item);
                assert!(c <= f, "counter {c} above true frequency {f}");
                assert!(
                    c + m / capacity as u64 >= f,
                    "counter {c} under-estimates {f} by more than m/S = {}",
                    m / capacity as u64
                );
            }
        }
    }

    #[test]
    fn sequential_update_matches_classic_behaviour() {
        let mut s = MgSummary::new(2);
        for item in [1, 1, 2, 3] {
            s.update_sequential(item);
        }
        // Classic MG with S = 2 on [1,1,2,3]: the arrival of 3 decrements all.
        assert_eq!(s.estimate(1), 1);
        assert_eq!(s.estimate(2), 0);
        assert_eq!(s.estimate(3), 0);
        assert!(s.len() <= 2);
    }

    #[test]
    fn batch_and_sequential_satisfy_same_error_bound() {
        // Both paths must satisfy f - m/S <= C <= f even if their exact
        // counters differ (the guarantee, not the representation, is shared).
        let capacity = 4usize;
        let stream: Vec<u64> = (0..2000u64).map(|i| (i * 2654435761) % 9).collect();
        let mut seq = MgSummary::new(capacity);
        for &x in &stream {
            seq.update_sequential(x);
        }
        let mut batched = MgSummary::new(capacity);
        for chunk in stream.chunks(173) {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for &x in chunk {
                *counts.entry(x).or_insert(0) += 1;
            }
            let h: Vec<HistogramEntry> = counts
                .into_iter()
                .map(|(item, count)| HistogramEntry { item, count })
                .collect();
            batched.augment(&h);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &x in &stream {
            *truth.entry(x).or_insert(0) += 1;
        }
        let m = stream.len() as u64;
        for (&item, &f) in &truth {
            for s in [&seq, &batched] {
                let c = s.estimate(item);
                assert!(c <= f);
                assert!(c + m / capacity as u64 >= f);
            }
        }
    }

    #[test]
    fn empty_histogram_is_a_noop() {
        let mut s = MgSummary::new(3);
        s.augment(&hist(&[(7, 2)]));
        let before = s.entries();
        let phi = s.augment(&[]);
        assert_eq!(phi, 0);
        let mut after = s.entries();
        let mut before = before;
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn augment_presizes_for_the_combined_set_and_stops_growing() {
        // After the widest batch has been seen, the reservation target and
        // the scratch buffer are fixed and the map stays within its warm
        // allocation — the allocation-free steady state E13 audits with a
        // counting allocator. `HashMap::capacity()` itself is not asserted
        // exactly: it dips nondeterministically as `retain` leaves
        // tombstones behind, which is precisely why the reservation guard
        // is the monotone `reserved` mark.
        let mut s = MgSummary::new(8);
        let batch: Vec<(u64, u64)> = (0..50u64).map(|i| (i, 1 + i % 3)).collect();
        s.augment(&hist(&batch));
        assert_eq!(s.reserved, 2 * (8 + 50), "map not pre-sized for 2(S + p)");
        let scratch_cap = s.scratch.capacity();
        assert!(scratch_cap >= 50, "scratch not sized for the combined set");
        for round in 1..50u64 {
            // Fresh distinct items every round, same batch width.
            let b: Vec<(u64, u64)> = (0..50u64).map(|i| (i * 31 + round * 1000, 2)).collect();
            s.augment(&hist(&b));
            assert_eq!(s.reserved, 2 * (8 + 50), "reservation target moved");
            assert_eq!(s.scratch.capacity(), scratch_cap, "scratch regrew");
            // Loose ceiling: a steady-state resize would double the table
            // well past the reservation target.
            assert!(s.entries.capacity() <= 2 * s.reserved, "map regrew");
        }
        // A wider batch raises the high-water mark exactly once.
        let wide: Vec<(u64, u64)> = (0..100u64).map(|i| (i + 1_000_000, 1)).collect();
        s.augment(&hist(&wide));
        assert_eq!(s.reserved, 2 * (8 + 100));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = MgSummary::new(0);
    }

    #[test]
    fn merge_without_overflow_adds_counters() {
        let mut a = MgSummary::new(10);
        a.augment(&hist(&[(1, 5), (2, 3)]));
        let mut b = MgSummary::new(10);
        b.augment(&hist(&[(1, 2), (3, 4)]));
        a.merge(&b);
        assert_eq!(a.estimate(1), 7);
        assert_eq!(a.estimate(2), 3);
        assert_eq!(a.estimate(3), 4);
    }

    #[test]
    fn merge_preserves_combined_error_bound() {
        // Summarise two halves of a stream independently, merge, and check
        // the merged summary against the (m₁ + m₂)/S bound.
        let capacity = 6usize;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut halves = Vec::new();
        let mut state = 99u64;
        for _ in 0..2 {
            let mut s = MgSummary::new(capacity);
            for batch in 0..20 {
                let mut counts: HashMap<u64, u64> = HashMap::new();
                for _ in 0..150 {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(batch);
                    let item = (state >> 33) % 15;
                    *counts.entry(item).or_insert(0) += 1;
                    *truth.entry(item).or_insert(0) += 1;
                }
                let h: Vec<HistogramEntry> = counts
                    .into_iter()
                    .map(|(item, count)| HistogramEntry { item, count })
                    .collect();
                s.augment(&h);
            }
            halves.push(s);
        }
        let mut merged = halves.swap_remove(0);
        merged.merge(&halves[0]);
        let m: u64 = truth.values().sum();
        assert!(merged.len() <= capacity);
        for (&item, &f) in &truth {
            let c = merged.estimate(item);
            assert!(c <= f, "merged counter {c} above true frequency {f}");
            assert!(
                c + m / capacity as u64 >= f,
                "merged counter {c} under-estimates {f} by more than m/S"
            );
        }
    }
}
