//! φ-heavy-hitter tracking over the frequency estimators.
//!
//! The paper reduces heavy-hitter identification to frequency estimation
//! (Section 5, first paragraph): report every item whose estimate is at
//! least `(φ − ε)·N`. This module packages that reduction for both the
//! infinite-window estimator (Theorem 5.2) and any sliding-window estimator
//! implementing [`SlidingFrequencyEstimator`].

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};

use crate::infinite::ParallelFrequencyEstimator;
use crate::SlidingFrequencyEstimator;

/// Type tag for encoded heavy-hitter trackers (see `psfa_primitives::codec`).
const TAG: u8 = 0x05;
const VERSION: u8 = 1;

/// One reported heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The item identifier.
    pub item: u64,
    /// Its (under-)estimated frequency.
    pub estimate: u64,
}

/// Continuous φ-heavy-hitter tracking over an infinite window.
///
/// Guarantees (for `0 < ε < φ < 1`): every item with frequency `≥ φN` is
/// reported, and no item with frequency `≤ (φ − ε)N` is reported.
#[derive(Debug, Clone, PartialEq)]
pub struct InfiniteHeavyHitters {
    phi: f64,
    estimator: ParallelFrequencyEstimator,
}

impl InfiniteHeavyHitters {
    /// Creates a tracker for threshold `φ` and error `ε < φ`.
    ///
    /// # Panics
    /// Panics unless `0 < ε < φ < 1`.
    pub fn new(phi: f64, epsilon: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        assert!(
            epsilon > 0.0 && epsilon < phi,
            "epsilon must be in (0, phi)"
        );
        Self {
            phi,
            estimator: ParallelFrequencyEstimator::new(epsilon),
        }
    }

    /// Rebuilds a tracker from previously published `(item, estimate)`
    /// pairs and the stream length they covered (see
    /// [`ParallelFrequencyEstimator::from_entries`]) — the supervisor's
    /// reseed path after a worker panic. One-sided entries in, one-sided
    /// tracker out.
    ///
    /// # Panics
    /// Panics unless `0 < ε < φ < 1`, or if there are more non-zero
    /// entries than the summary capacity `⌈1/ε⌉`.
    pub fn from_entries(phi: f64, epsilon: f64, entries: &[(u64, u64)], stream_len: u64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        assert!(
            epsilon > 0.0 && epsilon < phi,
            "epsilon must be in (0, phi)"
        );
        Self {
            phi,
            estimator: ParallelFrequencyEstimator::from_entries(epsilon, entries, stream_len),
        }
    }

    /// The heavy-hitter threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Access to the underlying frequency estimator.
    pub fn estimator(&self) -> &ParallelFrequencyEstimator {
        &self.estimator
    }

    /// Attaches a [`psfa_primitives::WorkMeter`] to the underlying
    /// estimator, which charges it with the dominant operations of every
    /// processed histogram (see
    /// [`ParallelFrequencyEstimator::with_meter`]). Meters are not
    /// persisted: a decoded tracker starts unmetered.
    pub fn with_meter(mut self, meter: psfa_primitives::WorkMeter) -> Self {
        self.estimator = self.estimator.with_meter(meter);
        self
    }

    /// Incorporates one minibatch.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        self.estimator.process_minibatch(minibatch);
    }

    /// Incorporates one minibatch given its precomputed histogram and
    /// returns the applied `MGaugment` cut-off (see
    /// [`ParallelFrequencyEstimator::process_histogram`]).
    pub fn process_histogram(
        &mut self,
        histogram: &[psfa_primitives::HistogramEntry],
        items: u64,
    ) -> u64 {
        self.estimator.process_histogram(histogram, items)
    }

    /// The current heavy hitters, most frequent first.
    pub fn query(&self) -> Vec<HeavyHitter> {
        self.estimator
            .heavy_hitters(self.phi)
            .into_iter()
            .map(|(item, estimate)| HeavyHitter { item, estimate })
            .collect()
    }

    /// Merges another tracker over a disjoint or concatenated stream into
    /// this one; the φ/ε guarantees then hold for the combined stream (see
    /// [`ParallelFrequencyEstimator::merge`]).
    ///
    /// # Panics
    /// Panics if the trackers' error parameters differ.
    pub fn merge(&mut self, other: &InfiniteHeavyHitters) {
        self.estimator.merge(&other.estimator);
    }

    /// Canonical binary encoding, appended to `w` (the per-shard record unit
    /// of `psfa-store`).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_f64(self.phi);
        self.estimator.encode_into(w);
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a tracker previously written by
    /// [`InfiniteHeavyHitters::encode_into`] (never panics on corrupted
    /// input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let phi = r.get_f64()?;
        if !(phi > 0.0 && phi < 1.0) {
            return Err(CodecError::Invalid("heavy hitters: phi not in (0, 1)"));
        }
        let estimator = ParallelFrequencyEstimator::decode_from(r)?;
        if estimator.epsilon() >= phi {
            return Err(CodecError::Invalid(
                "heavy hitters: epsilon must be below phi",
            ));
        }
        Ok(Self { phi, estimator })
    }

    /// Decodes a tracker from a standalone buffer produced by
    /// [`InfiniteHeavyHitters::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

/// Continuous φ-heavy-hitter tracking over a sliding window, generic over the
/// estimator variant (basic, space-efficient, or work-efficient).
#[derive(Debug, Clone)]
pub struct SlidingHeavyHitters<E> {
    phi: f64,
    estimator: E,
}

impl<E: SlidingFrequencyEstimator> SlidingHeavyHitters<E> {
    /// Wraps a sliding-window estimator with threshold `φ > ε`.
    ///
    /// # Panics
    /// Panics unless `estimator.epsilon() < φ < 1`.
    pub fn new(phi: f64, estimator: E) -> Self {
        assert!(
            phi > estimator.epsilon() && phi < 1.0,
            "phi must be in (epsilon, 1)"
        );
        Self { phi, estimator }
    }

    /// The heavy-hitter threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Access to the wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// Incorporates one minibatch.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        self.estimator.process_minibatch(minibatch);
    }

    /// Reports every item whose estimate is at least `(φ − ε)·n`, most
    /// frequent first: all items with window frequency `≥ φn` are included
    /// and no item with window frequency `< (φ − ε)n` appears.
    pub fn query(&self) -> Vec<HeavyHitter> {
        let threshold =
            ((self.phi - self.estimator.epsilon()) * self.estimator.window() as f64).max(0.0);
        let mut out: Vec<HeavyHitter> = self
            .estimator
            .tracked_items()
            .into_iter()
            .filter(|&(_, est)| est as f64 >= threshold)
            .map(|(item, estimate)| HeavyHitter { item, estimate })
            .collect();
        out.sort_unstable_by(|a, b| b.estimate.cmp(&a.estimate).then(a.item.cmp(&b.item)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sliding_work::SlidingFreqWorkEfficient;
    use crate::test_support::SlidingDriver;
    use std::collections::HashMap;

    #[test]
    fn infinite_window_heavy_hitters_are_correct() {
        let mut hh = InfiniteHeavyHitters::new(0.1, 0.02);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut driver = SlidingDriver::new(31);
        for _ in 0..30 {
            let batch = driver.skewed_batch(500, 4, 5000);
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            hh.process_minibatch(&batch);
        }
        let n: u64 = truth.values().sum();
        let reported: Vec<u64> = hh.query().into_iter().map(|h| h.item).collect();
        for (&item, &f) in &truth {
            if f as f64 >= 0.1 * n as f64 {
                assert!(reported.contains(&item), "missed heavy hitter {item}");
            }
            if (f as f64) < (0.1 - 0.02) * n as f64 {
                assert!(!reported.contains(&item), "false positive {item}");
            }
        }
    }

    #[test]
    fn sliding_window_heavy_hitters_are_correct() {
        let n = 4000u64;
        let phi = 0.1;
        let epsilon = 0.02;
        let mut hh = SlidingHeavyHitters::new(phi, SlidingFreqWorkEfficient::new(epsilon, n));
        let mut driver = SlidingDriver::new(32);
        for _ in 0..25 {
            let batch = driver.skewed_batch(400, 4, 5000);
            hh.process_minibatch(&batch);
        }
        let truth = driver.window_counts(n);
        let window_len: u64 = truth.values().sum::<u64>().min(n);
        let reported: Vec<u64> = hh.query().into_iter().map(|h| h.item).collect();
        for (&item, &f) in &truth {
            if f as f64 >= phi * window_len as f64 {
                assert!(
                    reported.contains(&item),
                    "missed sliding heavy hitter {item} (f={f})"
                );
            }
            if (f as f64) < (phi - epsilon) * window_len as f64 - epsilon * n as f64 {
                assert!(!reported.contains(&item), "false positive {item} (f={f})");
            }
        }
    }

    #[test]
    fn results_are_sorted_by_estimate() {
        let mut hh = InfiniteHeavyHitters::new(0.2, 0.05);
        hh.process_minibatch(&[1, 1, 1, 1, 2, 2, 2, 3, 3, 4]);
        let out = hh.query();
        for w in out.windows(2) {
            assert!(w[0].estimate >= w[1].estimate);
        }
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn epsilon_must_be_below_phi() {
        let _ = InfiniteHeavyHitters::new(0.05, 0.1);
    }
}
