//! Boundary-aligned sliding-window frequency estimation across shards.
//!
//! The estimators in [`crate::sliding_work`] & friends answer over the last
//! `n` items *of the substream they observe*. Under a sharded engine that
//! is not the paper's query: shard substreams advance at different rates
//! (wildly so under skew routing), so "the last `n` items of each shard"
//! is not a consistent global window. This module provides the
//! window-aligned alternative the engine uses:
//!
//! * the global stream is divided into **panes** — the items between two
//!   consecutive window boundaries, cut shard-consistently by
//!   `psfa_stream::WindowFence` (every pane covers the same set of
//!   accepted minibatches on every shard);
//! * each shard keeps a [`PaneWindow`]: one `ε`-accurate Misra–Gries
//!   summary (stored as sorted `(item, estimate)` entries) per sealed pane
//!   in a bounded [`psfa_window::PaneRing`], plus a lazy open-pane
//!   accumulator for the current traffic. Sealing at a boundary sums the
//!   last `k` pane summaries per key into a [`SealedWindow`] — the
//!   shard's view of the boundary-aligned window;
//! * a cross-shard query combines every shard's [`SealedWindow`] *at the
//!   same boundary* into a [`GlobalWindow`] by summing per-key estimates.
//!
//! ## The `ε·n_W` accounting
//!
//! Let the aligned window `W` cover panes `t−k+1 … t` and `n_W` items in
//! total, with shard `s` holding `m_{s,j}` items of pane `j` (the panes
//! partition `W`: `Σ_{s,j} m_{s,j} = n_W`). Each sealed pane summary is an
//! `ε`-accurate Misra–Gries summary of its `m_{s,j}` items — the open
//! pane accumulates exact counts and prunes lazily with the `MGaugment`
//! cut-off rule, so every subtract-`ϕ` event (lazy prune or the final cut
//! at sealing) removes at least `ϕ·(S+1)` counted mass and the total
//! deduction stays below `m_{s,j}/(S+1) ≤ ε·m_{s,j}` (Lemma 5.1's
//! accounting). Pane estimates are therefore *one-sided*:
//! `f_j − ε·m_{s,j} ≤ f̂_j ≤ f_j`. Summing one-sided estimates per key —
//! across the window's panes and then across shards (every occurrence
//! lands on exactly one shard's panes) — keeps them one-sided, and the
//! deductions add up to at most `Σ_{s,j} ε·m_{s,j} = ε·n_W`:
//!
//! ```text
//! f − ε·n_W  ≤  f̂  ≤  f        over the aligned window W
//! ```
//!
//! which is the paper's sliding-window guarantee with the *global* window
//! length in the error term — independent of how traffic was routed. This
//! is the same query-time summing that cross-shard point queries use (the
//! mergeable-summaries argument); no re-pruning is needed, so a sealed
//! window holds at most `k·S` entries and sealing is pure sorted-vector
//! merging — no hashing, no selection.
//!
//! The lazy open pane keeps the ingest hot path cheap: a minibatch costs
//! `O(p)` hash updates (`p` = distinct items), with an `O(S + p)` prune
//! only when the accumulator outgrows `4S` entries; a boundary costs one
//! `O(S + p)` cut plus an `O(k·S·log k)` merge of sorted pane entries — paid
//! per `slide` items, not per minibatch.
//!
//! ```
//! use psfa_freq::windowed::{GlobalWindow, PaneWindow};
//!
//! // Two shards, a 2-pane window.
//! let mut a = PaneWindow::new(0.1, 2);
//! let mut b = PaneWindow::new(0.1, 2);
//! // Pane 1: key 7 split unevenly across the shards.
//! a.process_minibatch(&[7; 30]);
//! b.process_minibatch(&[7; 10]);
//! let (a1, b1) = (a.seal(), b.seal());
//! let w = GlobalWindow::merge([&a1, &b1]).expect("aligned");
//! assert_eq!((w.seq(), w.items(), w.estimate(7)), (1, 40, 40));
//! // Two panes later, pane 1 has slid out of the window entirely.
//! a.process_minibatch(&[8; 5]);
//! let (a2, b2) = (a.seal(), b.seal());
//! let (a3, b3) = (a.seal(), b.seal());
//! let w = GlobalWindow::merge([&a3, &b3]).expect("aligned");
//! assert_eq!((w.items(), w.estimate(7), w.estimate(8)), (5, 0, 5));
//! // Windows from different boundaries refuse to merge.
//! assert!(GlobalWindow::merge([&a2, &b3]).is_none());
//! ```

use std::collections::HashMap;

use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_primitives::{phi_cutoff, HistogramEntry};
use psfa_window::{Pane, PaneRing};

use crate::heavy_hitters::HeavyHitter;

/// Type tag for encoded pane windows (see `psfa_primitives::codec`).
const TAG: u8 = 0x09;
const VERSION: u8 = 1;

/// The open pane prunes back to `S` counters once it holds more than
/// `PRUNE_FACTOR · S` — amortising the cut-off selection over several
/// minibatches instead of paying it on every one.
const PRUNE_FACTOR: usize = 4;

/// One sealed pane's summary: at most `S` `(item, estimate)` entries,
/// ascending by item. One-sided for the pane's items.
type PaneEntries = Vec<(u64, u64)>;

/// Sums two `(item, value)` runs sorted ascending by item into one sorted
/// run, adding the values of keys present in both (a linear sorted merge).
///
/// This is the mergeable-summaries primitive in its cheapest form: pane
/// sealing uses it to combine per-pane summaries, and the engine's
/// cross-shard `heavy_hitters` uses it to sum per-shard snapshot entries by
/// key without hashing.
pub fn merge_sum(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One shard's boundary-aligned sliding-window state: a lazy open-pane
/// accumulator receiving the current traffic plus a ring of the last `k`
/// sealed per-pane summaries (see the module docs).
#[derive(Debug, Clone)]
pub struct PaneWindow {
    epsilon: f64,
    /// Summary capacity `S = ⌈1/ε⌉`.
    capacity: usize,
    /// Sealed panes, each an `ε`-summary of its pane's items.
    ring: PaneRing<PaneEntries>,
    /// Items in the open pane (exact, prunes do not change it).
    open_items: u64,
    /// Open-pane counters: exact until a lazy prune, one-sided after
    /// (every deduction follows the `MGaugment` cut-off accounting).
    open_counts: HashMap<u64, u64>,
}

impl PartialEq for PaneWindow {
    fn eq(&self, other: &Self) -> bool {
        self.epsilon.to_bits() == other.epsilon.to_bits()
            && self.ring == other.ring
            && self.open_items == other.open_items
            && self.open_counts == other.open_counts
    }
}

impl PaneWindow {
    /// Creates a window of `panes` panes with per-summary error `ε`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `panes == 0`.
    pub fn new(epsilon: f64, panes: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            capacity,
            ring: PaneRing::new(panes),
            open_items: 0,
            open_counts: HashMap::with_capacity(capacity),
        }
    }

    /// Creates an empty window whose boundary numbering continues after
    /// sequence `seq` (the next seal produces boundary `seq + 1`). A
    /// supervisor restarting a shard worker uses this so the rebuilt
    /// window stays aligned with the engine-wide boundary fence; the
    /// previously sealed panes live on in the shard's published snapshot
    /// history, not in the rebuilt ring.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `panes == 0`.
    pub fn resume_after(epsilon: f64, panes: usize, seq: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            capacity,
            ring: PaneRing::resume_after(panes, seq),
            open_items: 0,
            open_counts: HashMap::with_capacity(capacity),
        }
    }

    /// The per-summary error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The window width in panes (`k`).
    pub fn panes(&self) -> usize {
        self.ring.capacity()
    }

    /// Sequence number of the last boundary sealed into this window
    /// (`0` before the first).
    pub fn sealed_seq(&self) -> u64 {
        self.ring.sealed_seq()
    }

    /// Items in the open (not yet sealed) pane.
    pub fn open_items(&self) -> u64 {
        self.open_items
    }

    /// Items covered by the sealed window (this shard's `m_{s,W}`).
    pub fn window_items(&self) -> u64 {
        self.ring.window_items()
    }

    /// Adds one minibatch to the open pane: `O(µ)` hash updates plus an
    /// amortised lazy prune.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        for &item in minibatch {
            *self.open_counts.entry(item).or_insert(0) += 1;
        }
        self.open_items += minibatch.len() as u64;
        self.maybe_prune_open();
    }

    /// Adds one minibatch to the open pane given its precomputed frequency
    /// histogram (`items` = the minibatch length): the engine shares one
    /// `buildHist` pass between this and the infinite-window tracker, so
    /// the open pane costs `O(p)` hash updates per minibatch.
    pub fn process_histogram(&mut self, histogram: &[HistogramEntry], items: u64) {
        debug_assert_eq!(
            histogram.iter().map(|e| e.count).sum::<u64>(),
            items,
            "histogram does not cover the declared item count"
        );
        for e in histogram {
            *self.open_counts.entry(e.item).or_insert(0) += e.count;
        }
        self.open_items += items;
        self.maybe_prune_open();
    }

    /// Lazy Misra–Gries prune: once the open accumulator outgrows
    /// `PRUNE_FACTOR · S` entries, subtract the `MGaugment` cut-off `ϕ`
    /// (at most `S` counters survive above it). Each such event removes at
    /// least `ϕ·(S+1)` counted mass, so the pane's total deduction — lazy
    /// prunes plus the final cut at sealing — stays below
    /// `m_pane/(S+1) ≤ ε·m_pane`.
    fn maybe_prune_open(&mut self) {
        if self.open_counts.len() <= PRUNE_FACTOR * self.capacity {
            return;
        }
        let values: Vec<u64> = self.open_counts.values().copied().collect();
        let phi = phi_cutoff(&values, self.capacity);
        if phi > 0 {
            self.open_counts.retain(|_, count| {
                *count = count.saturating_sub(phi);
                *count > 0
            });
        }
    }

    /// Seals the open pane at a window boundary: the accumulated counts
    /// are cut to at most `S` counters (the `MGaugment` cut-off, applied
    /// to the exact-or-lazily-pruned histogram), the pane enters the ring
    /// (evicting the pane that slid out of the window), a fresh open pane
    /// starts, and the shard's new [`SealedWindow`] is returned.
    /// `O(p + k·S·log k)` work — off the per-item hot path, paid once per
    /// boundary.
    pub fn seal(&mut self) -> SealedWindow {
        let values: Vec<u64> = self.open_counts.values().copied().collect();
        let phi = phi_cutoff(&values, self.capacity);
        let mut entries: PaneEntries = self
            .open_counts
            .drain()
            .filter_map(|(item, count)| {
                let rem = count.saturating_sub(phi);
                if rem > 0 {
                    Some((item, rem))
                } else {
                    None
                }
            })
            .collect();
        debug_assert!(entries.len() <= self.capacity);
        entries.sort_unstable();
        self.ring.seal(self.open_items, entries);
        self.open_items = 0;
        self.sealed_window()
            .expect("ring is non-empty immediately after sealing")
    }

    /// The shard's view of the boundary-aligned window: the last `≤ k`
    /// sealed pane summaries summed per key (each pane is one-sided for
    /// its own items, so the sum underestimates the covered `m_{s,W}`
    /// items by at most `ε·m_{s,W}` and never overestimates — the
    /// mergeable-summaries accounting, applied across panes). `None`
    /// before the first boundary. Pure sorted-vector merging, as a
    /// balanced merge tree over the pane runs: `O(k·S·log k)`.
    pub fn sealed_window(&self) -> Option<SealedWindow> {
        let mut runs: Vec<PaneEntries> = self.ring.panes().map(|p| p.summary.clone()).collect();
        if runs.is_empty() {
            return None;
        }
        // Merge pairs level by level so every entry is copied O(log k)
        // times, not once per remaining pane.
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut pairs = runs.into_iter();
            while let Some(a) = pairs.next() {
                match pairs.next() {
                    Some(b) => next.push(merge_sum(&a, &b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        Some(SealedWindow {
            seq: self.ring.sealed_seq(),
            items: self.ring.window_items(),
            entries: runs.pop().expect("one merged run remains"),
        })
    }

    /// Canonical binary encoding, appended to `w` (deterministic bytes;
    /// panes are written oldest first, open-pane counters ascending).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, TAG, VERSION);
        w.put_f64(self.epsilon);
        w.put_u32(self.ring.capacity() as u32);
        w.put_u64(self.open_items);
        let mut open: Vec<(u64, u64)> = self.open_counts.iter().map(|(&k, &v)| (k, v)).collect();
        open.sort_unstable();
        w.put_u32(open.len() as u32);
        for (item, count) in open {
            w.put_u64(item);
            w.put_u64(count);
        }
        w.put_u32(self.ring.len() as u32);
        for pane in self.ring.panes() {
            w.put_u64(pane.seq);
            w.put_u64(pane.items);
            w.put_u32(pane.summary.len() as u32);
            for &(item, estimate) in &pane.summary {
                w.put_u64(item);
                w.put_u64(estimate);
            }
        }
    }

    /// Canonical binary encoding as an owned buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Decodes a window previously written by [`PaneWindow::encode_into`],
    /// validating every structural invariant (never panics on corrupted
    /// input).
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(TAG, VERSION)?;
        let epsilon = r.get_f64()?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CodecError::Invalid("pane window: epsilon not in (0, 1)"));
        }
        let capacity = (1.0 / epsilon).ceil() as usize;
        let panes = r.get_u32()? as usize;
        if panes == 0 {
            return Err(CodecError::Invalid("pane window: zero panes"));
        }
        let open_items = r.get_u64()?;
        let open_len = r.get_len(16)?;
        if open_len > PRUNE_FACTOR * capacity + 1 {
            return Err(CodecError::Invalid(
                "pane window: open pane larger than the prune threshold",
            ));
        }
        let mut open_counts = HashMap::with_capacity(open_len);
        let mut open_total = 0u64;
        let mut prev: Option<u64> = None;
        for _ in 0..open_len {
            let item = r.get_u64()?;
            let count = r.get_u64()?;
            if count == 0 {
                return Err(CodecError::Invalid("pane window: zero open counter"));
            }
            if prev.is_some_and(|p| p >= item) {
                return Err(CodecError::Invalid(
                    "pane window: open counters must be strictly ascending",
                ));
            }
            prev = Some(item);
            open_total = open_total
                .checked_add(count)
                .ok_or(CodecError::Invalid("pane window: open counters overflow"))?;
            open_counts.insert(item, count);
        }
        if open_total > open_items {
            return Err(CodecError::Invalid(
                "pane window: open counters exceed the open item count",
            ));
        }
        let len = r.get_len(24)?;
        if len > panes {
            return Err(CodecError::Invalid(
                "pane window: more sealed panes than the capacity",
            ));
        }
        let mut sealed = Vec::with_capacity(len);
        for _ in 0..len {
            let seq = r.get_u64()?;
            let items = r.get_u64()?;
            let entry_count = r.get_len(16)?;
            if entry_count > capacity {
                return Err(CodecError::Invalid(
                    "pane window: pane holds more entries than the summary capacity",
                ));
            }
            let mut summary: PaneEntries = Vec::with_capacity(entry_count);
            let mut prev_item: Option<u64> = None;
            for _ in 0..entry_count {
                let item = r.get_u64()?;
                let estimate = r.get_u64()?;
                if estimate == 0 {
                    return Err(CodecError::Invalid("pane window: zero pane estimate"));
                }
                if prev_item.is_some_and(|p| p >= item) {
                    return Err(CodecError::Invalid(
                        "pane window: pane entries must be strictly ascending",
                    ));
                }
                prev_item = Some(item);
                summary.push((item, estimate));
            }
            sealed.push(Pane {
                seq,
                items,
                summary,
            });
        }
        let ring = PaneRing::restore(panes, sealed).ok_or(CodecError::Invalid(
            "pane window: pane sequence inconsistent",
        ))?;
        Ok(Self {
            epsilon,
            capacity,
            ring,
            open_items,
            open_counts,
        })
    }

    /// Decodes a window from a standalone buffer produced by
    /// [`PaneWindow::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let out = Self::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

/// One shard's merged summary of the boundary-aligned window, frozen at a
/// boundary: the unit cross-shard window queries combine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedWindow {
    /// The boundary this window is aligned to.
    pub seq: u64,
    /// Items the window covers on this shard (`m_{s,W}`).
    pub items: u64,
    /// `(item, estimate)` pairs, ascending by item; estimates are
    /// one-sided: `f − ε·m_{s,W} ≤ f̂ ≤ f` over the shard's window items.
    pub entries: Vec<(u64, u64)>,
}

impl SealedWindow {
    /// This shard's window estimate for `item` (`0` when untracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .map_or(0, |at| self.entries[at].1)
    }
}

/// The globally consistent sliding window at one aligned boundary: every
/// shard's [`SealedWindow`] for the same boundary, merged by summing
/// per-key estimates (see the module docs for the `ε·n_W` bound).
#[derive(Debug, Clone)]
pub struct GlobalWindow {
    seq: u64,
    items: u64,
    entries: HashMap<u64, u64>,
}

impl GlobalWindow {
    /// Merges per-shard sealed windows taken at the same boundary.
    /// Returns `None` if the iterator is empty or the windows are not
    /// aligned to one boundary (their `seq`s differ) — merging misaligned
    /// windows would double- or under-count sliding panes.
    pub fn merge<'a>(shards: impl IntoIterator<Item = &'a SealedWindow>) -> Option<Self> {
        let mut shards = shards.into_iter();
        let first = shards.next()?;
        let mut merged = Self {
            seq: first.seq,
            items: first.items,
            entries: first.entries.iter().copied().collect(),
        };
        for shard in shards {
            if shard.seq != merged.seq {
                return None;
            }
            merged.items += shard.items;
            for &(item, est) in &shard.entries {
                *merged.entries.entry(item).or_insert(0) += est;
            }
        }
        Some(merged)
    }

    /// The boundary this window is aligned to.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total items the window covers across shards (`n_W`).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// One-sided window-frequency estimate for `item`:
    /// `f − ε·n_W ≤ f̂ ≤ f` over the aligned window.
    pub fn estimate(&self, item: u64) -> u64 {
        self.entries.get(&item).copied().unwrap_or(0)
    }

    /// The φ-heavy hitters of the aligned window, most frequent first:
    /// every item with window frequency `≥ φ·n_W` is reported, and no item
    /// with window frequency `< (φ − ε)·n_W` is.
    pub fn heavy_hitters(&self, phi: f64, epsilon: f64) -> Vec<HeavyHitter> {
        let threshold = ((phi - epsilon) * self.items as f64).max(0.0);
        let mut out: Vec<HeavyHitter> = self
            .entries
            .iter()
            .filter(|&(_, &est)| est as f64 >= threshold)
            .map(|(&item, &estimate)| HeavyHitter { item, estimate })
            .collect();
        out.sort_unstable_by(|a, b| b.estimate.cmp(&a.estimate).then(a.item.cmp(&b.item)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Deterministic pseudo-random stream with a skewed head.
    fn stream(seed: u64, len: usize) -> Vec<u64> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = state >> 33;
                if r.is_multiple_of(2) {
                    r % 6
                } else {
                    r % 5_000
                }
            })
            .collect()
    }

    #[test]
    fn aligned_window_keeps_the_one_sided_epsilon_nw_bound() {
        // Two shards, round-robin routed (maximal interleaving), 4 panes of
        // 1000 items each; check the bound at every boundary. With
        // ε = 0.02 ⇒ S = 50, the per-shard panes (~500 items, hundreds of
        // distinct keys) exercise the lazy prune path, not just the final
        // cut.
        let epsilon = 0.02;
        let panes = 4usize;
        let pane_items = 1000usize;
        let mut shards = [
            PaneWindow::new(epsilon, panes),
            PaneWindow::new(epsilon, panes),
        ];
        let mut history: VecDeque<u64> = VecDeque::new();
        let data = stream(99, pane_items * 10);
        for (boundary, pane) in data.chunks(pane_items).enumerate() {
            for (i, &x) in pane.iter().enumerate() {
                shards[i % 2].process_minibatch(&[x]);
                history.push_back(x);
            }
            while history.len() > pane_items * panes {
                history.pop_front();
            }
            let sealed: Vec<SealedWindow> = shards.iter_mut().map(|s| s.seal()).collect();
            let window = GlobalWindow::merge(sealed.iter()).expect("aligned");
            assert_eq!(window.seq(), boundary as u64 + 1);
            assert_eq!(window.items() as usize, history.len());
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for &x in &history {
                *truth.entry(x).or_insert(0) += 1;
            }
            let slack = (epsilon * window.items() as f64).ceil() as u64;
            for (&item, &f) in &truth {
                let est = window.estimate(item);
                assert!(est <= f, "estimate {est} above window truth {f}");
                assert!(
                    est + slack >= f,
                    "estimate {est} under window truth {f} by more than ε·n_W = {slack}"
                );
            }
        }
    }

    #[test]
    fn batch_and_histogram_paths_agree() {
        // The engine feeds precomputed histograms; library users feed raw
        // minibatches. Both must produce identical state.
        let mut by_batch = PaneWindow::new(0.05, 3);
        let mut by_hist = PaneWindow::new(0.05, 3);
        for chunk in stream(5, 3_000).chunks(500) {
            by_batch.process_minibatch(chunk);
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for &x in chunk {
                *counts.entry(x).or_insert(0) += 1;
            }
            let hist: Vec<HistogramEntry> = counts
                .into_iter()
                .map(|(item, count)| HistogramEntry { item, count })
                .collect();
            by_hist.process_histogram(&hist, chunk.len() as u64);
            // Lazy prunes may fire at different points (per-item vs
            // per-histogram insertion order), so compare the sealed
            // outcome, which is what queries see.
        }
        let (a, b) = (by_batch.seal(), by_hist.seal());
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn window_heavy_hitters_respect_the_phi_bands() {
        let epsilon = 0.01;
        let phi = 0.2;
        let mut shard = PaneWindow::new(epsilon, 3);
        // Three panes; the heavy key dominates only the last two.
        shard.process_minibatch(&stream(7, 2_000));
        shard.seal();
        for _ in 0..2 {
            let mut pane: Vec<u64> = stream(8, 1_000);
            pane.extend(std::iter::repeat_n(77_777u64, 1_000));
            shard.process_minibatch(&pane);
            shard.seal();
        }
        let sealed = shard.sealed_window().unwrap();
        let window = GlobalWindow::merge([&sealed]).unwrap();
        assert_eq!(window.items(), 6_000);
        let hh = window.heavy_hitters(phi, epsilon);
        // 2000/6000 = 33% ≥ φ: must be reported, and first.
        assert_eq!(hh.first().map(|h| h.item), Some(77_777));
        for h in &hh {
            assert!(
                window.estimate(h.item) as f64 >= (phi - epsilon) * window.items() as f64,
                "reported item below the (φ−ε)·n_W line"
            );
        }
    }

    #[test]
    fn panes_slide_out_after_k_boundaries() {
        let mut shard = PaneWindow::new(0.1, 2);
        shard.process_minibatch(&[1; 50]);
        let w1 = shard.seal();
        assert_eq!((w1.seq, w1.items, w1.estimate(1)), (1, 50, 50));
        shard.process_minibatch(&[2; 30]);
        let w2 = shard.seal();
        assert_eq!((w2.seq, w2.items), (2, 80));
        // Boundary 3 evicts pane 1: key 1 is gone from the window.
        let w3 = shard.seal();
        assert_eq!(
            (w3.seq, w3.items, w3.estimate(1), w3.estimate(2)),
            (3, 30, 0, 30)
        );
        // An empty pane is legal (quiet slide interval).
        assert_eq!(shard.open_items(), 0);
        assert_eq!(shard.window_items(), 30);
    }

    #[test]
    fn codec_roundtrip_is_exact_and_continues_identically() {
        let mut original = PaneWindow::new(0.05, 3);
        for chunk in stream(21, 4_000).chunks(700) {
            original.process_minibatch(chunk);
            if original.open_items() > 1_000 {
                original.seal();
            }
        }
        let bytes = original.encode();
        let decoded = PaneWindow::decode(&bytes).expect("roundtrip");
        assert_eq!(decoded, original);
        assert_eq!(decoded.encode(), bytes, "deterministic bytes");
        assert_eq!(decoded.sealed_window(), original.sealed_window());
        // Continuation: both process the future identically.
        let mut a = original.clone();
        let mut b = decoded;
        for chunk in stream(22, 2_000).chunks(500) {
            a.process_minibatch(chunk);
            b.process_minibatch(chunk);
            a.seal();
            b.seal();
        }
        assert_eq!(a, b);
        // Truncations are typed errors, never panics.
        for cut in (0..bytes.len()).step_by(11) {
            assert!(PaneWindow::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn misaligned_or_empty_merges_are_refused() {
        assert!(GlobalWindow::merge(std::iter::empty()).is_none());
        let mut a = PaneWindow::new(0.1, 2);
        let mut b = PaneWindow::new(0.1, 2);
        a.process_minibatch(&[1; 10]);
        let a1 = a.seal();
        b.process_minibatch(&[2; 10]);
        let b1 = b.seal();
        let b2 = b.seal();
        assert!(GlobalWindow::merge([&a1, &b1]).is_some());
        assert!(GlobalWindow::merge([&a1, &b2]).is_none(), "seq mismatch");
    }
}
