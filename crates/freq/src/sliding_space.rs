//! Space-efficient sliding-window frequency estimation
//! (Algorithm 2, Theorem 5.8).
//!
//! The basic variant keeps a counter for every observed item. Following
//! Lee–Ting, this variant tracks only a selected few: after every minibatch
//! it computes the cut-off `ϕ` such that at most `S = ⌈8/ε⌉` counters have
//! value `≥ ϕ`, decrements those counters by `ϕ` (mirroring the Misra–Gries
//! decrement through the SBBC `decrement` operation), and deletes the rest.
//! Each per-item counter is an `(∞, λ)`-SBBC with `λ = εn/4`. The total
//! error — additive counter error plus the mass removed by decrements — is
//! at most `εn` (Claim 5.7), and the space is `O(ε⁻¹)` (Claim 5.6).
//!
//! Minibatches at least as large as the window reset the state and are
//! truncated to their last `n` elements, as the paper assumes WLOG.

use std::collections::HashMap;

use psfa_primitives::{phi_cutoff, CompactedSegment};
use psfa_window::Sbbc;
use rayon::prelude::*;

use crate::grouping::group_by_item;
use crate::SlidingFrequencyEstimator;

/// Space-efficient sliding-window frequency estimator (`O(ε⁻¹)` counters).
#[derive(Debug, Clone)]
pub struct SlidingFreqSpaceEfficient {
    epsilon: f64,
    n: u64,
    /// Pruning threshold: at most `S = ⌈8/ε⌉` counters survive a minibatch.
    s: usize,
    /// Additive error of each counter, `λ = εn/4` (even, ≥ 2).
    lambda: u64,
    counters: HashMap<u64, Sbbc>,
}

impl SlidingFreqSpaceEfficient {
    /// Creates an estimator for window size `n` and error `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `εn < 16` (the window must
    /// be large enough for the paper's constants to be meaningful).
    pub fn new(epsilon: f64, n: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(
            epsilon * n as f64 >= 16.0,
            "εn must be at least 16 for the space-efficient variant"
        );
        let s = (8.0 / epsilon).ceil() as usize;
        let lambda = ((((epsilon * n as f64) / 4.0) as u64) & !1).max(2);
        Self {
            epsilon,
            n,
            s,
            lambda,
            counters: HashMap::new(),
        }
    }

    /// The pruning capacity `S = ⌈8/ε⌉`.
    pub fn capacity(&self) -> usize {
        self.s
    }

    /// The per-counter additive slack `λ = εn/4`.
    pub fn lambda(&self) -> u64 {
        self.lambda
    }

    fn new_counter(&self) -> Sbbc {
        Sbbc::unbounded(self.lambda, self.n).assume_zero_history()
    }

    /// Steps 1–2 of Algorithm 2 (shared with the basic variant), followed by
    /// the pruning step 3.
    fn advance_and_prune(&mut self, minibatch: &[u64]) {
        let mu = minibatch.len() as u64;
        let segments = group_by_item(minibatch);
        let template = self.new_counter();
        for &item in segments.keys() {
            self.counters
                .entry(item)
                .or_insert_with(|| template.clone());
        }
        let zero = CompactedSegment::zeros(mu);
        self.counters
            .par_iter_mut()
            .for_each(|(item, counter)| match segments.get(item) {
                Some(css) => counter.advance(css),
                None => counter.advance(&zero),
            });

        // Step 3(a): the cut-off ϕ such that at most S counters have value ≥ ϕ.
        let values: Vec<u64> = self
            .counters
            .values()
            .map(|c| c.value().expect("unbounded counters never overflow"))
            .collect();
        let phi = phi_cutoff(&values, self.s);
        if phi > 0 {
            // Step 3(b): decrement survivors by ϕ, delete everything else.
            self.counters.retain(|_, counter| {
                let value = counter.value().expect("unbounded counters never overflow");
                value >= phi
            });
            self.counters.par_iter_mut().for_each(|(_, counter)| {
                counter.decrement(phi);
            });
        }
        // Counters whose value reached zero (by decrementing or because their
        // window content expired) carry no information; drop them.
        self.counters
            .retain(|_, counter| counter.value().unwrap_or(0) > 0);
    }
}

impl SlidingFrequencyEstimator for SlidingFreqSpaceEfficient {
    fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        if minibatch.len() as u64 >= self.n {
            // WLOG assumption of the paper: a minibatch no smaller than the
            // window resets the state; only its last n elements matter.
            self.counters.clear();
            let tail = &minibatch[minibatch.len() - self.n as usize..];
            self.advance_and_prune(tail);
        } else {
            self.advance_and_prune(minibatch);
        }
    }

    fn estimate(&self, item: u64) -> u64 {
        match self.counters.get(&item) {
            None => 0,
            Some(counter) => counter
                .value()
                .expect("unbounded per-item counters never overflow")
                .saturating_sub(self.lambda),
        }
    }

    fn window(&self) -> u64 {
        self.n
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn num_counters(&self) -> usize {
        self.counters.len()
    }

    fn tracked_items(&self) -> Vec<(u64, u64)> {
        self.counters
            .keys()
            .map(|&item| (item, self.estimate(item)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{check_sliding_bounds, SlidingDriver};

    #[test]
    fn claim_5_7_accuracy_uniform() {
        let mut driver = SlidingDriver::new(10);
        let mut est = SlidingFreqSpaceEfficient::new(0.1, 2000);
        for _ in 0..30 {
            let batch = driver.uniform_batch(250, 60);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn claim_5_7_accuracy_skewed() {
        let mut driver = SlidingDriver::new(11);
        let mut est = SlidingFreqSpaceEfficient::new(0.05, 4000);
        for _ in 0..25 {
            let batch = driver.skewed_batch(400, 6, 3000);
            est.process_minibatch(&batch);
            check_sliding_bounds(&est, driver.window_counts(est.window()));
        }
    }

    #[test]
    fn claim_5_6_space_stays_bounded() {
        // Even with far more distinct items than S, the counter set stays ≤ S
        // after every minibatch.
        let mut driver = SlidingDriver::new(12);
        let mut est = SlidingFreqSpaceEfficient::new(0.1, 5000);
        for _ in 0..20 {
            let batch = driver.uniform_batch(600, 5000);
            est.process_minibatch(&batch);
            assert!(
                est.num_counters() <= est.capacity(),
                "{} counters exceed S = {}",
                est.num_counters(),
                est.capacity()
            );
        }
    }

    #[test]
    fn heavy_items_survive_pruning() {
        let mut driver = SlidingDriver::new(13);
        let mut est = SlidingFreqSpaceEfficient::new(0.05, 4000);
        for _ in 0..20 {
            let batch = driver.skewed_batch(400, 3, 10_000);
            est.process_minibatch(&batch);
        }
        let truth = driver.window_counts(4000);
        // The three heavy items each hold ~2/9+ of the window; with ε = 0.05
        // their estimates must be strictly positive and within bounds.
        for item in 0..3u64 {
            let f = truth.get(&item).copied().unwrap_or(0);
            assert!(f > 400, "test setup: item {item} should be heavy");
            assert!(est.estimate(item) > 0, "heavy item {item} lost by pruning");
        }
    }

    #[test]
    fn giant_minibatch_resets_state() {
        let n = 1000u64;
        let mut est = SlidingFreqSpaceEfficient::new(0.1, n);
        est.process_minibatch(&vec![1u64; 500]);
        // A minibatch spanning more than the whole window: only its tail counts.
        let mut batch = vec![2u64; 1500];
        batch.extend(vec![3u64; 500]);
        est.process_minibatch(&batch);
        // Window now holds 500 of item 2 and 500 of item 3; item 1 must be gone.
        assert_eq!(est.estimate(1), 0);
        assert!(est.estimate(2) + est.estimate(3) > 0);
        assert!(est.estimate(2) <= 500 && est.estimate(3) <= 500);
    }

    #[test]
    #[should_panic(expected = "εn must be at least")]
    fn tiny_window_rejected() {
        let _ = SlidingFreqSpaceEfficient::new(0.01, 100);
    }
}
