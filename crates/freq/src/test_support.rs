//! Shared helpers for the unit tests of the sliding-window estimators.

use std::collections::HashMap;

use crate::SlidingFrequencyEstimator;

/// Deterministic stream driver that remembers the full history so tests can
/// compute exact sliding-window frequencies.
pub(crate) struct SlidingDriver {
    state: u64,
    pub history: Vec<u64>,
}

impl SlidingDriver {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            history: Vec::new(),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 33
    }

    /// A minibatch of `mu` items drawn uniformly from `0..universe`.
    pub fn uniform_batch(&mut self, mu: usize, universe: u64) -> Vec<u64> {
        let batch: Vec<u64> = (0..mu).map(|_| self.next() % universe).collect();
        self.history.extend_from_slice(&batch);
        batch
    }

    /// A skewed minibatch: ~2/3 of the items come from a small heavy set,
    /// the rest from a large light set (disjoint id ranges).
    pub fn skewed_batch(&mut self, mu: usize, heavy: u64, light: u64) -> Vec<u64> {
        let batch: Vec<u64> = (0..mu)
            .map(|_| {
                let selector = self.next();
                let value = self.next();
                if !selector.is_multiple_of(3) {
                    value % heavy
                } else {
                    heavy + value % light
                }
            })
            .collect();
        self.history.extend_from_slice(&batch);
        batch
    }

    /// Exact frequencies of every item within the last `n` stream elements.
    pub fn window_counts(&self, n: u64) -> HashMap<u64, u64> {
        let start = self.history.len().saturating_sub(n as usize);
        let mut counts = HashMap::new();
        for &x in &self.history[start..] {
            *counts.entry(x).or_insert(0u64) += 1;
        }
        counts
    }
}

/// Asserts the sliding-window guarantee `fₑ − εn ≤ f̂ₑ ≤ fₑ` for every item
/// appearing in the window and for every tracked item.
pub(crate) fn check_sliding_bounds<E: SlidingFrequencyEstimator>(
    estimator: &E,
    truth: HashMap<u64, u64>,
) {
    let slack = (estimator.epsilon() * estimator.window() as f64).ceil() as u64;
    for (&item, &f) in &truth {
        let fh = estimator.estimate(item);
        assert!(
            fh <= f,
            "item {item}: estimate {fh} above true window frequency {f}"
        );
        assert!(
            fh + slack >= f,
            "item {item}: estimate {fh} below {f} by more than εn = {slack}"
        );
    }
    for (item, fh) in estimator.tracked_items() {
        let f = truth.get(&item).copied().unwrap_or(0);
        assert!(
            fh <= f,
            "tracked item {item}: estimate {fh} above true frequency {f}"
        );
    }
}
