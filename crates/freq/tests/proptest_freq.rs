//! Property-based tests for the frequency estimators: the Theorem 5.2 /
//! Theorem 5.4 accuracy invariants must hold on arbitrary streams, minibatch
//! boundaries and parameters.

use proptest::prelude::*;
use std::collections::HashMap;

use psfa_freq::{
    ParallelFrequencyEstimator, SlidingFreqSpaceEfficient, SlidingFreqWorkEfficient,
    SlidingFrequencyEstimator,
};

fn window_counts(history: &[u64], n: u64) -> HashMap<u64, u64> {
    let start = history.len().saturating_sub(n as usize);
    let mut counts = HashMap::new();
    for &x in &history[start..] {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 5.2: the infinite-window estimate is within [f − εm, f] for
    /// every item, regardless of how the stream is cut into minibatches.
    #[test]
    fn infinite_window_invariant(
        stream in prop::collection::vec(0u64..64, 1..4000),
        eps_percent in 2u32..40,
        chunk in 1usize..700,
    ) {
        let epsilon = eps_percent as f64 / 100.0;
        let mut est = ParallelFrequencyEstimator::new(epsilon);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut m = 0u64;
        for piece in stream.chunks(chunk) {
            est.process_minibatch(piece);
            for &x in piece {
                *truth.entry(x).or_insert(0) += 1;
            }
            m += piece.len() as u64;
            let slack = (epsilon * m as f64).floor() as u64 + 1;
            for (&item, &f) in &truth {
                let fh = est.estimate(item);
                prop_assert!(fh <= f);
                prop_assert!(fh + slack >= f);
            }
        }
        prop_assert!(est.num_counters() <= est.capacity());
    }

    /// Theorems 5.5/5.8/5.4 share the guarantee f − εn ≤ f̂ ≤ f; check the
    /// space- and work-efficient variants (which also must agree with each
    /// other exactly) on arbitrary streams.
    #[test]
    fn sliding_window_invariant(
        stream in prop::collection::vec(0u64..32, 1..3000),
        window_log in 8u32..11,
        chunk in 1usize..500,
    ) {
        let epsilon = 0.1;
        let n = 1u64 << window_log;
        let mut space = SlidingFreqSpaceEfficient::new(epsilon, n);
        let mut work = SlidingFreqWorkEfficient::new(epsilon, n);
        let mut history: Vec<u64> = Vec::new();
        for piece in stream.chunks(chunk) {
            space.process_minibatch(piece);
            work.process_minibatch(piece);
            history.extend_from_slice(piece);
            let truth = window_counts(&history, n);
            let slack = (epsilon * n as f64).ceil() as u64;
            for (&item, &f) in &truth {
                for est in [space.estimate(item), work.estimate(item)] {
                    prop_assert!(est <= f, "estimate {est} > true {f}");
                    prop_assert!(est + slack >= f, "estimate {est} + {slack} < true {f}");
                }
            }
            prop_assert!(space.num_counters() <= space.capacity());
            prop_assert!(work.num_counters() <= work.capacity());
            let mut a = space.tracked_items();
            let mut b = work.tracked_items();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "Algorithm 2 and the work-efficient variant diverged");
        }
    }
}
