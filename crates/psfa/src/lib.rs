//! # psfa — Parallel Streaming Frequency-Based Aggregates
//!
//! A reproduction of Tangwongsan, Tirthapura and Wu, *Parallel Streaming
//! Frequency-Based Aggregates*, SPAA 2014 (DOI 10.1145/2612669.2612695), as a
//! production-quality Rust library.
//!
//! The paper's algorithms process a high-velocity stream in **minibatches**:
//! each minibatch is ingested with linear work and polylogarithmic depth,
//! updating a single shared summary (no per-processor summaries, no merge
//! step). This umbrella crate re-exports the full public API and adds
//! pipeline adapters so any aggregate can run inside the discretized-stream
//! driver of [`psfa_stream`].
//!
//! ## Quick example
//!
//! ```
//! use psfa::prelude::*;
//!
//! // Track 1%-heavy hitters with 0.2% error over an infinite window.
//! let mut hh = InfiniteHeavyHitters::new(0.01, 0.002);
//! let mut zipf = ZipfGenerator::new(100_000, 1.2, 42);
//! for _ in 0..100 {
//!     let minibatch = zipf.next_minibatch(10_000);
//!     hh.process_minibatch(&minibatch);
//! }
//! let heavy = hh.query();
//! assert!(!heavy.is_empty());
//! // Estimates never exceed the true frequency (one-sided error).
//! assert!(heavy[0].estimate <= hh.estimator().stream_len());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Paper section | Contents |
//! |---|---|---|
//! | [`psfa_primitives`] | §2 | scans, packing, integer sort, selection, `buildHist`, CSS, hash families |
//! | [`psfa_window`] | §3–§4 | γ-snapshots, SBBC, basic counting, windowed sum, pane rings |
//! | [`psfa_freq`] | §5 | parallel Misra–Gries, sliding-window frequency estimation (basic / space- / work-efficient), heavy hitters, mergeable summaries, cross-shard pane windows |
//! | [`psfa_sketch`] | §6 | Count-Min sketch (sequential + parallel minibatch + mergeable), Count-Sketch |
//! | [`psfa_baselines`] | §1, §5.4 | sequential comparators and the independent-data-structure approach |
//! | [`psfa_stream`] | §1 | minibatch model, workload generators, pipeline driver, routing layer (hash + skew-aware hot-key splitting), epoch + window fencing |
//! | [`psfa_engine`] | beyond the paper | sharded multi-threaded ingestion engine with pluggable routing, live cross-shard queries, and globally consistent sliding windows (`Engine`, `EngineHandle`) |
//! | [`psfa_store`] | beyond the paper | epoch-snapshot persistence: checksummed append-only segment log, crash recovery (`Engine::recover`), time-travel queries (`heavy_hitters_at`) |
//! | [`psfa_obs`] | beyond the paper | lock-free observability: mergeable latency histograms, stall accounting, bounded event tracing, Prometheus text export |
//! | [`psfa_serve`] | beyond the paper | network serving front end: length-prefixed binary protocol over `std::net`, capped thread-per-connection server with explicit `Busy` backpressure, blocking client (`Server`, `Client`) |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use psfa_baselines as baselines;
pub use psfa_engine as engine;
pub use psfa_freq as freq;
pub use psfa_obs as obs;
pub use psfa_primitives as primitives;
pub use psfa_serve as serve;
pub use psfa_sketch as sketch;
pub use psfa_store as store;
pub use psfa_stream as stream;
pub use psfa_window as window;

pub mod operators;

/// One-stop import for applications.
pub mod prelude {
    pub use psfa_baselines::{
        DgimCounter, ExactSlidingWindow, IndependentMgSummaries, LossyCounting,
        SequentialMisraGries, SpaceSaving,
    };
    pub use psfa_engine::{
        Answered, Degraded, Engine, EngineConfig, EngineHandle, EngineMetrics, EngineOperator,
        EngineReport, FaultPlan, IngestError, ObsConfig, Producer, ShardHealth, ShardedOperator,
        ShutdownError, StoreMetrics, TryIngestError, WindowMetrics,
    };
    pub use psfa_freq::{
        GlobalWindow, HeavyHitter, InfiniteHeavyHitters, MgSummary, PaneWindow,
        ParallelFrequencyEstimator, SealedWindow, SlidingFreqBasic, SlidingFreqSpaceEfficient,
        SlidingFreqWorkEfficient, SlidingFrequencyEstimator, SlidingHeavyHitters,
    };
    pub use psfa_obs::{
        AtomicLogHistogram, Clock, HistogramSnapshot, ManualClock, MonotonicClock, ObsCounter,
        ObsReport, ObsSection, Percentiles, TraceEvent, TraceKind, TraceRing,
    };
    pub use psfa_primitives::{ArcCell, CompactedSegment, HistScratch, WorkMeter};
    pub use psfa_serve::{
        Client, ClientError, ErrorCode, FrameError, IngestOutcome, Request, Response, RetryPolicy,
        RetryingClient, ServeConfig, ServeMetrics, Server, MAX_FRAME_LEN,
    };
    pub use psfa_sketch::{AtomicCountMin, CountMinSketch, CountSketch, ParallelCountMin};
    pub use psfa_store::{
        EpochRecord, EpochView, PersistenceConfig, ShardState, SnapshotStore, StoreError,
        WindowState,
    };
    pub use psfa_stream::{
        partition_by_key, shard_of, AdversarialChurnGenerator, BinaryStreamGenerator, BufferPool,
        BurstyGenerator, HashRouter, IngestFence, MinibatchOperator, PacketTraceGenerator,
        Pipeline, PipelineReport, Placement, Router, RoutingPolicy, SkewAwareRouter,
        SplitGenerator, StreamGenerator, UniformGenerator, WindowFence, ZipfGenerator,
    };
    pub use psfa_window::{BasicCounter, Pane, PaneRing, QueryResult, Sbbc, WindowedSum};

    pub use crate::operators::{FrequencyOperator, HeavyHitterOperator, SketchOperator};
}
