//! Pipeline adapters: wrap the aggregates as [`MinibatchOperator`]s so they
//! can be driven by [`psfa_stream::Pipeline`] alongside one another.

use psfa_freq::{InfiniteHeavyHitters, SlidingFrequencyEstimator};
use psfa_sketch::ParallelCountMin;
use psfa_stream::MinibatchOperator;

/// A sliding-window frequency estimator as a pipeline operator.
pub struct FrequencyOperator<E> {
    label: String,
    estimator: E,
}

impl<E: SlidingFrequencyEstimator> FrequencyOperator<E> {
    /// Wraps `estimator` under the given display label.
    pub fn new(label: impl Into<String>, estimator: E) -> Self {
        Self {
            label: label.into(),
            estimator,
        }
    }

    /// Access to the wrapped estimator (for queries after a run).
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

impl<E: SlidingFrequencyEstimator> MinibatchOperator for FrequencyOperator<E> {
    fn process(&mut self, minibatch: &[u64]) {
        self.estimator.process_minibatch(minibatch);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Infinite-window heavy-hitter tracking as a pipeline operator.
pub struct HeavyHitterOperator {
    label: String,
    tracker: InfiniteHeavyHitters,
}

impl HeavyHitterOperator {
    /// Wraps a heavy-hitter tracker under the given display label.
    pub fn new(label: impl Into<String>, tracker: InfiniteHeavyHitters) -> Self {
        Self {
            label: label.into(),
            tracker,
        }
    }

    /// Access to the wrapped tracker.
    pub fn tracker(&self) -> &InfiniteHeavyHitters {
        &self.tracker
    }
}

impl MinibatchOperator for HeavyHitterOperator {
    fn process(&mut self, minibatch: &[u64]) {
        self.tracker.process_minibatch(minibatch);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// A parallel Count-Min sketch as a pipeline operator.
pub struct SketchOperator {
    label: String,
    sketch: ParallelCountMin,
}

impl SketchOperator {
    /// Wraps a Count-Min sketch under the given display label.
    pub fn new(label: impl Into<String>, sketch: ParallelCountMin) -> Self {
        Self {
            label: label.into(),
            sketch,
        }
    }

    /// Access to the wrapped sketch.
    pub fn sketch(&self) -> &ParallelCountMin {
        &self.sketch
    }
}

impl MinibatchOperator for SketchOperator {
    fn process(&mut self, minibatch: &[u64]) {
        self.sketch.process_minibatch(minibatch);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psfa_freq::SlidingFreqWorkEfficient;
    use psfa_stream::{Pipeline, StreamGenerator, ZipfGenerator};

    #[test]
    fn operators_run_inside_a_pipeline() {
        let mut pipeline = Pipeline::new();
        pipeline.add_operator(FrequencyOperator::new(
            "sliding-work-efficient",
            SlidingFreqWorkEfficient::new(0.01, 50_000),
        ));
        pipeline.add_operator(HeavyHitterOperator::new(
            "infinite-hh",
            InfiniteHeavyHitters::new(0.05, 0.01),
        ));
        pipeline.add_operator(SketchOperator::new(
            "count-min",
            ParallelCountMin::new(0.01, 0.01, 7),
        ));
        let mut generator = ZipfGenerator::new(10_000, 1.2, 3);
        let report = pipeline.run(&mut generator, 10, 2000);
        assert_eq!(report.operators.len(), 3);
        for op in &report.operators {
            assert_eq!(op.items, 20_000);
        }
    }

    #[test]
    fn wrapped_state_is_queryable_after_use() {
        let mut op = HeavyHitterOperator::new("hh", InfiniteHeavyHitters::new(0.1, 0.01));
        let mut generator = ZipfGenerator::new(1000, 1.5, 5);
        for _ in 0..5 {
            let batch = generator.next_minibatch(1000);
            op.process(&batch);
        }
        assert!(!op.tracker().query().is_empty());
        assert_eq!(op.name(), "hh");
    }
}
