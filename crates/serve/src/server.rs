//! The serving loop: a capped thread-per-connection TCP server.
//!
//! ## Threading model (and the trade-off)
//!
//! Two std-only designs were on the table: a nonblocking-socket poll
//! reactor, or a **capped thread-per-connection pool** — this module
//! implements the latter. Rationale: `std` has no portable readiness API
//! (no epoll/kqueue without a crate, and the registry is unreachable), so
//! a reactor would have to spin on `WouldBlock` across all sockets,
//! burning a core to simulate readiness. Blocking threads get the kernel's
//! scheduler for free, keep the per-connection state machine trivially
//! sequential (read frame → engine call → write frame), and the
//! *connection cap* bounds both thread count and memory exactly where a
//! reactor would need its own accounting. The cost is ~8 KiB of stack per
//! connection and no ability to serve tens of thousands of sockets — the
//! right trade for a handful-of-clients aggregation service; a reactor
//! only wins past the point where threads outnumber cores by hundreds.
//!
//! ## Backpressure contract
//!
//! * **Ingest**: [`Request::IngestBatch`] is admitted with
//!   [`EngineHandle::try_ingest`]. Full shard queues ⇒ [`Response::Busy`]
//!   and *nothing retained* — the server never buffers refused batches, so
//!   its memory is bounded by `max_connections × MAX_FRAME_LEN` in-flight
//!   request bytes (tracked in [`ServeMetrics::peak_inflight_bytes`]).
//! * **Queries** answer from published epoch snapshots
//!   ([`EngineHandle::estimate`] and friends) and never block on ingest.
//! * **Connections** beyond the cap receive one
//!   [`ErrorCode::ConnectionLimit`] error frame and are closed.
//!
//! Graceful [`Server::shutdown`] stops accepting, lets every in-flight
//! request finish and its response flush, then joins all threads; batches
//! already acked sit in the engine's queues and survive an
//! `EngineHandle::drain`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use psfa_engine::{EngineHandle, FaultPlan, TryIngestError};

use crate::protocol::{write_frame, ErrorCode, FrameError, Request, Response, MAX_FRAME_LEN};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port `0` picks an ephemeral port (read it back
    /// with [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Connection cap: concurrent connections beyond this are refused
    /// with an [`ErrorCode::ConnectionLimit`] error frame. Also bounds
    /// server memory (`max_connections × MAX_FRAME_LEN` frame bytes).
    pub max_connections: usize,
    /// How often blocked reads wake up to check for shutdown.
    pub poll_interval: Duration,
    /// Per-request deadline. When a dispatched request takes longer than
    /// this (e.g. an ingest stalled by engine backpressure or an injected
    /// fault), its answer is replaced with an
    /// [`ErrorCode::DeadlineExceeded`] error frame and the connection
    /// stays open. `None` (the default) disables the check.
    pub request_deadline: Option<Duration>,
    /// Fault-injection plan for availability testing: lets a seeded
    /// [`FaultPlan`] drop connections after a fixed number of served
    /// frames ([`FaultPlan::with_connection_drop_after`]). `None` (the
    /// default) compiles the checks out of the hot path.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_connections: 64,
            poll_interval: Duration::from_millis(20),
            request_deadline: None,
            fault: None,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the connection cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "the server needs at least one connection slot");
        self.max_connections = cap;
        self
    }

    /// Sets the per-request deadline (see [`ServeConfig::request_deadline`]).
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = Some(deadline);
        self
    }

    /// Installs a fault-injection plan (see [`ServeConfig::fault`]).
    pub fn fault_injection(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }
}

/// Point-in-time counters of a running [`Server`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Connections accepted into a handler thread.
    pub connections_accepted: u64,
    /// Connections refused at the cap.
    pub connections_refused: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Request frames decoded and dispatched.
    pub requests: u64,
    /// [`Response::Busy`] replies sent (engine backpressure surfaced to
    /// clients).
    pub busy_responses: u64,
    /// Frames that failed to read or decode (each closes its connection).
    pub frame_errors: u64,
    /// Items accepted into the engine via [`Request::IngestBatch`].
    pub ingested_items: u64,
    /// Request+response payload bytes currently held by handler threads.
    pub inflight_bytes: u64,
    /// High-water mark of `inflight_bytes` — the bound the backpressure
    /// contract promises: at most `max_connections × MAX_FRAME_LEN × 2`
    /// (one request and one response frame per connection).
    pub peak_inflight_bytes: u64,
    /// Requests whose dispatch exceeded [`ServeConfig::request_deadline`]
    /// (each replaced the computed answer with an
    /// [`ErrorCode::DeadlineExceeded`] error frame).
    pub deadline_exceeded: u64,
    /// Connections abruptly closed by the fault-injection plan
    /// ([`ServeConfig::fault`]); zero outside availability tests.
    pub injected_drops: u64,
}

/// Counters shared by the accept loop and every handler thread.
#[derive(Default)]
struct ServerShared {
    stop: AtomicBool,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    active_connections: AtomicUsize,
    requests: AtomicU64,
    busy_responses: AtomicU64,
    frame_errors: AtomicU64,
    ingested_items: AtomicU64,
    inflight_bytes: AtomicU64,
    peak_inflight_bytes: AtomicU64,
    deadline_exceeded: AtomicU64,
    injected_drops: AtomicU64,
}

impl ServerShared {
    fn add_inflight(&self, bytes: u64) {
        let now = self.inflight_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_inflight_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_inflight(&self, bytes: u64) {
        self.inflight_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A running ingest+query server; dropping (or [`Server::shutdown`]) stops
/// it gracefully.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and spawns the accept loop serving `handle`.
    /// The engine outlives the server: shutting the server down does not
    /// touch the engine.
    pub fn spawn(handle: EngineHandle, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared::default());
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("psfa-serve-accept".to_string())
            .spawn(move || accept_loop(listener, handle, config, accept_shared))?;
        Ok(Server {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server's counters.
    pub fn metrics(&self) -> ServeMetrics {
        let s = &self.shared;
        ServeMetrics {
            connections_accepted: s.connections_accepted.load(Ordering::Relaxed),
            connections_refused: s.connections_refused.load(Ordering::Relaxed),
            active_connections: s.active_connections.load(Ordering::Relaxed) as u64,
            requests: s.requests.load(Ordering::Relaxed),
            busy_responses: s.busy_responses.load(Ordering::Relaxed),
            frame_errors: s.frame_errors.load(Ordering::Relaxed),
            ingested_items: s.ingested_items.load(Ordering::Relaxed),
            inflight_bytes: s.inflight_bytes.load(Ordering::Relaxed),
            peak_inflight_bytes: s.peak_inflight_bytes.load(Ordering::Relaxed),
            deadline_exceeded: s.deadline_exceeded.load(Ordering::Relaxed),
            injected_drops: s.injected_drops.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, finishes in-flight requests, joins every thread,
    /// and returns the final counters. Idempotent with [`Drop`].
    pub fn shutdown(mut self) -> ServeMetrics {
        self.stop();
        self.metrics()
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // The accept loop sits in a blocking accept(); poke it awake with
        // a throwaway connection (refused instantly once `stop` is seen).
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    handle: EngineHandle,
    config: ServeConfig,
    shared: Arc<ServerShared>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        handlers.retain(|h| !h.is_finished());
        if shared.active_connections.load(Ordering::Acquire) >= config.max_connections {
            shared.connections_refused.fetch_add(1, Ordering::Relaxed);
            refuse(stream, config.max_connections);
            continue;
        }
        shared.active_connections.fetch_add(1, Ordering::AcqRel);
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = shared.clone();
        let conn_handle = handle.clone();
        let conn_config = config.clone();
        next_id += 1;
        let spawned = std::thread::Builder::new()
            .name(format!("psfa-serve-conn-{next_id}"))
            .spawn(move || {
                serve_connection(stream, conn_handle, &conn_config, &conn_shared);
                conn_shared
                    .active_connections
                    .fetch_sub(1, Ordering::AcqRel);
            });
        match spawned {
            Ok(h) => handlers.push(h),
            Err(_) => {
                shared.active_connections.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Turns a connection away at the cap: one error frame, then close.
fn refuse(mut stream: TcpStream, cap: usize) {
    let response = Response::Error {
        code: ErrorCode::ConnectionLimit,
        message: format!("server is at its {cap}-connection cap"),
    };
    let _ = write_frame(&mut stream, &response.encode());
}

/// One connection's request→response loop, until the peer closes, a frame
/// fails, or the server shuts down. Enforces the per-request deadline and
/// honours an injected connection-drop fault.
fn serve_connection(
    mut stream: TcpStream,
    handle: EngineHandle,
    config: &ServeConfig,
    shared: &ServerShared,
) {
    let poll = config.poll_interval;
    let drop_after = config
        .fault
        .as_ref()
        .and_then(|fault| fault.connection_drop_after());
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut buf = Vec::new();
    let mut frames_served = 0u64;
    loop {
        let len = match read_frame_polled(&mut stream, &mut buf, poll, shared) {
            Ok(Some(len)) => len,
            Ok(None) => return,
            Err(_) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        // Injected fault: drop the connection abruptly after K served
        // frames — the request is swallowed without a response, exactly
        // like a mid-flight network partition. Clients must reconnect.
        if let Some(k) = drop_after {
            if frames_served >= k {
                shared.injected_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        shared.add_inflight(len as u64);
        let started = Instant::now();
        let (mut response, close_after) = match Request::decode(&buf[..len]) {
            Ok(request) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                (dispatch(request, &handle, shared), false)
            }
            Err(e) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                (
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                    true,
                )
            }
        };
        // Deadline check happens after dispatch: the work is already done
        // (std's blocking engine calls cannot be cancelled mid-flight), so
        // the deadline bounds what the *client* observes — a late answer
        // is replaced by a typed, retryable error frame.
        if let Some(deadline) = config.request_deadline {
            if started.elapsed() > deadline {
                shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                response = Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: format!("request exceeded the {deadline:?} deadline"),
                };
            }
        }
        frames_served += 1;
        let payload = response.encode();
        shared.add_inflight(payload.len() as u64);
        let written = write_frame(&mut stream, &payload);
        shared.sub_inflight((len + payload.len()) as u64);
        if written.is_err() || close_after {
            return;
        }
    }
}

/// Executes one request against the engine. Queries go straight to the
/// snapshot readers; ingest takes the non-blocking admission path so a
/// full engine surfaces as [`Response::Busy`] instead of a stalled server
/// thread.
fn dispatch(request: Request, handle: &EngineHandle, shared: &ServerShared) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::IngestBatch(items) => match handle.try_ingest(&items) {
            Ok(()) => {
                shared
                    .ingested_items
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                Response::IngestAck {
                    items: items.len() as u64,
                }
            }
            Err(TryIngestError::Busy) => {
                shared.busy_responses.fetch_add(1, Ordering::Relaxed);
                Response::Busy
            }
            Err(TryIngestError::Closed) => Response::Error {
                code: ErrorCode::Shutdown,
                message: "engine is shut down".to_string(),
            },
        },
        Request::Estimate(item) => Response::Count(handle.estimate(item)),
        Request::CmEstimate(item) => Response::Count(handle.cm_estimate(item)),
        Request::HeavyHitters => Response::HeavyHitters(handle.heavy_hitters()),
        Request::SlidingEstimate(item) => Response::Count(handle.sliding_estimate(item)),
        Request::SlidingHeavyHitters => Response::HeavyHitters(handle.sliding_heavy_hitters()),
        Request::Metrics => Response::MetricsText(handle.prometheus_text().unwrap_or_default()),
    }
}

/// [`crate::protocol::read_frame`] over a socket with a read timeout, with
/// partial-frame state kept across timeouts: timeouts between
/// frames poll the stop flag (clean close when stopping); a timeout
/// *inside* a frame keeps the partial bytes and retries, so slow writers
/// are never corrupted by the poll. After a stop is observed mid-frame the
/// peer gets a grace period to finish the frame, then the read fails.
fn read_frame_polled(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    poll: Duration,
    shared: &ServerShared,
) -> Result<Option<usize>, FrameError> {
    use std::io::Read;
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    let mut payload_len: Option<usize> = None;
    let mut stop_deadline: Option<Instant> = None;
    // Grace for a frame caught mid-flight by shutdown: ~25 poll ticks.
    let grace = poll.saturating_mul(25).max(Duration::from_millis(100));
    loop {
        let mid_frame = filled > 0 || payload_len.is_some();
        if shared.stop.load(Ordering::Acquire) {
            if !mid_frame {
                return Ok(None);
            }
            let deadline = *stop_deadline.get_or_insert_with(|| Instant::now() + grace);
            if Instant::now() >= deadline {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "shutdown while a frame was in flight",
                )));
            }
        }
        let target: &mut [u8] = match payload_len {
            None => &mut header[filled..],
            Some(len) => &mut buf[filled..len],
        };
        if target.is_empty() {
            // Zero-length payload frame: nothing more to read.
            return Ok(Some(0));
        }
        match stream.read(target) {
            Ok(0) if !mid_frame => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame",
                )))
            }
            Ok(n) => {
                filled += n;
                if payload_len.is_none() && filled == header.len() {
                    let len = u32::from_le_bytes(header) as usize;
                    if len > MAX_FRAME_LEN {
                        return Err(FrameError::Oversize { len });
                    }
                    buf.resize(len, 0);
                    payload_len = Some(len);
                    filled = 0;
                }
                if let Some(len) = payload_len {
                    if filled == len {
                        return Ok(Some(len));
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}
