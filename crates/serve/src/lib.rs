//! # psfa-serve
//!
//! The network serving front end of the PSFA engine: a std-only TCP
//! server speaking a simple length-prefixed binary protocol, plus the
//! matching blocking client.
//!
//! ```text
//!  protocol clients (Client, one TCP connection each)
//!      │  frame = u32 LE length · tag · version · kind · body
//!      ▼
//!  Server (accept thread + capped thread-per-connection pool)
//!      │  IngestBatch ──► EngineHandle::try_ingest ──► Busy on full queues
//!      │  queries     ──► epoch-snapshot readers (never block on ingest)
//!      ▼
//!  psfa_engine::EngineHandle (cloneable; one clone per connection)
//! ```
//!
//! Three design rules, inherited from the rest of the workspace:
//!
//! 1. **Never panic on peer bytes** — every decode is length-validated
//!    and returns a typed error ([`protocol::FrameError`]); a corrupt
//!    length field cannot drive an allocation ([`protocol::MAX_FRAME_LEN`]
//!    is checked first).
//! 2. **Explicit backpressure** — a full engine answers
//!    [`Response::Busy`]; the server buffers at most one request and one
//!    response frame per connection, so its memory is bounded by the
//!    connection cap (asserted by E15 via
//!    [`ServeMetrics::peak_inflight_bytes`]).
//! 3. **Queries never block on ingest** — they read published epoch
//!    snapshots, exactly like in-process [`psfa_engine::EngineHandle`]
//!    queries.
//!
//! ```no_run
//! use psfa_engine::{Engine, EngineConfig};
//! use psfa_serve::{Client, ServeConfig, Server};
//!
//! let engine = Engine::spawn(EngineConfig::with_shards(2).heavy_hitters(0.05, 0.01));
//! let server = Server::spawn(engine.handle(), ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ingest(&[7, 7, 7, 3]).unwrap();
//! engine.drain().unwrap();
//! assert_eq!(client.estimate(7).unwrap(), 3);
//! server.shutdown();
//! engine.shutdown().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod protocol;

mod client;
mod server;

pub use client::{Client, ClientError, IngestOutcome, RetryPolicy, RetryingClient};
pub use protocol::{ErrorCode, FrameError, Request, Response, MAX_FRAME_LEN};
pub use server::{ServeConfig, ServeMetrics, Server};
