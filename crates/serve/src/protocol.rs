//! The wire protocol: length-prefixed, versioned binary frames.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────────┬───────────────────────────────────────────────┐
//! │ len: u32 LE    │ payload (len bytes)                           │
//! └────────────────┴───────────────────────────────────────────────┘
//!                    payload = tag u8 · version u8 · kind u8 · body
//! ```
//!
//! `len` counts the payload only and must not exceed [`MAX_FRAME_LEN`];
//! the limit is checked *before* any allocation, so a corrupted or hostile
//! length field cannot drive an out-of-memory abort (the same discipline as
//! [`ByteReader::get_len`]). The payload is encoded in the
//! [`psfa_primitives::codec`] style: a type tag ([`REQUEST_TAG`] /
//! [`RESPONSE_TAG`]), a version byte, a kind byte selecting the variant,
//! then the variant's body. Decodes return typed [`CodecError`]s on
//! truncated, trailing, or otherwise corrupt bytes — never a panic.
//!
//! Item batches ride as `u32` count + that many `u64`s, validated against
//! the bytes actually present ([`ByteReader::get_len`]); text rides as
//! `u32`-length-prefixed UTF-8.

use std::fmt;
use std::io::{self, Read, Write};

use psfa_freq::HeavyHitter;
use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};

/// Hard ceiling on a frame's payload size (4 MiB — room for a 512k-item
/// ingest batch). Both sides refuse larger frames before allocating.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Payload type tag of a request frame.
pub const REQUEST_TAG: u8 = 0xA0;
/// Payload type tag of a response frame.
pub const RESPONSE_TAG: u8 = 0xA1;
/// Newest protocol version this build speaks (both directions).
pub const PROTOCOL_VERSION: u8 = 1;

/// Framing/transport failure while reading or writing one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer announced a payload larger than [`MAX_FRAME_LEN`].
    Oversize {
        /// The announced payload length.
        len: usize,
    },
    /// The payload arrived intact but did not decode.
    Codec(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Oversize { len } => write!(
                f,
                "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
            ),
            FrameError::Codec(e) => write!(f, "frame payload did not decode: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

/// One client→server request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check; answered with [`Response::Pong`].
    Ping,
    /// Ingest one minibatch of items. Answered with
    /// [`Response::IngestAck`], or [`Response::Busy`] when the engine's
    /// shard queues are full (explicit backpressure — the server never
    /// buffers refused batches).
    IngestBatch(Vec<u64>),
    /// One-sided point-frequency estimate (`f − ε·m ≤ f̂ ≤ f`).
    Estimate(u64),
    /// Count-Min overestimate (`f ≤ f̂ ≤ f + ε_cm·m`).
    CmEstimate(u64),
    /// φ-heavy hitters of the whole stream.
    HeavyHitters,
    /// Point-frequency estimate over the global sliding window.
    SlidingEstimate(u64),
    /// φ-heavy hitters of the global sliding window.
    SlidingHeavyHitters,
    /// Engine metrics in Prometheus text exposition format.
    Metrics,
}

const REQ_PING: u8 = 0;
const REQ_INGEST: u8 = 1;
const REQ_ESTIMATE: u8 = 2;
const REQ_CM_ESTIMATE: u8 = 3;
const REQ_HEAVY_HITTERS: u8 = 4;
const REQ_SLIDING_ESTIMATE: u8 = 5;
const REQ_SLIDING_HEAVY_HITTERS: u8 = 6;
const REQ_METRICS: u8 = 7;

impl Request {
    /// Encodes the request as one frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w, REQUEST_TAG, PROTOCOL_VERSION);
        match self {
            Request::Ping => w.put_u8(REQ_PING),
            Request::IngestBatch(items) => {
                w.put_u8(REQ_INGEST);
                w.put_u32(items.len() as u32);
                for &item in items {
                    w.put_u64(item);
                }
            }
            Request::Estimate(item) => {
                w.put_u8(REQ_ESTIMATE);
                w.put_u64(*item);
            }
            Request::CmEstimate(item) => {
                w.put_u8(REQ_CM_ESTIMATE);
                w.put_u64(*item);
            }
            Request::HeavyHitters => w.put_u8(REQ_HEAVY_HITTERS),
            Request::SlidingEstimate(item) => {
                w.put_u8(REQ_SLIDING_ESTIMATE);
                w.put_u64(*item);
            }
            Request::SlidingHeavyHitters => w.put_u8(REQ_SLIDING_HEAVY_HITTERS),
            Request::Metrics => w.put_u8(REQ_METRICS),
        }
        w.into_bytes()
    }

    /// Decodes one frame payload. Truncation, a wrong tag, an unknown
    /// kind, or trailing bytes all yield a typed error.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(REQUEST_TAG, PROTOCOL_VERSION)?;
        let request = match r.get_u8()? {
            REQ_PING => Request::Ping,
            REQ_INGEST => {
                let len = r.get_len(8)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(r.get_u64()?);
                }
                Request::IngestBatch(items)
            }
            REQ_ESTIMATE => Request::Estimate(r.get_u64()?),
            REQ_CM_ESTIMATE => Request::CmEstimate(r.get_u64()?),
            REQ_HEAVY_HITTERS => Request::HeavyHitters,
            REQ_SLIDING_ESTIMATE => Request::SlidingEstimate(r.get_u64()?),
            REQ_SLIDING_HEAVY_HITTERS => Request::SlidingHeavyHitters,
            REQ_METRICS => Request::Metrics,
            _ => return Err(CodecError::Invalid("unknown request kind")),
        };
        r.expect_end()?;
        Ok(request)
    }
}

/// Typed failure reported inside a [`Response::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The engine behind the server has shut down.
    Shutdown = 0,
    /// The server is at its connection cap; this connection is closed
    /// after the error frame.
    ConnectionLimit = 1,
    /// The request frame did not decode (the connection is closed after
    /// the error frame — framing state is unrecoverable).
    BadRequest = 2,
    /// The request took longer than the server's configured per-request
    /// deadline ([`crate::ServeConfig::request_deadline`]). The answer was
    /// computed but discarded; the connection stays open and the request
    /// is safe to retry (ingest requests may have been admitted — retrying
    /// one can double-count, which the one-sided bounds tolerate as an
    /// additive `+batch` error, so latency-sensitive clients should size
    /// deadlines well above the ingest path's p99).
    DeadlineExceeded = 3,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(ErrorCode::Shutdown),
            1 => Ok(ErrorCode::ConnectionLimit),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::DeadlineExceeded),
            _ => Err(CodecError::Invalid("unknown error code")),
        }
    }
}

/// One server→client response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The ingest batch was accepted in full.
    IngestAck {
        /// Items accepted (the batch length).
        items: u64,
    },
    /// The engine's shard queues are full; nothing was enqueued. The
    /// client should back off or spread load over more connections.
    Busy,
    /// Answer to the point-estimate requests.
    Count(u64),
    /// Answer to the heavy-hitter requests, most frequent first.
    HeavyHitters(Vec<HeavyHitter>),
    /// Answer to [`Request::Metrics`] (Prometheus text; empty when the
    /// engine runs without observability).
    MetricsText(String),
    /// Typed failure.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

const RESP_PONG: u8 = 0;
const RESP_INGEST_ACK: u8 = 1;
const RESP_BUSY: u8 = 2;
const RESP_COUNT: u8 = 3;
const RESP_HEAVY_HITTERS: u8 = 4;
const RESP_METRICS_TEXT: u8 = 5;
const RESP_ERROR: u8 = 6;

impl Response {
    /// Encodes the response as one frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w, RESPONSE_TAG, PROTOCOL_VERSION);
        match self {
            Response::Pong => w.put_u8(RESP_PONG),
            Response::IngestAck { items } => {
                w.put_u8(RESP_INGEST_ACK);
                w.put_u64(*items);
            }
            Response::Busy => w.put_u8(RESP_BUSY),
            Response::Count(value) => {
                w.put_u8(RESP_COUNT);
                w.put_u64(*value);
            }
            Response::HeavyHitters(entries) => {
                w.put_u8(RESP_HEAVY_HITTERS);
                w.put_u32(entries.len() as u32);
                for hh in entries {
                    w.put_u64(hh.item);
                    w.put_u64(hh.estimate);
                }
            }
            Response::MetricsText(text) => {
                w.put_u8(RESP_METRICS_TEXT);
                w.put_bytes(text.as_bytes());
            }
            Response::Error { code, message } => {
                w.put_u8(RESP_ERROR);
                w.put_u8(*code as u8);
                w.put_bytes(message.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes one frame payload; typed errors on any corruption.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(RESPONSE_TAG, PROTOCOL_VERSION)?;
        let response = match r.get_u8()? {
            RESP_PONG => Response::Pong,
            RESP_INGEST_ACK => Response::IngestAck {
                items: r.get_u64()?,
            },
            RESP_BUSY => Response::Busy,
            RESP_COUNT => Response::Count(r.get_u64()?),
            RESP_HEAVY_HITTERS => {
                let len = r.get_len(16)?;
                let mut entries = Vec::with_capacity(len);
                for _ in 0..len {
                    let item = r.get_u64()?;
                    let estimate = r.get_u64()?;
                    entries.push(HeavyHitter { item, estimate });
                }
                Response::HeavyHitters(entries)
            }
            RESP_METRICS_TEXT => Response::MetricsText(utf8(&mut r)?),
            RESP_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.get_u8()?)?,
                message: utf8(&mut r)?,
            },
            _ => return Err(CodecError::Invalid("unknown response kind")),
        };
        r.expect_end()?;
        Ok(response)
    }
}

fn utf8(r: &mut ByteReader<'_>) -> Result<String, CodecError> {
    std::str::from_utf8(r.get_bytes()?)
        .map(str::to_owned)
        .map_err(|_| CodecError::Invalid("text field is not UTF-8"))
}

/// Writes one frame (length prefix + payload).
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`] — a frame that large can
/// only be produced by a caller-side bug, never by decoding peer bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "outgoing frame exceeds MAX_FRAME_LEN"
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame into `buf` (reused across calls; it is resized to the
/// payload length, which is also returned). `Ok(None)` means the peer
/// closed the connection cleanly *before* a new frame started; EOF inside
/// a frame is an [`io::ErrorKind::UnexpectedEof`] error. The length field
/// is validated against [`MAX_FRAME_LEN`] before `buf` grows.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<Option<usize>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversize { len });
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::IngestBatch(vec![]),
            Request::IngestBatch(vec![1, 2, 3, u64::MAX]),
            Request::Estimate(42),
            Request::CmEstimate(7),
            Request::HeavyHitters,
            Request::SlidingEstimate(0),
            Request::SlidingHeavyHitters,
            Request::Metrics,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::IngestAck { items: 1000 },
            Response::Busy,
            Response::Count(u64::MAX),
            Response::HeavyHitters(vec![]),
            Response::HeavyHitters(vec![
                HeavyHitter {
                    item: 3,
                    estimate: 999,
                },
                HeavyHitter {
                    item: 9,
                    estimate: 1,
                },
            ]),
            Response::MetricsText("psfa_up 1\n".to_string()),
            Response::Error {
                code: ErrorCode::ConnectionLimit,
                message: "at capacity".to_string(),
            },
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: "request exceeded the 5ms deadline".to_string(),
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for req in all_requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        for resp in all_responses() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn corrupt_ingest_length_cannot_over_allocate() {
        // Claim 2^32-ish items with an 11-byte body: get_len must reject
        // before Vec::with_capacity sees the bogus count.
        let mut w = ByteWriter::new();
        put_header(&mut w, REQUEST_TAG, PROTOCOL_VERSION);
        w.put_u8(REQ_INGEST);
        w.put_u32(u32::MAX);
        w.put_u64(7);
        assert!(matches!(
            Request::decode(&w.into_bytes()),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn frames_round_trip_over_a_byte_pipe() {
        let mut wire = Vec::new();
        let payload = Request::IngestBatch(vec![5; 100]).encode();
        write_frame(&mut wire, &payload).unwrap();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        let mut cursor = io::Cursor::new(wire);
        let mut buf = Vec::new();
        let n = read_frame(&mut cursor, &mut buf).unwrap().unwrap();
        assert_eq!(
            Request::decode(&buf[..n]).unwrap(),
            Request::IngestBatch(vec![5; 100])
        );
        let n = read_frame(&mut cursor, &mut buf).unwrap().unwrap();
        assert_eq!(Request::decode(&buf[..n]).unwrap(), Request::Ping);
        assert!(read_frame(&mut cursor, &mut buf).unwrap().is_none());
    }

    #[test]
    fn oversize_frame_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut cursor, &mut buf),
            Err(FrameError::Oversize { .. })
        ));
        assert!(buf.capacity() < 1024, "oversize length must not allocate");
    }

    #[test]
    fn eof_inside_a_frame_is_an_error_not_a_clean_close() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Estimate(1).encode()).unwrap();
        wire.truncate(wire.len() - 3);
        let mut cursor = io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).is_err());
    }
}
