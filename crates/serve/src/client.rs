//! A blocking protocol client: one TCP connection, one request in flight.
//!
//! The client is deliberately synchronous — the open-loop load generator
//! in `psfa-bench` gets its concurrency from *connections*, not from
//! multiplexing, matching the server's thread-per-connection model.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use psfa_freq::HeavyHitter;

use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// Client-side failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failed; the connection is no longer usable.
    Frame(FrameError),
    /// The server answered with a typed [`Response::Error`].
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with a response kind the request cannot
    /// produce (a protocol bug, not a transport fault).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// Outcome of one ingest request: the explicit backpressure surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch was accepted; `items` were enqueued.
    Accepted(u64),
    /// The engine's queues were full; nothing was enqueued. Retry later
    /// or spread load across more connections.
    Busy,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects (with Nagle disabled — requests are small and
    /// latency-sensitive).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Like [`Client::connect`] with a connect timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads its response. Generic entry point —
    /// the typed wrappers below are usually more convenient.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode()).map_err(FrameError::Io)?;
        let len = read_frame(&mut self.stream, &mut self.buf)?.ok_or_else(|| {
            ClientError::Frame(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )))
        })?;
        Ok(Response::decode(&self.buf[..len]).map_err(FrameError::Codec)?)
    }

    /// Calls and unwraps a typed server error into [`ClientError::Server`].
    fn call_ok(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("expected Pong")),
        }
    }

    /// Ingests one minibatch; [`IngestOutcome::Busy`] is the engine's
    /// backpressure, not an error.
    pub fn ingest(&mut self, items: &[u64]) -> Result<IngestOutcome, ClientError> {
        match self.call_ok(&Request::IngestBatch(items.to_vec()))? {
            Response::IngestAck { items } => Ok(IngestOutcome::Accepted(items)),
            Response::Busy => Ok(IngestOutcome::Busy),
            _ => Err(ClientError::Unexpected("expected IngestAck or Busy")),
        }
    }

    /// One-sided point-frequency estimate (`f − ε·m ≤ f̂ ≤ f`).
    pub fn estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::Estimate(item))
    }

    /// Count-Min overestimate (`f ≤ f̂ ≤ f + ε_cm·m`).
    pub fn cm_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::CmEstimate(item))
    }

    /// Point-frequency estimate over the global sliding window.
    pub fn sliding_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::SlidingEstimate(item))
    }

    fn count(&mut self, request: &Request) -> Result<u64, ClientError> {
        match self.call_ok(request)? {
            Response::Count(value) => Ok(value),
            _ => Err(ClientError::Unexpected("expected Count")),
        }
    }

    /// φ-heavy hitters of the whole stream, most frequent first.
    pub fn heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.hitters(&Request::HeavyHitters)
    }

    /// φ-heavy hitters of the global sliding window.
    pub fn sliding_heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.hitters(&Request::SlidingHeavyHitters)
    }

    fn hitters(&mut self, request: &Request) -> Result<Vec<HeavyHitter>, ClientError> {
        match self.call_ok(request)? {
            Response::HeavyHitters(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("expected HeavyHitters")),
        }
    }

    /// Engine metrics in Prometheus text format (empty without
    /// observability configured on the engine).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call_ok(&Request::Metrics)? {
            Response::MetricsText(text) => Ok(text),
            _ => Err(ClientError::Unexpected("expected MetricsText")),
        }
    }
}
