//! A blocking protocol client: one TCP connection, one request in flight.
//!
//! The client is deliberately synchronous — the open-loop load generator
//! in `psfa-bench` gets its concurrency from *connections*, not from
//! multiplexing, matching the server's thread-per-connection model.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use psfa_freq::HeavyHitter;

use crate::protocol::{read_frame, write_frame, ErrorCode, FrameError, Request, Response};

/// Client-side failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failed; the connection is no longer usable.
    Frame(FrameError),
    /// The server answered with a typed [`Response::Error`].
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with a response kind the request cannot
    /// produce (a protocol bug, not a transport fault).
    Unexpected(&'static str),
    /// A [`RetryingClient`] exhausted its retry budget with every attempt
    /// refused as [`Response::Busy`] — sustained engine backpressure, not
    /// a fault.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
            ClientError::RetriesExhausted { attempts } => {
                write!(f, "all {attempts} attempts were refused as Busy")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// Outcome of one ingest request: the explicit backpressure surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The batch was accepted; `items` were enqueued.
    Accepted(u64),
    /// The engine's queues were full; nothing was enqueued. Retry later
    /// or spread load across more connections.
    Busy,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects (with Nagle disabled — requests are small and
    /// latency-sensitive).
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Like [`Client::connect`] with a connect timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and reads its response. Generic entry point —
    /// the typed wrappers below are usually more convenient.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode()).map_err(FrameError::Io)?;
        let len = read_frame(&mut self.stream, &mut self.buf)?.ok_or_else(|| {
            ClientError::Frame(FrameError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )))
        })?;
        Ok(Response::decode(&self.buf[..len]).map_err(FrameError::Codec)?)
    }

    /// Calls and unwraps a typed server error into [`ClientError::Server`].
    fn call_ok(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_ok(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("expected Pong")),
        }
    }

    /// Ingests one minibatch; [`IngestOutcome::Busy`] is the engine's
    /// backpressure, not an error.
    pub fn ingest(&mut self, items: &[u64]) -> Result<IngestOutcome, ClientError> {
        match self.call_ok(&Request::IngestBatch(items.to_vec()))? {
            Response::IngestAck { items } => Ok(IngestOutcome::Accepted(items)),
            Response::Busy => Ok(IngestOutcome::Busy),
            _ => Err(ClientError::Unexpected("expected IngestAck or Busy")),
        }
    }

    /// One-sided point-frequency estimate (`f − ε·m ≤ f̂ ≤ f`).
    pub fn estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::Estimate(item))
    }

    /// Count-Min overestimate (`f ≤ f̂ ≤ f + ε_cm·m`).
    pub fn cm_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::CmEstimate(item))
    }

    /// Point-frequency estimate over the global sliding window.
    pub fn sliding_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.count(&Request::SlidingEstimate(item))
    }

    fn count(&mut self, request: &Request) -> Result<u64, ClientError> {
        match self.call_ok(request)? {
            Response::Count(value) => Ok(value),
            _ => Err(ClientError::Unexpected("expected Count")),
        }
    }

    /// φ-heavy hitters of the whole stream, most frequent first.
    pub fn heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.hitters(&Request::HeavyHitters)
    }

    /// φ-heavy hitters of the global sliding window.
    pub fn sliding_heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.hitters(&Request::SlidingHeavyHitters)
    }

    fn hitters(&mut self, request: &Request) -> Result<Vec<HeavyHitter>, ClientError> {
        match self.call_ok(request)? {
            Response::HeavyHitters(entries) => Ok(entries),
            _ => Err(ClientError::Unexpected("expected HeavyHitters")),
        }
    }

    /// Engine metrics in Prometheus text format (empty without
    /// observability configured on the engine).
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call_ok(&Request::Metrics)? {
            Response::MetricsText(text) => Ok(text),
            _ => Err(ClientError::Unexpected("expected MetricsText")),
        }
    }
}

/// Retry policy for [`RetryingClient`]: capped exponential backoff with
/// deterministic (seeded) equal-jitter.
///
/// Attempt `k` sleeps `d/2 + U(0, d/2)` where `d = min(base·2ᵏ, max)` and
/// `U` is drawn from a seeded xorshift64* generator — deterministic for a
/// given seed (reproducible benchmarks) while still decorrelating clients
/// that use different seeds.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries before giving up (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the exponential backoff.
    pub max_delay: Duration,
    /// Jitter seed; zero is re-mapped internally (xorshift has no zero
    /// state).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(250),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// Sets the retry cap.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the base (first-retry) delay.
    pub fn base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Sets the backoff ceiling.
    pub fn max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// Sets the jitter seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The jittered sleep before retry `attempt` (0-based).
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let half = exp / 2;
        // xorshift64* step (Vigna); the multiplier scrambles the low bits.
        let mut x = *rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *rng = x;
        let draw = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let jitter_nanos = match half.as_nanos() as u64 {
            0 => 0,
            span => draw % (span + 1),
        };
        half + Duration::from_nanos(jitter_nanos)
    }
}

/// Whether one attempt's failure is worth another connection/attempt.
fn retryable(error: &ClientError) -> bool {
    match error {
        // Transport failures (connection drop, reset, EOF mid-frame)
        // are exactly what reconnect-and-retry is for.
        ClientError::Frame(_) => true,
        // A deadline miss means the server computed but discarded the
        // answer; the request is designed to be retried.
        ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => true,
        // Shutdown / connection-limit / bad-request / protocol bugs do
        // not get better by retrying.
        _ => false,
    }
}

/// A [`Client`] wrapper that retries transient failures: engine
/// backpressure ([`Response::Busy`]), broken streams (reconnect), and
/// server deadline misses — each under the capped, jittered backoff of a
/// [`RetryPolicy`].
///
/// Replaces hand-rolled `loop { match ingest { Busy => sleep } }` blocks:
///
/// ```no_run
/// use psfa_serve::{RetryPolicy, RetryingClient};
/// # let addr = "127.0.0.1:0".parse().unwrap();
/// let mut client = RetryingClient::connect(addr, RetryPolicy::default()).unwrap();
/// client.ingest(&[7, 7, 3]).unwrap(); // retries Busy + reconnects on drops
/// let heavy = client.heavy_hitters().unwrap();
/// ```
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: u64,
    client: Option<Client>,
    reconnects: u64,
    busy_retries: u64,
}

impl RetryingClient {
    /// Connects eagerly; later broken streams reconnect lazily under the
    /// policy's backoff.
    pub fn connect(addr: SocketAddr, policy: RetryPolicy) -> io::Result<RetryingClient> {
        let client = Client::connect(addr)?;
        Ok(RetryingClient {
            addr,
            policy,
            // Zero would lock xorshift at zero forever; any nonzero
            // constant restores a full-period stream.
            rng: if policy.seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                policy.seed
            },
            client: Some(client),
            reconnects: 0,
            busy_retries: 0,
        })
    }

    /// Reconnections performed so far (broken-stream recoveries).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Attempts that backed off on [`Response::Busy`].
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Runs one attempt, reconnecting first if the previous attempt broke
    /// the stream.
    fn attempt<T>(
        &mut self,
        op: &mut impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let client = match self.client.as_mut() {
            Some(client) => client,
            None => {
                let fresh = Client::connect(self.addr)?;
                self.reconnects += 1;
                self.client.insert(fresh)
            }
        };
        let result = op(client);
        if matches!(result, Err(ClientError::Frame(_))) {
            // The stream is poisoned (partial frame state unknown);
            // force a reconnect on the next attempt.
            self.client = None;
        }
        result
    }

    /// Runs `op` under the retry policy. `op` returns `Ok(None)` to signal
    /// a Busy response (retryable without being an error).
    fn retrying<T>(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<Option<T>, ClientError>,
    ) -> Result<T, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..=self.policy.max_retries {
            match self.attempt(&mut op) {
                Ok(Some(value)) => return Ok(value),
                Ok(None) => {
                    self.busy_retries += 1;
                    last = None;
                }
                Err(e) if retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
            if attempt < self.policy.max_retries {
                std::thread::sleep(self.policy.backoff(attempt, &mut self.rng));
            }
        }
        Err(last.unwrap_or(ClientError::RetriesExhausted {
            attempts: self.policy.max_retries + 1,
        }))
    }

    /// Ingests one minibatch, retrying [`Response::Busy`] backpressure and
    /// broken streams. Returns the accepted item count.
    pub fn ingest(&mut self, items: &[u64]) -> Result<u64, ClientError> {
        self.retrying(|client| {
            Ok(match client.ingest(items)? {
                IngestOutcome::Accepted(n) => Some(n),
                IngestOutcome::Busy => None,
            })
        })
    }

    /// Liveness probe with retries.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.retrying(|client| client.ping().map(Some))
    }

    /// One-sided point-frequency estimate with retries.
    pub fn estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.retrying(|client| client.estimate(item).map(Some))
    }

    /// Count-Min overestimate with retries.
    pub fn cm_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.retrying(|client| client.cm_estimate(item).map(Some))
    }

    /// Sliding-window point estimate with retries.
    pub fn sliding_estimate(&mut self, item: u64) -> Result<u64, ClientError> {
        self.retrying(|client| client.sliding_estimate(item).map(Some))
    }

    /// φ-heavy hitters of the whole stream with retries.
    pub fn heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.retrying(|client| client.heavy_hitters().map(Some))
    }

    /// φ-heavy hitters of the global sliding window with retries.
    pub fn sliding_heavy_hitters(&mut self) -> Result<Vec<HeavyHitter>, ClientError> {
        self.retrying(|client| client.sliding_heavy_hitters().map(Some))
    }

    /// Prometheus metrics text with retries.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        self.retrying(|client| client.metrics_text().map(Some))
    }
}
