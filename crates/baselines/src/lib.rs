//! # psfa-baselines
//!
//! Sequential and merge-based comparators referenced by the paper. The
//! parallel algorithms of `psfa-freq`, `psfa-window` and `psfa-sketch` claim
//! to perform *no more work than their best sequential counterparts* and to
//! avoid the costs of the independent-data-structure approach; this crate
//! provides those counterparts so the claims can be measured (experiments
//! E2, E4, E5, E7).
//!
//! * [`misra_gries`] — the classic per-element Misra–Gries algorithm
//!   \[MG82, DLOM02, KSP03\] (Algorithm 1 in the paper).
//! * [`space_saving`] — Space-Saving \[MAE06\].
//! * [`lossy_counting`] — Lossy Counting \[MM02\].
//! * [`dgim`] — the exponential-histogram basic-counting baseline of Datar,
//!   Gionis, Indyk and Motwani \[DGIM02\].
//! * [`exact_window`] — an exact (memory-hungry) sliding-window frequency
//!   tracker, the naive comparator and test oracle.
//! * [`mergeable`] — the independent-data-structure approach of Section 5.4
//!   (\[ACH+13\]): one Misra–Gries summary per worker, merged at query time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dgim;
pub mod exact_window;
pub mod lossy_counting;
pub mod mergeable;
pub mod misra_gries;
pub mod space_saving;

pub use dgim::DgimCounter;
pub use exact_window::ExactSlidingWindow;
pub use lossy_counting::LossyCounting;
pub use mergeable::IndependentMgSummaries;
pub use misra_gries::SequentialMisraGries;
pub use space_saving::SpaceSaving;
