//! The DGIM exponential histogram for basic counting over a sliding window
//! (Datar, Gionis, Indyk, Motwani \[DGIM02\]).
//!
//! This is the classical sequential baseline for the problem solved in
//! parallel by [`psfa-window`'s `BasicCounter`](https://docs.rs/psfa-window):
//! it maintains buckets of exponentially growing sizes, keeping at most `r`
//! buckets of each size, and answers queries with relative error at most
//! `1/(2(r − 1))`.

use std::collections::VecDeque;

/// One DGIM bucket: the timestamp of its most recent 1 and its size (a power
/// of two).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    timestamp: u64,
    size: u64,
}

/// DGIM exponential-histogram counter over a sliding window of size `n`.
#[derive(Debug, Clone)]
pub struct DgimCounter {
    epsilon: f64,
    n: u64,
    /// Maximum number of buckets allowed per size.
    max_per_size: usize,
    /// Buckets, most recent first.
    buckets: VecDeque<Bucket>,
    time: u64,
}

impl DgimCounter {
    /// Creates a DGIM counter for window size `n` with relative error at most
    /// `ε`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `n == 0`.
    pub fn new(epsilon: f64, n: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(n >= 1, "window size must be at least 1");
        // error ≤ 1/(2(r − 1)) ≤ ε  ⇒  r ≥ 1/(2ε) + 1.
        let max_per_size = (1.0 / (2.0 * epsilon)).ceil() as usize + 1;
        Self {
            epsilon,
            n,
            max_per_size,
            buckets: VecDeque::new(),
            time: 0,
        }
    }

    /// The relative-error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The window size n.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Number of buckets currently stored (`O(ε⁻¹ log n)`).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total stream length consumed.
    pub fn stream_len(&self) -> u64 {
        self.time
    }

    /// Processes one bit.
    pub fn update(&mut self, bit: bool) {
        self.time += 1;
        // Expire the oldest bucket if it fell out of the window.
        if let Some(back) = self.buckets.back() {
            if back.timestamp + self.n <= self.time {
                self.buckets.pop_back();
            }
        }
        if !bit {
            return;
        }
        self.buckets.push_front(Bucket {
            timestamp: self.time,
            size: 1,
        });
        // Merge oldest pairs whenever a size class overflows.
        let mut size = 1u64;
        loop {
            let count = self.buckets.iter().filter(|b| b.size == size).count();
            if count <= self.max_per_size {
                break;
            }
            // Merge the two oldest buckets of this size.
            let mut indices: Vec<usize> = self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.size == size)
                .map(|(i, _)| i)
                .collect();
            let last = indices.pop().expect("count > max_per_size >= 1");
            let second_last = indices.pop().expect("count >= 2");
            let newer = self.buckets[second_last];
            self.buckets[last] = Bucket {
                timestamp: newer.timestamp,
                size: size * 2,
            };
            self.buckets.remove(second_last);
            size *= 2;
        }
    }

    /// Processes a slice of bits sequentially.
    pub fn update_all(&mut self, bits: &[bool]) {
        for &b in bits {
            self.update(b);
        }
    }

    /// Estimate of the number of 1s in the window: all bucket sizes except
    /// the oldest, plus half of the oldest bucket.
    pub fn estimate(&self) -> u64 {
        match self.buckets.back() {
            None => 0,
            Some(oldest) => {
                let total: u64 = self.buckets.iter().map(|b| b.size).sum();
                total - oldest.size + oldest.size / 2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_count(bits: &[bool], n: u64) -> u64 {
        let start = bits.len().saturating_sub(n as usize);
        bits[start..].iter().filter(|&&b| b).count() as u64
    }

    #[test]
    fn relative_error_holds_on_random_streams() {
        let epsilon = 0.1;
        let n = 2000u64;
        let mut dgim = DgimCounter::new(epsilon, n);
        let mut bits = Vec::new();
        let mut state = 3u64;
        for i in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = !(state >> 33).is_multiple_of(3);
            dgim.update(bit);
            bits.push(bit);
            if i % 500 == 0 && i > 0 {
                let truth = window_count(&bits, n);
                let est = dgim.estimate();
                let err = (est as f64 - truth as f64).abs();
                assert!(
                    err <= epsilon * truth as f64 + 1.0,
                    "relative error too large: est={est} truth={truth}"
                );
            }
        }
    }

    #[test]
    fn zero_stream() {
        let mut dgim = DgimCounter::new(0.1, 100);
        dgim.update_all(&vec![false; 1000]);
        assert_eq!(dgim.estimate(), 0);
    }

    #[test]
    fn all_ones_stream() {
        let n = 512u64;
        let mut dgim = DgimCounter::new(0.1, n);
        dgim.update_all(&vec![true; 2000]);
        let est = dgim.estimate();
        let err = (est as f64 - n as f64).abs();
        assert!(err <= 0.1 * n as f64 + 1.0, "est={est}");
    }

    #[test]
    fn bucket_count_is_logarithmic() {
        let n = 1 << 16;
        let mut dgim = DgimCounter::new(0.1, n);
        dgim.update_all(&vec![true; 100_000]);
        // O(ε⁻¹ log n) buckets: with r = 6 and 17 size classes, ≲ 120.
        assert!(
            dgim.num_buckets() <= 150,
            "buckets = {}",
            dgim.num_buckets()
        );
    }
}
