//! Space-Saving (Metwally, Agrawal, El Abbadi \[MAE06\]).
//!
//! A counter-based frequent-elements summary that, unlike Misra–Gries,
//! *overestimates*: when an unmonitored item arrives and the summary is
//! full, the minimum counter is reassigned to the new item and incremented.
//! Guarantees `fₑ ≤ Ĉₑ ≤ fₑ + m/S`.

use std::collections::HashMap;

/// Space-Saving summary with `S = ⌈1/ε⌉` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    epsilon: f64,
    capacity: usize,
    /// item → (count, overestimation error at takeover time)
    counters: HashMap<u64, (u64, u64)>,
    stream_len: u64,
}

impl SpaceSaving {
    /// Creates a summary with error parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            stream_len: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The number of counters `S`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of elements processed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Processes a single element.
    pub fn update(&mut self, item: u64) {
        self.stream_len += 1;
        if let Some(entry) = self.counters.get_mut(&item) {
            entry.0 += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (1, 0));
            return;
        }
        // Evict the minimum counter and hand its count to the new item.
        let (&victim, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|(_, &(count, _))| count)
            .expect("summary is non-empty when full");
        self.counters.remove(&victim);
        self.counters.insert(item, (min_count + 1, min_count));
    }

    /// Processes a whole slice element by element.
    pub fn update_all(&mut self, items: &[u64]) {
        for &x in items {
            self.update(x);
        }
    }

    /// Estimate `Ĉₑ ∈ [fₑ, fₑ + εm]` for tracked items, `0` otherwise.
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Guaranteed lower bound on the true frequency of a tracked item.
    pub fn guaranteed_count(&self, item: u64) -> u64 {
        self.counters
            .get(&item)
            .map(|&(c, err)| c - err)
            .unwrap_or(0)
    }

    /// All tracked `(item, estimate)` pairs.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.counters.iter().map(|(&k, &(c, _))| (k, c)).collect()
    }

    /// Items whose estimate is at least `φ·m`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = phi * self.stream_len as f64;
        let mut out: Vec<(u64, u64)> = self
            .entries()
            .into_iter()
            .filter(|&(_, c)| c as f64 >= threshold)
            .collect();
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn estimates_overestimate_within_eps_m() {
        let epsilon = 0.02;
        let mut ss = SpaceSaving::new(epsilon);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 321u64;
        for i in 0..20_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = if i % 3 != 0 {
                (state >> 33) % 8
            } else {
                (state >> 33) % 500
            };
            ss.update(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = ss.stream_len();
        for (item, est) in ss.entries() {
            let f = truth.get(&item).copied().unwrap_or(0);
            assert!(
                est >= f,
                "Space-Saving must not underestimate tracked items"
            );
            assert!(est as f64 <= f as f64 + epsilon * m as f64 + 1.0);
            assert!(ss.guaranteed_count(item) <= f);
        }
        assert!(ss.entries().len() <= ss.capacity());
    }

    #[test]
    fn majority_item_always_tracked() {
        let mut ss = SpaceSaving::new(0.1);
        let stream: Vec<u64> = (0..5000).map(|i| if i % 2 == 0 { 42 } else { i }).collect();
        ss.update_all(&stream);
        assert!(ss.estimate(42) >= 2500);
        let hh: Vec<u64> = ss.heavy_hitters(0.4).into_iter().map(|(i, _)| i).collect();
        assert!(hh.contains(&42));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut ss = SpaceSaving::new(0.25);
        ss.update_all(&(0..1000u64).collect::<Vec<_>>());
        assert!(ss.entries().len() <= 4);
    }
}
