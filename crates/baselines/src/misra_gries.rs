//! The classic sequential Misra–Gries frequent-elements algorithm
//! (Algorithm 1 in the paper; \[MG82\], rediscovered by \[DLOM02, KSP03\]).

use std::collections::HashMap;

/// Sequential Misra–Gries summary with `S = ⌈1/ε⌉` counters processing one
/// element at a time. Guarantees `fₑ − εm ≤ Cₑ ≤ fₑ` (Lemma 5.1).
#[derive(Debug, Clone)]
pub struct SequentialMisraGries {
    epsilon: f64,
    capacity: usize,
    counters: HashMap<u64, u64>,
    stream_len: u64,
}

impl SequentialMisraGries {
    /// Creates a summary with error parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            stream_len: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The number of counters `S = ⌈1/ε⌉`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of counters currently in use.
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    /// Total number of elements processed (`m`).
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Processes a single element (Algorithm 1's `update`).
    pub fn update(&mut self, item: u64) {
        self.stream_len += 1;
        if let Some(c) = self.counters.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, 1);
            return;
        }
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Processes a whole slice, element by element (the sequential baseline
    /// for minibatch throughput comparisons).
    pub fn update_all(&mut self, items: &[u64]) {
        for &x in items {
            self.update(x);
        }
    }

    /// Estimate `Cₑ ∈ [fₑ − εm, fₑ]`.
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// All tracked `(item, counter)` pairs.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Items whose counter is at least `(φ − ε)·m` (the heavy-hitter
    /// reduction used throughout Section 5).
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = ((phi - self.epsilon) * self.stream_len as f64).max(0.0);
        let mut out: Vec<(u64, u64)> = self
            .counters
            .iter()
            .filter(|&(_, &c)| c as f64 >= threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn lemma_5_1_bounds() {
        let epsilon = 0.05;
        let mut mg = SequentialMisraGries::new(epsilon);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 123u64;
        for i in 0..30_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = if i % 4 != 0 {
                (state >> 33) % 10
            } else {
                (state >> 33) % 1000
            };
            mg.update(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = mg.stream_len();
        for (&item, &f) in &truth {
            let c = mg.estimate(item);
            assert!(c <= f);
            assert!(c as f64 + epsilon * m as f64 >= f as f64);
        }
        assert!(mg.num_counters() <= mg.capacity());
    }

    #[test]
    fn small_capacity_decrements() {
        let mut mg = SequentialMisraGries::new(0.5); // capacity 2
        mg.update_all(&[1, 1, 2, 3]);
        assert_eq!(mg.estimate(1), 1);
        assert_eq!(mg.estimate(2), 0);
        assert_eq!(mg.estimate(3), 0);
    }

    #[test]
    fn heavy_hitters_contains_majority_item() {
        let mut mg = SequentialMisraGries::new(0.1);
        let stream: Vec<u64> = (0..1000).map(|i| if i % 2 == 0 { 7 } else { i }).collect();
        mg.update_all(&stream);
        let hh: Vec<u64> = mg.heavy_hitters(0.4).into_iter().map(|(i, _)| i).collect();
        assert!(hh.contains(&7));
    }
}
