//! Exact sliding-window frequency tracking.
//!
//! The naive comparator: a ring buffer of the last `n` items plus a hash map
//! of exact counts. It uses `Θ(n)` memory — the cost the paper's
//! sliding-window algorithms avoid — and serves both as the ground-truth
//! oracle in tests/experiments and as the throughput baseline for E5.

use std::collections::{HashMap, VecDeque};

/// Exact frequencies over a count-based sliding window of size `n`.
#[derive(Debug, Clone)]
pub struct ExactSlidingWindow {
    n: u64,
    buffer: VecDeque<u64>,
    counts: HashMap<u64, u64>,
}

impl ExactSlidingWindow {
    /// Creates a tracker for window size `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "window size must be at least 1");
        Self {
            n,
            buffer: VecDeque::with_capacity(n as usize),
            counts: HashMap::new(),
        }
    }

    /// The window size n.
    pub fn window(&self) -> u64 {
        self.n
    }

    /// Number of distinct items currently in the window.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Number of items currently buffered (≤ n).
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no items have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Processes a single item.
    pub fn update(&mut self, item: u64) {
        if self.buffer.len() as u64 == self.n {
            let evicted = self.buffer.pop_front().expect("buffer is full");
            match self.counts.get_mut(&evicted) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.counts.remove(&evicted);
                }
                None => unreachable!("evicted item must be counted"),
            }
        }
        self.buffer.push_back(item);
        *self.counts.entry(item).or_insert(0) += 1;
    }

    /// Processes a whole minibatch element by element.
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        for &x in minibatch {
            self.update(x);
        }
    }

    /// Exact frequency of `item` within the window.
    pub fn count(&self, item: u64) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// All `(item, count)` pairs currently in the window.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        self.counts.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Exact φ-heavy hitters of the window.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = phi * self.buffer.len() as f64;
        let mut out: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c as f64 >= threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_brute_force() {
        let n = 500u64;
        let mut exact = ExactSlidingWindow::new(n);
        let mut history: Vec<u64> = Vec::new();
        let mut state = 1u64;
        for _ in 0..20 {
            let batch: Vec<u64> = (0..137)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) % 37
                })
                .collect();
            exact.process_minibatch(&batch);
            history.extend_from_slice(&batch);
            let start = history.len().saturating_sub(n as usize);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for &x in &history[start..] {
                *truth.entry(x).or_insert(0) += 1;
            }
            for item in 0..37u64 {
                assert_eq!(exact.count(item), truth.get(&item).copied().unwrap_or(0));
            }
            assert_eq!(exact.len(), history.len().min(n as usize));
        }
    }

    #[test]
    fn heavy_hitters_are_exact() {
        let mut exact = ExactSlidingWindow::new(100);
        exact.process_minibatch(&[1; 60]);
        exact.process_minibatch(&[2; 40]);
        let hh: Vec<u64> = exact
            .heavy_hitters(0.5)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hh, vec![1]);
    }

    #[test]
    fn empty_tracker() {
        let exact = ExactSlidingWindow::new(10);
        assert!(exact.is_empty());
        assert_eq!(exact.count(5), 0);
        assert!(exact.heavy_hitters(0.1).is_empty());
    }
}
