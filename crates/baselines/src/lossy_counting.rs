//! Lossy Counting (Manku–Motwani \[MM02\]).
//!
//! The stream is conceptually divided into buckets of width `⌈1/ε⌉`; at each
//! bucket boundary every counter whose (count + creation-bucket-error) does
//! not reach the current bucket id is discarded. Guarantees
//! `fₑ − εm ≤ Ĉₑ ≤ fₑ` with `O(ε⁻¹ log(εm))` counters.

use std::collections::HashMap;

/// Lossy Counting summary with bucket width `⌈1/ε⌉`.
#[derive(Debug, Clone)]
pub struct LossyCounting {
    epsilon: f64,
    bucket_width: u64,
    /// item → (count, Δ = bucket id at insertion − 1)
    counters: HashMap<u64, (u64, u64)>,
    stream_len: u64,
}

impl LossyCounting {
    /// Creates a summary with error parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        Self {
            epsilon,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            counters: HashMap::new(),
            stream_len: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Total number of elements processed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Number of counters currently stored.
    pub fn num_counters(&self) -> usize {
        self.counters.len()
    }

    fn current_bucket(&self) -> u64 {
        self.stream_len.div_ceil(self.bucket_width).max(1)
    }

    /// Processes a single element.
    pub fn update(&mut self, item: u64) {
        self.stream_len += 1;
        let bucket = self.current_bucket();
        self.counters
            .entry(item)
            .and_modify(|(c, _)| *c += 1)
            .or_insert((1, bucket - 1));
        // Prune at bucket boundaries.
        if self.stream_len.is_multiple_of(self.bucket_width) {
            self.counters
                .retain(|_, &mut (c, delta)| c + delta > bucket);
        }
    }

    /// Processes a whole slice element by element.
    pub fn update_all(&mut self, items: &[u64]) {
        for &x in items {
            self.update(x);
        }
    }

    /// Estimate `Ĉₑ ∈ [fₑ − εm, fₑ]`.
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Items whose estimate is at least `(φ − ε)·m`.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = ((phi - self.epsilon) * self.stream_len as f64).max(0.0);
        let mut out: Vec<(u64, u64)> = self
            .counters
            .iter()
            .filter(|&(_, &(c, _))| c as f64 >= threshold)
            .map(|(&k, &(c, _))| (k, c))
            .collect();
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn estimates_within_bounds() {
        let epsilon = 0.01;
        let mut lc = LossyCounting::new(epsilon);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 77u64;
        for i in 0..50_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let item = if i % 5 != 0 {
                (state >> 33) % 20
            } else {
                (state >> 33) % 3000
            };
            lc.update(item);
            *truth.entry(item).or_insert(0) += 1;
        }
        let m = lc.stream_len();
        for (&item, &f) in &truth {
            let c = lc.estimate(item);
            assert!(c <= f);
            assert!(c as f64 + epsilon * m as f64 >= f as f64);
        }
    }

    #[test]
    fn space_stays_modest_on_uniform_streams() {
        let epsilon = 0.01;
        let mut lc = LossyCounting::new(epsilon);
        let mut state = 5u64;
        for _ in 0..100_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            lc.update((state >> 33) % 50_000);
        }
        // The classic bound is (1/ε)·log(εm) ≈ 100 · log(1000) ≈ 690.
        assert!(
            lc.num_counters() <= 1500,
            "counters = {}",
            lc.num_counters()
        );
    }

    #[test]
    fn heavy_hitters_found() {
        let mut lc = LossyCounting::new(0.05);
        let stream: Vec<u64> = (0..10_000)
            .map(|i| if i % 3 == 0 { 1 } else { i })
            .collect();
        lc.update_all(&stream);
        let hh: Vec<u64> = lc.heavy_hitters(0.2).into_iter().map(|(i, _)| i).collect();
        assert!(hh.contains(&1));
    }
}
