//! The independent-data-structure approach of Section 5.4.
//!
//! The stream is partitioned among `p` workers; each worker maintains its own
//! Misra–Gries summary (`O(1/ε)` counters), and a query merges the `p`
//! summaries using the mergeable-summaries technique of Agarwal et al.
//! \[ACH+13\]: add corresponding counters, then subtract the `(S+1)`-th
//! largest combined counter and keep the positive remainder.
//!
//! This is the comparison point for experiment E7. Its drawbacks — the ones
//! the paper's shared-structure approach removes — are visible directly in
//! the API: [`IndependentMgSummaries::total_counters`] grows with `p`, and
//! [`IndependentMgSummaries::merged`] performs `Θ(p/ε)` work at query time
//! (a sequential bottleneck when answered on one processor).

use std::collections::HashMap;

use rayon::prelude::*;

/// `p` independent Misra–Gries summaries with a merge-on-query interface.
#[derive(Debug, Clone)]
pub struct IndependentMgSummaries {
    epsilon: f64,
    capacity: usize,
    workers: Vec<HashMap<u64, u64>>,
    stream_len: u64,
}

impl IndependentMgSummaries {
    /// Creates `p` per-worker summaries with error parameter `ε`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1)` or `p == 0`.
    pub fn new(epsilon: f64, p: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        assert!(p >= 1, "at least one worker is required");
        let capacity = (1.0 / epsilon).ceil() as usize;
        Self {
            epsilon,
            capacity,
            workers: vec![HashMap::new(); p],
            stream_len: 0,
        }
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of workers `p`.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Per-worker summary capacity `S = ⌈1/ε⌉`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total counters across all workers — `Θ(p/ε)`, the factor-`p` memory
    /// overhead called out in Section 5.4.
    pub fn total_counters(&self) -> usize {
        self.workers.iter().map(HashMap::len).sum()
    }

    /// Total number of elements processed.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Processes a minibatch: the batch is split into `p` contiguous chunks
    /// and each worker updates its own summary sequentially (in parallel
    /// across workers).
    pub fn process_minibatch(&mut self, minibatch: &[u64]) {
        if minibatch.is_empty() {
            return;
        }
        self.stream_len += minibatch.len() as u64;
        let p = self.workers.len();
        let chunk = minibatch.len().div_ceil(p);
        let capacity = self.capacity;
        self.workers
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, summary)| {
                let start = i * chunk;
                if start >= minibatch.len() {
                    return;
                }
                let end = (start + chunk).min(minibatch.len());
                for &item in &minibatch[start..end] {
                    mg_update(summary, capacity, item);
                }
            });
    }

    /// Merges the per-worker summaries into one summary of at most `S`
    /// counters (\[ACH+13\]). This is the query-time step whose cost is
    /// `Θ(p/ε)` and which the paper's shared-structure approach avoids.
    pub fn merged(&self) -> HashMap<u64, u64> {
        let mut combined: HashMap<u64, u64> = HashMap::new();
        for worker in &self.workers {
            for (&item, &count) in worker {
                *combined.entry(item).or_insert(0) += count;
            }
        }
        if combined.len() <= self.capacity {
            return combined;
        }
        // Subtract the (S+1)-th largest counter and keep the positive rest.
        let mut values: Vec<u64> = combined.values().copied().collect();
        values.sort_unstable_by(|a, b| b.cmp(a));
        let cutoff = values[self.capacity];
        combined
            .into_iter()
            .filter_map(|(item, count)| {
                let rem = count.saturating_sub(cutoff);
                if rem > 0 {
                    Some((item, rem))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Frequency estimate from the merged summary:
    /// `fₑ − εm ≤ f̂ₑ ≤ fₑ` (the merged summary is itself an MG summary).
    pub fn estimate(&self, item: u64) -> u64 {
        self.merged().get(&item).copied().unwrap_or(0)
    }

    /// Heavy hitters from the merged summary.
    pub fn heavy_hitters(&self, phi: f64) -> Vec<(u64, u64)> {
        let threshold = ((phi - self.epsilon) * self.stream_len as f64).max(0.0);
        let mut out: Vec<(u64, u64)> = self
            .merged()
            .into_iter()
            .filter(|&(_, c)| c as f64 >= threshold)
            .collect();
        out.sort_unstable_by_key(|entry| std::cmp::Reverse(entry.1));
        out
    }
}

/// One step of the sequential Misra–Gries update on a plain hash map.
fn mg_update(summary: &mut HashMap<u64, u64>, capacity: usize, item: u64) {
    if let Some(c) = summary.get_mut(&item) {
        *c += 1;
        return;
    }
    if summary.len() < capacity {
        summary.insert(item, 1);
        return;
    }
    summary.retain(|_, c| {
        *c -= 1;
        *c > 0
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_summary_satisfies_mg_error_bound() {
        let epsilon = 0.05;
        let p = 4;
        let mut ind = IndependentMgSummaries::new(epsilon, p);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 9u64;
        for _ in 0..30 {
            let batch: Vec<u64> = (0..800)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let r = state >> 33;
                    if !r.is_multiple_of(3) {
                        r % 10
                    } else {
                        10 + r % 2000
                    }
                })
                .collect();
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            ind.process_minibatch(&batch);
        }
        let m = ind.stream_len();
        // Each worker's summary has error ε·mᵢ on its sub-stream; the merged
        // summary has error at most ε·Σmᵢ = εm (mergeability, [ACH+13]).
        for (&item, &f) in &truth {
            let est = ind.estimate(item);
            assert!(est <= f, "merged estimate must not overestimate");
            assert!(
                est as f64 + epsilon * m as f64 >= f as f64,
                "item {item}: est {est} too far below {f}"
            );
        }
    }

    #[test]
    fn memory_grows_with_p() {
        // The Section 5.4 observation: total memory is Θ(p/ε).
        let mut per_p = Vec::new();
        for p in [1usize, 4, 16] {
            let mut ind = IndependentMgSummaries::new(0.02, p);
            let mut state = 3u64;
            for _ in 0..10 {
                // Mostly a moderate set of frequent items (enough to fill each
                // per-worker summary) with an occasional rare item.
                let batch: Vec<u64> = (0..2000)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let r = state >> 33;
                        if !r.is_multiple_of(10) {
                            r % 60
                        } else {
                            60 + r % 100_000
                        }
                    })
                    .collect();
                ind.process_minibatch(&batch);
            }
            per_p.push(ind.total_counters());
        }
        assert!(
            per_p[1] > per_p[0] * 2,
            "memory should grow with p: {per_p:?}"
        );
        assert!(
            per_p[2] > per_p[1] * 2,
            "memory should grow with p: {per_p:?}"
        );
    }

    #[test]
    fn merged_respects_capacity() {
        let mut ind = IndependentMgSummaries::new(0.1, 8);
        let batch: Vec<u64> = (0..10_000u64).collect();
        ind.process_minibatch(&batch);
        assert!(ind.merged().len() <= ind.capacity());
    }

    #[test]
    fn single_worker_matches_sequential_mg() {
        use crate::misra_gries::SequentialMisraGries;
        let mut ind = IndependentMgSummaries::new(0.1, 1);
        let mut seq = SequentialMisraGries::new(0.1);
        let stream: Vec<u64> = (0..5000u64).map(|i| (i * 2654435761) % 40).collect();
        ind.process_minibatch(&stream);
        seq.update_all(&stream);
        for item in 0..40u64 {
            assert_eq!(ind.estimate(item), seq.estimate(item));
        }
    }
}
