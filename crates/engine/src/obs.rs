//! Engine-side observability: *what* is measured, and where.
//!
//! `psfa-obs` provides the mechanisms — relaxed-atomic log histograms,
//! the seqlock trace ring, report rendering. This module owns the
//! measurement points and their assembly into an [`ObsReport`]:
//!
//! * **producer enqueue wait** — time an `ingest`/`enqueue` call blocks on
//!   a full shard queue (`0` recorded on the uncontended path, so the
//!   count doubles as a send count and the non-zero tail *is* the
//!   backpressure);
//! * **batch service time** — per-shard wall time of one minibatch through
//!   the worker's hot path, recorded into per-shard histograms that are
//!   bucket-wise **merged** at report time (the paper's
//!   per-substream-then-merge pattern applied to telemetry);
//! * **snapshot-publication staleness** — time and epoch gap between
//!   consecutive publications of a shard's snapshot, plus republish
//!   counters by [`PublishReason`] (the stall accounting for the lazy
//!   publication path introduced in PR 5);
//! * **query latency by kind** — one histogram per [`QueryKind`];
//! * **fence exclusive wait** — duration of exclusive
//!   [`psfa_stream::IngestFence`] acquisitions (window-boundary cuts and
//!   persistence cuts), the only moments producers are excluded;
//! * **persist append** — encode + fsync (append + compact) duration of
//!   one epoch snapshot on the flusher thread.
//!
//! ## Ordering contract
//!
//! All recording is **relaxed**: one relaxed RMW per sample, never a
//! fence, never a lock. Telemetry therefore observes a *recent* state of
//! the engine, not a serialised one — exactly like the shard stat
//! counters (see the contract in `shard.rs`). Data-plane visibility is
//! carried solely by the snapshot-publication `Release`/`Acquire` edge;
//! nothing here adds to or depends on it, which is what keeps the
//! instrumented hot path within noise of the uninstrumented one (E14
//! asserts `≥ 0.97×`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use psfa_obs::{
    AtomicLogHistogram, Clock, MonotonicClock, ObsCounter, ObsReport, ObsSection, Percentiles,
    TraceRing,
};
use psfa_stream::PoolCounters;

/// Observability configuration (see [`crate::EngineConfig::observability`]).
///
/// Disabled by default: an engine without an `ObsConfig` takes **zero**
/// clock reads and performs no histogram or trace writes anywhere on the
/// ingest, worker, or query paths.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Capacity of the control-plane trace ring (rounded up to a power of
    /// two, minimum 8). Old events are overwritten, never blocking.
    pub trace_capacity: usize,
    /// When set, a background reporter thread renders the report table to
    /// stderr every interval (the percentile-trajectory view); `None` (the
    /// default) leaves reporting to explicit [`crate::EngineHandle::metrics`]
    /// / [`crate::EngineHandle::prometheus_text`] calls.
    pub report_interval: Option<Duration>,
    /// Clock used for every timestamp; defaults to the process-monotonic
    /// [`MonotonicClock`]. Swap in a [`psfa_obs::ManualClock`] to test
    /// timing-dependent behaviour deterministically.
    pub clock: Option<Arc<dyn Clock>>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 1024,
            report_interval: None,
            clock: None,
        }
    }
}

impl ObsConfig {
    /// Sets the trace-ring capacity.
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables the periodic stderr reporter.
    pub fn report_every(mut self, interval: Duration) -> Self {
        self.report_interval = Some(interval);
        self
    }

    /// Overrides the clock (testing).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }
}

/// Why a shard republished its query snapshot — the stall accounting of
/// the lazy publication path (each variant indexes a counter in the
/// report's `republish_*` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PublishReason {
    /// The Misra–Gries entry-set membership changed (an item entered or
    /// left the summary): published immediately so dashboards see churn.
    Membership = 0,
    /// A window boundary sealed a pane.
    Boundary = 1,
    /// A drain barrier (or worker exit) flushed pending state.
    Drain = 2,
    /// The queue ran dry; the worker published before blocking.
    Idle = 3,
    /// A query observed a stale snapshot and raised the refresh flag.
    QueryRefresh = 4,
}

pub(crate) const PUBLISH_REASONS: usize = 5;
const REASON_NAMES: [&str; PUBLISH_REASONS] =
    ["membership", "boundary", "drain", "idle", "query_refresh"];

/// Query kinds timed individually (each indexes one latency histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueryKind {
    Estimate = 0,
    CmEstimate = 1,
    HeavyHitters = 2,
    SlidingEstimate = 3,
    SlidingHeavyHitters = 4,
}

pub(crate) const QUERY_KINDS: usize = 5;
const QUERY_NAMES: [&str; QUERY_KINDS] = [
    "query_estimate",
    "query_cm_estimate",
    "query_heavy_hitters",
    "query_sliding_estimate",
    "query_sliding_heavy_hitters",
];

/// The engine's recorder set: every histogram, counter, and the trace
/// ring, shared (via `Arc`) by producers, shard workers, the persister,
/// and query handles. All methods are lock-free; see the module docs for
/// the ordering contract.
pub(crate) struct EngineObs {
    clock: Arc<dyn Clock>,
    /// Producer wait for shard-queue space, per send (`0` ⇒ no wait).
    pub enqueue_wait: AtomicLogHistogram,
    /// Per-shard batch service time; merged bucket-wise at report time.
    batch_service: Vec<AtomicLogHistogram>,
    /// Time between consecutive snapshot publications of one shard.
    pub publish_staleness: AtomicLogHistogram,
    /// Epochs (batches) elapsed between consecutive publications.
    pub publish_epoch_gap: AtomicLogHistogram,
    /// Publications by [`PublishReason`].
    republish: [AtomicU64; PUBLISH_REASONS],
    /// Membership-triggered publications *suppressed* by the
    /// [`crate::EngineConfig::membership_publish_interval`] rate limit
    /// (the change fell through to the lazy drain/idle/refresh paths).
    membership_suppressed: AtomicU64,
    /// Query latency by [`QueryKind`].
    queries: [AtomicLogHistogram; QUERY_KINDS],
    /// Exclusive ingest-fence acquisition + cut duration (boundary and
    /// persistence cuts — the only producer-excluding moments).
    pub fence_exclusive_wait: AtomicLogHistogram,
    /// Epoch append + compact (encode + fsync) duration on the flusher.
    pub persist_append: AtomicLogHistogram,
    /// Control-plane event ring (see [`psfa_obs::TraceKind`]).
    pub trace: TraceRing,
    /// Router promotion epoch already attributed to a `HotPromote` trace
    /// event (promotions are detected by polling the router's monotone
    /// counter from the ingest path).
    pub promotions_seen: AtomicU64,
}

impl EngineObs {
    pub(crate) fn new(config: &ObsConfig, shards: usize) -> Self {
        Self {
            clock: config
                .clock
                .clone()
                .unwrap_or_else(|| Arc::new(MonotonicClock::new())),
            enqueue_wait: AtomicLogHistogram::new(),
            batch_service: (0..shards).map(|_| AtomicLogHistogram::new()).collect(),
            publish_staleness: AtomicLogHistogram::new(),
            publish_epoch_gap: AtomicLogHistogram::new(),
            republish: std::array::from_fn(|_| AtomicU64::new(0)),
            membership_suppressed: AtomicU64::new(0),
            queries: std::array::from_fn(|_| AtomicLogHistogram::new()),
            fence_exclusive_wait: AtomicLogHistogram::new(),
            persist_append: AtomicLogHistogram::new(),
            trace: TraceRing::new(config.trace_capacity),
            promotions_seen: AtomicU64::new(0),
        }
    }

    /// Current time on the configured clock.
    pub(crate) fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The batch-service histogram of one shard.
    pub(crate) fn batch_service(&self, shard: usize) -> &AtomicLogHistogram {
        &self.batch_service[shard]
    }

    /// Counts one publication for `reason`.
    pub(crate) fn count_republish(&self, reason: PublishReason) {
        self.republish[reason as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one membership change suppressed by the publication rate
    /// limit.
    pub(crate) fn count_membership_suppressed(&self) {
        self.membership_suppressed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query's latency, measured from `start_ns`.
    pub(crate) fn record_query(&self, kind: QueryKind, start_ns: u64) {
        self.queries[kind as usize].record(self.now_ns().saturating_sub(start_ns));
    }

    /// Assembles the full report. `pool`, `fence_cuts`, and `work_units`
    /// come from the engine (the recorders for those live elsewhere);
    /// `recent_events` bounds the trace peek (`0` skips it).
    pub(crate) fn report(
        &self,
        pool: PoolCounters,
        fence_cuts: u64,
        work_units: u64,
        recent_events: usize,
    ) -> ObsReport {
        let mut sections = Vec::new();
        let mut section = |name: &str, unit: &'static str, help: &'static str, p: Percentiles| {
            sections.push(ObsSection {
                name: name.to_string(),
                unit,
                help,
                percentiles: p,
            });
        };
        section(
            "enqueue_wait",
            "ns",
            "producer wait for shard queue space (0 = no backpressure)",
            self.enqueue_wait.snapshot().percentiles(),
        );
        // Per-shard recorders, one merged distribution: the mergeable-
        // summaries pattern applied to the telemetry itself.
        let mut service = psfa_obs::HistogramSnapshot::empty();
        for h in &self.batch_service {
            service.merge(&h.snapshot());
        }
        section(
            "batch_service",
            "ns",
            "shard worker wall time per minibatch, merged across shards",
            service.percentiles(),
        );
        section(
            "publish_staleness",
            "ns",
            "time between consecutive snapshot publications of a shard",
            self.publish_staleness.snapshot().percentiles(),
        );
        section(
            "publish_epoch_gap",
            "epochs",
            "batches elapsed between consecutive snapshot publications",
            self.publish_epoch_gap.snapshot().percentiles(),
        );
        for (kind, hist) in QUERY_NAMES.iter().zip(&self.queries) {
            section(kind, "ns", "query latency", hist.snapshot().percentiles());
        }
        section(
            "fence_exclusive_wait",
            "ns",
            "exclusive ingest-fence acquisition + cut duration",
            self.fence_exclusive_wait.snapshot().percentiles(),
        );
        section(
            "persist_append",
            "ns",
            "epoch snapshot append + compact (encode + fsync) duration",
            self.persist_append.snapshot().percentiles(),
        );

        let mut counters = Vec::new();
        let mut counter = |name: &str, help: &'static str, value: u64| {
            counters.push(ObsCounter {
                name: name.to_string(),
                help,
                value,
            });
        };
        for (name, count) in REASON_NAMES.iter().zip(&self.republish) {
            counter(
                &format!("republish_{name}"),
                "snapshot publications by reason",
                count.load(Ordering::Relaxed),
            );
        }
        counter(
            "republish_suppressed",
            "membership publications suppressed by the rate limit",
            self.membership_suppressed.load(Ordering::Relaxed),
        );
        counter(
            "pool_hit",
            "buffer-pool checkouts served with recycled capacity",
            pool.hits,
        );
        counter(
            "pool_miss",
            "buffer-pool checkouts served by a fresh allocation",
            pool.misses,
        );
        counter(
            "pool_drop",
            "buffer give-backs dropped on a full or contended lane",
            pool.drops,
        );
        counter(
            "fence_exclusive",
            "exclusive ingest-fence acquisitions (cuts)",
            fence_cuts,
        );
        counter(
            "work_units",
            "summary update work charged by the shard WorkMeters",
            work_units,
        );
        counter(
            "trace_recorded",
            "control-plane events written to the trace ring",
            self.trace.recorded(),
        );
        counter(
            "trace_dropped",
            "trace events dropped on slot contention",
            self.trace.dropped(),
        );

        ObsReport {
            sections,
            counters,
            recent_events: self.trace.peek(recent_events),
        }
    }
}

impl std::fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineObs")
            .field("shards", &self.batch_service.len())
            .field("trace_capacity", &self.trace.capacity())
            .finish_non_exhaustive()
    }
}

/// Handle to the background reporter thread (the percentile-trajectory
/// view): renders the engine's report to stderr every interval. Same
/// poll-thread pattern as the persistence `Flusher`.
pub(crate) struct Reporter {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns the reporter; `render` produces one report table per tick.
    pub(crate) fn spawn(interval: Duration, render: impl Fn() -> String + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        // Poll in small slices so `stop` never waits out a long interval.
        let slice = interval
            .min(Duration::from_millis(20))
            .max(Duration::from_millis(1));
        let thread = std::thread::Builder::new()
            .name("psfa-obs-reporter".to_string())
            .spawn(move || {
                let mut elapsed = Duration::ZERO;
                loop {
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        eprintln!("psfa-obs report\n{}", render());
                    }
                }
            })
            .expect("failed to spawn obs reporter thread");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the reporter and joins its thread (idempotent).
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_names_every_recorder() {
        let obs = EngineObs::new(&ObsConfig::default(), 2);
        obs.enqueue_wait.record(100);
        obs.batch_service(0).record(1_000);
        obs.batch_service(1).record(3_000);
        obs.count_republish(PublishReason::Membership);
        obs.record_query(QueryKind::HeavyHitters, 0);
        let report = obs.report(
            PoolCounters {
                hits: 5,
                misses: 2,
                drops: 1,
            },
            3,
            42,
            8,
        );
        // Per-shard service histograms merged: both samples in one section.
        assert_eq!(report.percentiles("batch_service").unwrap().count, 2);
        assert_eq!(report.percentiles("enqueue_wait").unwrap().count, 1);
        assert_eq!(report.counter("republish_membership"), Some(1));
        assert_eq!(report.counter("republish_idle"), Some(0));
        obs.count_membership_suppressed();
        let suppressed = obs.report(PoolCounters::default(), 0, 0, 0);
        assert_eq!(suppressed.counter("republish_suppressed"), Some(1));
        assert_eq!(report.counter("pool_miss"), Some(2));
        assert_eq!(report.counter("fence_exclusive"), Some(3));
        assert_eq!(report.counter("work_units"), Some(42));
        assert_eq!(report.percentiles("query_heavy_hitters").unwrap().count, 1);
        // Every section renders into both output formats.
        let text = report.prometheus_text();
        assert!(text.contains("psfa_batch_service_ns"));
        assert!(text.contains("psfa_republish_membership_total"));
    }

    #[test]
    fn manual_clock_drives_query_timing() {
        let clock = Arc::new(psfa_obs::ManualClock::new());
        let obs = EngineObs::new(&ObsConfig::default().clock(clock.clone()), 1);
        let start = obs.now_ns();
        clock.advance(5_000);
        obs.record_query(QueryKind::Estimate, start);
        let p = obs
            .report(PoolCounters::default(), 0, 0, 0)
            .percentiles("query_estimate")
            .unwrap();
        assert_eq!(p.count, 1);
        // One-sided bucket error: the recorded 5000ns lands in a bucket
        // whose upper bound is within 2^-5 relative.
        assert!(p.p50 >= 5_000 && p.p50 <= 5_000 + (5_000 >> 5) + 1);
    }

    #[test]
    fn reporter_stops_cleanly() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let mut reporter = Reporter::spawn(Duration::from_millis(1), move || {
            t.fetch_add(1, Ordering::Relaxed);
            String::from("tick")
        });
        std::thread::sleep(Duration::from_millis(10));
        reporter.stop();
        reporter.stop(); // idempotent
        assert!(ticks.load(Ordering::Relaxed) > 0, "reporter never ticked");
    }
}
