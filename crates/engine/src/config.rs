//! Engine configuration.

use std::path::Path;
use std::sync::Arc;

use psfa_primitives::FaultPlan;
use psfa_store::PersistenceConfig;
use psfa_stream::RoutingPolicy;

use crate::obs::ObsConfig;

/// Configuration of a sharded ingestion engine.
///
/// The accuracy parameters mirror the single-threaded operators: each shard
/// owns an infinite-window heavy-hitter tracker (`φ`, `ε`), a Count-Min
/// sketch (`cm_epsilon`, `cm_delta`, `cm_seed` — the *same* seed on every
/// shard so per-shard sketches stay mergeable), and optionally the per-shard
/// pane state of a **global** sliding window that advances at
/// shard-consistent boundaries (`window`, `window_panes`).
///
/// `routing` selects how minibatches are split across shards: hash
/// partitioning (each key owned by one shard, the default) or skew-aware
/// hot-key splitting (see [`psfa_stream::SkewAwareRouter`]).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard workers (and worker threads).
    pub shards: usize,
    /// Bounded per-shard queue capacity, in minibatches. When a queue is
    /// full, [`crate::EngineHandle::ingest`] blocks — backpressure.
    pub queue_capacity: usize,
    /// How minibatches are routed across shards.
    pub routing: RoutingPolicy,
    /// Heavy-hitter threshold φ.
    pub phi: f64,
    /// Frequency-estimation error ε (must satisfy `0 < ε < φ < 1`).
    pub epsilon: f64,
    /// Count-Min error parameter.
    pub cm_epsilon: f64,
    /// Count-Min failure probability.
    pub cm_delta: f64,
    /// Count-Min hash seed, shared by all shards so sketches merge.
    pub cm_seed: u64,
    /// Global sliding-window size `n_W` in items across all shards;
    /// `None` disables windowed queries. The window is divided into
    /// [`EngineConfig::window_panes`] panes and advances at shard-consistent
    /// boundaries every `n_W / window_panes` accepted items (see
    /// `psfa_stream::WindowFence`), so `sliding_estimate` and
    /// `sliding_heavy_hitters` answer over the same global window no matter
    /// how traffic was routed.
    pub window: Option<u64>,
    /// Number of panes the global window is divided into (the window
    /// advances one pane per boundary; larger = smoother sliding, more
    /// summaries per shard). Must divide `window`. Ignored without a
    /// window.
    pub window_panes: usize,
    /// Rate limit on membership-triggered snapshot publications, in
    /// epochs (batches) per shard: a Misra–Gries membership change
    /// republishes immediately only if at least this many epochs have
    /// passed since the shard's last publication. `1` (the default)
    /// preserves the publish-on-every-churn behaviour; larger values cap
    /// the republish frequency under uniform streams, where MG membership
    /// churns on every batch and would otherwise force a full snapshot
    /// clone per batch. Suppressed publications fall back to the lazy
    /// path (drain/idle/query-refresh), so the bounded-staleness contract
    /// is unchanged; the suppressed count is surfaced as the
    /// `republish_suppressed` observability counter.
    pub membership_publish_interval: u64,
    /// Epoch-snapshot persistence; `None` (the default) keeps all state in
    /// memory. When set, a background flusher thread periodically cuts a
    /// consistent epoch across shards and appends it to the segment log at
    /// `persistence.dir` — see `psfa-store` and [`crate::Engine::recover`].
    pub persistence: Option<PersistenceConfig>,
    /// Observability: latency histograms, stall accounting, and the
    /// control-plane trace ring (see [`ObsConfig`] and the `obs` module
    /// docs). `None` (the default) compiles the instrumentation out of the
    /// hot path entirely — no clock reads, no histogram writes.
    pub observability: Option<ObsConfig>,
    /// Thread-local ingest mode: each [`crate::EngineHandle::producer`]
    /// owns a *private* substream (its own Misra–Gries tracker and
    /// Count-Min sketch) instead of routing into the shard workers, and
    /// queries merge the producer substreams with the shard summaries at
    /// read time. Ingestion is entirely producer-local — no routing, no
    /// cross-thread handoff — at the cost of query-time merge work and of
    /// features that need a global stream order: incompatible with the
    /// sliding window and with persistence (`validate` rejects both).
    pub thread_local_ingest: bool,
    /// Deterministic fault injection (see [`psfa_primitives::fault`]).
    /// `None` (the default) compiles every fault site down to a single
    /// `Option` branch — the same zero-cost-when-off pattern as
    /// [`EngineConfig::observability`]. Set it (tests, chaos experiments)
    /// to schedule worker panics, store write errors, and lane stalls.
    pub fault: Option<Arc<FaultPlan>>,
    /// How many times the supervisor restarts one shard's panicked worker
    /// before declaring the shard **dead** (permanently quarantined: its
    /// queries answer from the last published snapshot forever and
    /// [`crate::Engine::shutdown`] reports it in the typed error). Counted
    /// per shard over the engine's lifetime.
    pub worker_restart_limit: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(2),
            queue_capacity: 32,
            routing: RoutingPolicy::Hash,
            phi: 0.01,
            epsilon: 0.001,
            cm_epsilon: 0.0005,
            cm_delta: 0.01,
            cm_seed: 0x00C0_FFEE,
            window: None,
            window_panes: 8,
            membership_publish_interval: 1,
            persistence: None,
            observability: None,
            thread_local_ingest: false,
            fault: None,
            worker_restart_limit: 8,
        }
    }
}

impl EngineConfig {
    /// Starts from defaults with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Sets the per-shard queue capacity (in minibatches).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Enables skew-aware routing with default parameters: hot keys are
    /// detected online and split round-robin across all shards.
    pub fn skew_aware_routing(self) -> Self {
        self.routing(RoutingPolicy::skew_aware())
    }

    /// Sets the heavy-hitter threshold φ and estimation error ε.
    pub fn heavy_hitters(mut self, phi: f64, epsilon: f64) -> Self {
        self.phi = phi;
        self.epsilon = epsilon;
        self
    }

    /// Sets the Count-Min parameters.
    pub fn count_min(mut self, epsilon: f64, delta: f64, seed: u64) -> Self {
        self.cm_epsilon = epsilon;
        self.cm_delta = delta;
        self.cm_seed = seed;
        self
    }

    /// Enables the global sliding window of `n` items (divided into
    /// [`EngineConfig::window_panes`] panes; `n` must be a multiple of the
    /// pane count).
    pub fn sliding_window(mut self, n: u64) -> Self {
        self.window = Some(n);
        self
    }

    /// Sets how many panes the global sliding window is divided into.
    pub fn window_panes(mut self, panes: usize) -> Self {
        self.window_panes = panes;
        self
    }

    /// Caps membership-triggered republication to at most once per
    /// `epochs` batches per shard (see
    /// [`EngineConfig::membership_publish_interval`]).
    pub fn membership_publish_interval(mut self, epochs: u64) -> Self {
        self.membership_publish_interval = epochs;
        self
    }

    /// Enables epoch-snapshot persistence with the given configuration.
    pub fn persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.persistence = Some(persistence);
        self
    }

    /// Enables epoch-snapshot persistence into `dir` with default knobs
    /// (see [`PersistenceConfig::new`]).
    pub fn persist_to(self, dir: impl AsRef<Path>) -> Self {
        self.persistence(PersistenceConfig::new(dir))
    }

    /// Enables observability with the given configuration.
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.observability = Some(obs);
        self
    }

    /// Enables observability with default knobs (1024-event trace ring, no
    /// periodic reporter).
    pub fn observe(self) -> Self {
        self.observability(ObsConfig::default())
    }

    /// Switches producers to thread-local ingest (see
    /// [`EngineConfig::thread_local_ingest`]).
    pub fn thread_local_ingest(mut self) -> Self {
        self.thread_local_ingest = true;
        self
    }

    /// Arms deterministic fault injection with the given plan (see
    /// [`EngineConfig::fault`]).
    pub fn fault_injection(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }

    /// Caps per-shard worker restarts (see
    /// [`EngineConfig::worker_restart_limit`]).
    pub fn worker_restart_limit(mut self, restarts: u64) -> Self {
        self.worker_restart_limit = restarts;
        self
    }

    /// Checks parameter ranges.
    ///
    /// # Panics
    /// Panics on invalid parameters; called by [`crate::Engine`] at spawn.
    pub fn validate(&self) {
        assert!(self.shards >= 1, "engine needs at least one shard");
        assert!(
            self.queue_capacity >= 1,
            "queue capacity must be at least 1"
        );
        self.routing.validate(self.shards);
        assert!(
            self.membership_publish_interval >= 1,
            "membership publish interval must be at least 1 epoch"
        );
        assert!(
            self.epsilon > 0.0 && self.epsilon < self.phi && self.phi < 1.0,
            "heavy hitters require 0 < epsilon < phi < 1"
        );
        assert!(
            self.cm_epsilon > 0.0 && self.cm_epsilon < 1.0,
            "count-min epsilon must be in (0, 1)"
        );
        assert!(
            self.cm_delta > 0.0 && self.cm_delta < 1.0,
            "count-min delta must be in (0, 1)"
        );
        if let Some(persistence) = &self.persistence {
            persistence.validate();
        }
        if self.thread_local_ingest {
            assert!(
                self.window.is_none(),
                "thread-local ingest is incompatible with the global sliding \
                 window (producer substreams have no shard-consistent boundaries)"
            );
            assert!(
                self.persistence.is_none(),
                "thread-local ingest is incompatible with persistence \
                 (producer substreams are outside the snapshot cut)"
            );
        }
        if let Some(n) = self.window {
            assert!(
                self.window_panes >= 1,
                "the sliding window needs at least one pane"
            );
            assert!(
                n >= self.window_panes as u64 && n % self.window_panes as u64 == 0,
                "sliding window size must be a positive multiple of window_panes \
                 (the window advances one pane of n / panes items per boundary)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        EngineConfig::default().validate();
        assert!(EngineConfig::default().shards >= 2);
    }

    #[test]
    fn builder_methods_compose() {
        let config = EngineConfig::with_shards(4)
            .queue_capacity(8)
            .heavy_hitters(0.05, 0.01)
            .count_min(0.001, 0.02, 7)
            .sliding_window(1 << 16)
            .skew_aware_routing();
        config.validate();
        assert_eq!(config.shards, 4);
        assert_eq!(config.queue_capacity, 8);
        assert_eq!(config.window, Some(1 << 16));
        assert_eq!(config.routing.name(), "skew-aware");
        assert_eq!(EngineConfig::default().routing, RoutingPolicy::Hash);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn invalid_routing_rejected() {
        EngineConfig::with_shards(2)
            .routing(RoutingPolicy::SkewAware {
                hot_capacity: Some(4),
                hot_fraction: Some(2.0),
            })
            .validate();
    }

    #[test]
    #[should_panic(expected = "epsilon < phi")]
    fn epsilon_above_phi_rejected() {
        EngineConfig::with_shards(2)
            .heavy_hitters(0.01, 0.1)
            .validate();
    }

    #[test]
    #[should_panic(expected = "incompatible with the global sliding")]
    fn thread_local_ingest_rejects_windows() {
        EngineConfig::with_shards(2)
            .sliding_window(1 << 16)
            .thread_local_ingest()
            .validate();
    }

    #[test]
    #[should_panic(expected = "incompatible with persistence")]
    fn thread_local_ingest_rejects_persistence() {
        EngineConfig::with_shards(2)
            .persist_to("/tmp/never-created")
            .thread_local_ingest()
            .validate();
    }

    #[test]
    #[should_panic(expected = "multiple of window_panes")]
    fn indivisible_window_rejected() {
        EngineConfig::with_shards(2)
            .sliding_window(10_001)
            .window_panes(8)
            .validate();
    }
}
