//! Shard workers: the ingestion side of the engine.
//!
//! Each shard owns its operator set outright — there is no locking on the
//! heavy-hitter or sliding-window update path, and since PR 5 none on the
//! rest of the per-batch path either. The hot path is **lock-free and, at
//! steady state, allocation-free**:
//!
//! * the per-minibatch histogram is built into reusable scratch
//!   ([`psfa_primitives::build_hist_into`]) and shared by the heavy-hitter
//!   tracker, the open window pane, and the Count-Min sketch — one pass,
//!   zero allocations;
//! * the Count-Min sketch is a [`psfa_sketch::AtomicCountMin`]: the worker
//!   adds with relaxed atomics and point queries read concurrently with no
//!   mutex (the one-sided overestimate survives relaxed ordering — see
//!   that module's docs);
//! * finished sub-batch buffers are returned to the engine's
//!   [`psfa_stream::BufferPool`] return lanes, so producers reuse their
//!   capacity instead of allocating per batch;
//! * query snapshots are published through an
//!   [`psfa_primitives::ArcCell`] — a pointer swap, not an `RwLock` write —
//!   and **lazily**: see below.
//!
//! ## Lazy epoch-versioned snapshot publication
//!
//! A [`ShardSnapshot`] freezes the `O(1/ε)` query surface, so publishing
//! one costs an `O(1/ε)` clone. Doing that after *every* minibatch (the
//! pre-PR-5 behaviour) made the clone the largest per-batch cost at small
//! ε. The worker now publishes when it matters and skips the clone when it
//! cannot:
//!
//! * **immediately** when the Misra–Gries *entry set membership* changed
//!   (an item entered or left the summary — heavy-hitter dashboards see
//!   churn at once), when a window boundary seals, and before a drain
//!   barrier is acknowledged. Membership-triggered publication is
//!   rate-limited by [`EngineConfig::membership_publish_interval`]
//!   (default 1 = every churn): under a *uniform* stream the membership
//!   churns on every batch, and the limit caps the republish frequency —
//!   a suppressed change is counted (`republish_suppressed`) and handed
//!   to the lazy paths below;
//! * **on demand** when a query observed a stale snapshot: the shared
//!   `live_epoch` counter (batches the worker has finished) runs ahead of
//!   the published snapshot's `epoch`; a reader that sees the gap sets the
//!   `refresh` flag, and the worker republishes on its next batch — one
//!   relaxed flag check per batch, bounded staleness of one batch for any
//!   active reader;
//! * **when the queue runs dry**: before blocking on an empty queue the
//!   worker publishes anything pending, so an idle (or drained) shard's
//!   snapshot is always exactly current.
//!
//! Between publications a reader sees the summaries as of a slightly
//! earlier epoch — exactly the guarantee the minibatch model already gives
//! between batches, and every published snapshot is internally consistent
//! at its epoch.
//!
//! ## Memory-ordering contract
//!
//! One edge carries all cross-thread visibility: the snapshot publication.
//! [`psfa_primitives::ArcCell::set`] stores the new pointer with `Release`,
//! and readers swap it out with `Acquire` — so everything the worker wrote
//! before publishing (relaxed Count-Min adds, relaxed stat increments, the
//! snapshot contents) is visible to any reader that observed that
//! snapshot. In particular `cm_estimate(x) ≥ snapshot.estimate(x)` holds
//! for any reader: the sketch it queries already contains every batch at
//! or before the snapshot's epoch. Everything else is deliberately weak:
//!
//! * [`crate::metrics::ShardStats`] counters (`items_processed`,
//!   `batches_processed`, enqueue counters) are **relaxed** `fetch_add`s —
//!   they are monotone progress hints read with `Acquire` by metrics, and
//!   need no stronger ordering of their own (the previous `AcqRel` bought
//!   nothing: an RMW's ordering cannot make *other* data visible earlier,
//!   and the publication `Release` already fences everything a reader can
//!   act on);
//! * `live_epoch` and `refresh` are relaxed/`AcqRel`-swap respectively;
//!   both are advisory — a missed refresh request is re-raised by the next
//!   stale read, a premature one costs one extra publication;
//! * `window_seq` keeps its `Release` store after the sealed window is
//!   published, so a reader that sees the new boundary number also finds
//!   the sealed window in the snapshot.
//!
//! ## Ingest lanes and gated commands
//!
//! Since PR 9 a shard accepts minibatches on two paths: the bounded MPSC
//! control channel (every [`ShardCommand`], including legacy
//! [`ShardCommand::Batch`]es), and any number of per-producer
//! [`psfa_stream::IngestLane`]s registered in [`ShardShared`]. The worker
//! polls the lanes whenever the channel runs dry, so the steady-state
//! multi-producer transfer is single-producer/single-consumer per lane —
//! no shared channel lock, no shared head/tail cache line.
//!
//! Lanes put batches *outside* the channel's total order, so every
//! cut-like command carries a **gate**: the cutter (holding the ingest
//! fence exclusively) stamps a [`psfa_stream::LaneMark`] into every
//! registered lane at its exact push position and records how many lanes
//! it marked (`fanin`) in the command. On receiving a gated command the
//! worker first drains each lane *to its mark* — batches before the mark
//! are exactly the pre-cut batches; a lane whose mark was consumed is
//! parked until the gate executes, and `pop_batch` structurally refuses
//! to jump a due mark — then performs the seal / persist reply /
//! barrier ack. Marks are stamped before the command is sent and both
//! cuts and channel sends serialise under the exclusive fence, so per-lane
//! mark order always equals channel command order, and the worker never
//! waits for a mark that is not already in place.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use psfa_freq::{InfiniteHeavyHitters, PaneWindow, SealedWindow};
use psfa_obs::TraceKind;
use psfa_primitives::{
    build_hist_into, ArcCell, FaultPlan, HistScratch, HistogramEntry, WorkMeter,
};
use psfa_sketch::AtomicCountMin;
use psfa_store::ShardState;
use psfa_stream::{BufferPool, IngestLane, MinibatchOperator};

use crate::config::EngineConfig;
use crate::metrics::ShardStats;
use crate::obs::{EngineObs, PublishReason};

/// Sealed windows kept per shard snapshot: enough boundary history for a
/// query to find one boundary that *every* shard has already sealed even
/// while shards lag each other by a few queued markers.
const WINDOW_HISTORY: usize = 8;

/// How long an idle worker with registered lanes sleeps on the control
/// channel before re-polling the lanes: the first-batch latency of a lane
/// whose producer started while the worker was parked. Once traffic flows
/// the worker never sleeps, so this bounds wake-up latency, not
/// throughput.
const LANE_POLL: Duration = Duration::from_micros(500);

/// Commands accepted by a shard worker, in queue order.
///
/// Cut-like commands (`Barrier`, `Boundary`, `Persist`) are **gated**: the
/// cutter stamped a mark for `gate` into `fanin` registered ingest lanes
/// (under the exclusive fence, before sending the command), and the worker
/// drains each lane exactly to its mark before executing the command — see
/// the module docs. An engine without lane producers always sends
/// `fanin == 0`, which degenerates to the pre-lane behaviour.
pub(crate) enum ShardCommand {
    /// One routed minibatch to ingest. The worker returns the buffer to the
    /// engine's [`BufferPool`] when done, so its capacity recirculates to
    /// the producers.
    Batch(Vec<u64>),
    /// Drain checkpoint: acknowledge once every earlier command — and every
    /// lane batch pushed before the barrier's cut — is done.
    Barrier {
        /// Acknowledged once the checkpoint is reached.
        ack: SyncSender<()>,
        /// Gate id of the barrier's marks.
        gate: u64,
        /// Lanes marked at the cut.
        fanin: usize,
    },
    /// Window boundary `seq`: seal the open pane. The `WindowFence`
    /// enqueues this on every shard from inside an exclusive cut, so the
    /// marker sits at the same stream position on every shard's FIFO — and
    /// its lane marks at the same push position in every lane — so the
    /// items between two markers (one pane) partition the global stream
    /// identically from every shard's point of view.
    Boundary {
        /// Boundary sequence number being sealed.
        seq: u64,
        /// Gate id of the boundary's marks.
        gate: u64,
        /// Lanes marked at the cut.
        fanin: usize,
    },
    /// Snapshot cut: reply with a clone of the full operator state. The
    /// persister enqueues this on every shard while holding the ingest
    /// fence exclusively, so the FIFO position — and therefore the state
    /// handed back — reflects exactly the minibatches accepted before the
    /// cut, on every shard.
    Persist {
        /// Receives the operator state as of the cut.
        reply: SyncSender<ShardState>,
        /// Gate id of the snapshot's marks.
        gate: u64,
        /// Lanes marked at the cut.
        fanin: usize,
    },
    /// No-op used to rouse a worker parked on an empty channel so it
    /// notices freshly registered ingest lanes.
    Wake,
    /// Finish queued work (including lane residue), then exit and hand
    /// back the operator state.
    Shutdown,
}

/// Immutable view of one shard's summaries at one epoch.
///
/// Snapshots freeze the *query surfaces* (Misra–Gries entries, stream
/// length, the sealed windows of recent boundaries) — `O(1/ε)` data — not
/// the raw operator state. `epoch` equals the number of minibatches the
/// shard had processed when the snapshot was published; it is strictly
/// increasing, so callers can detect progress between reads. Publication is
/// lazy (see the module docs), so the newest snapshot may trail the
/// worker by a bounded number of batches; the engine's snapshot loads
/// request a refresh when they observe the gap.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Owning shard index.
    pub shard: usize,
    /// Minibatches processed when this snapshot was taken.
    pub epoch: u64,
    /// Items processed by this shard (its `m_s`).
    pub stream_len: u64,
    /// Misra–Gries `(item, estimate)` entries of the infinite-window
    /// estimator, **ascending by item** (point lookups binary-search;
    /// cross-shard merges are sorted merges); estimates are one-sided:
    /// `f − ε·m_s ≤ f̂ ≤ f`.
    pub hh_entries: Vec<(u64, u64)>,
    /// This shard's sealed views of the global sliding window at the most
    /// recent boundaries it has processed, oldest first (empty when the
    /// engine runs without a window or before the first boundary). Shared
    /// `Arc`s: sealed windows are immutable and only change at boundaries,
    /// so re-publishing a snapshot per batch costs pointer bumps.
    pub windows: Vec<Arc<SealedWindow>>,
}

impl ShardSnapshot {
    pub(crate) fn empty(shard: usize) -> Self {
        Self {
            shard,
            epoch: 0,
            stream_len: 0,
            hh_entries: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// The Misra–Gries estimate for `item` (`0` when untracked); a binary
    /// search over the item-sorted entries.
    pub fn estimate(&self, item: u64) -> u64 {
        self.hh_entries
            .binary_search_by_key(&item, |&(i, _)| i)
            .map_or(0, |at| self.hh_entries[at].1)
    }

    /// The newest window boundary this shard has sealed (`0` before the
    /// first).
    pub fn latest_window_seq(&self) -> u64 {
        self.windows.last().map_or(0, |w| w.seq)
    }

    /// This shard's sealed window at boundary `seq`, if still retained.
    pub fn window_at(&self, seq: u64) -> Option<&Arc<SealedWindow>> {
        self.windows.iter().find(|w| w.seq == seq)
    }
}

/// State of one shard shared between producers, the worker, and queries.
pub(crate) struct ShardShared {
    pub stats: ShardStats,
    /// Latest published snapshot (lock-free pointer swap; see module docs).
    pub snapshot: ArcCell<ShardSnapshot>,
    /// The shard's live Count-Min sketch: the worker adds, queries read —
    /// concurrently, without a lock.
    pub count_min: AtomicCountMin,
    /// Minibatches the worker has fully processed (may run ahead of the
    /// published snapshot's `epoch`; the gap is what triggers `refresh`).
    /// Starts at the recovered epoch after a crash recovery, unlike the
    /// per-process stats counters. `pub(crate)`: a thread-local producer
    /// (see `crate::producer`) plays the worker role for its own substream
    /// and drives the same lazy-publication protocol.
    pub(crate) live_epoch: AtomicU64,
    /// Set by a reader that observed a stale snapshot; cleared by the
    /// worker (or thread-local producer) when it republishes on the next
    /// batch.
    pub(crate) refresh: AtomicBool,
    /// Abstract summary-update work charged by this shard's tracker (the
    /// work-optimality accounting of E8, live on a running engine). The
    /// worker holds a clone of the same counter.
    pub work: WorkMeter,
    /// Per-producer SPSC ingest lanes feeding this shard, in registration
    /// order. The registry only grows (a dropped producer closes its lanes
    /// but leaves them registered), so indices are stable and a cutter's
    /// mark fan-in can never disagree with what the worker eventually
    /// finds.
    lanes: Mutex<Vec<Arc<IngestLane>>>,
    /// Bumped after every registration; the worker caches the lane list
    /// and re-reads it only when this moves — one relaxed load per poll.
    lane_generation: AtomicU64,
}

impl ShardShared {
    /// Shared state for one shard. When `recovered` is given (crash
    /// recovery), the Count-Min sketch is rehydrated from the persisted
    /// epoch and the *initial published snapshot* already reflects the
    /// recovered summaries — queries against a freshly recovered engine see
    /// the persisted state immediately, with no race against the worker's
    /// first batch.
    pub(crate) fn new(shard: usize, config: &EngineConfig, recovered: Option<&ShardState>) -> Self {
        let (snapshot, count_min) = match recovered {
            None => (
                ShardSnapshot::empty(shard),
                AtomicCountMin::new(config.cm_epsilon, config.cm_delta, config.cm_seed),
            ),
            Some(state) => (
                ShardSnapshot {
                    shard,
                    epoch: state.epoch,
                    stream_len: state.items,
                    hh_entries: state.heavy_hitters.estimator().tracked_items_sorted(),
                    windows: state
                        .window
                        .as_ref()
                        .and_then(|w| w.sealed_window())
                        .map(Arc::new)
                        .into_iter()
                        .collect(),
                },
                AtomicCountMin::from_parallel(&state.count_min),
            ),
        };
        let stats = ShardStats::default();
        stats
            .window_seq
            .store(snapshot.latest_window_seq(), Ordering::Release);
        let live_epoch = AtomicU64::new(snapshot.epoch);
        Self {
            stats,
            snapshot: ArcCell::new(Arc::new(snapshot)),
            count_min,
            live_epoch,
            refresh: AtomicBool::new(false),
            work: WorkMeter::new(),
            lanes: Mutex::new(Vec::new()),
            lane_generation: AtomicU64::new(0),
        }
    }

    /// Registers a producer's SPSC ingest lane with this shard. The
    /// generation bump happens inside the registry lock so a concurrent
    /// cutter either marks the new lane (and counts it in `fanin`) or
    /// misses it entirely — never a marked-but-uncounted lane.
    pub(crate) fn register_lane(&self, lane: Arc<IngestLane>) {
        // Poison recovery is safe here: the registry is an append-only
        // `Vec` of `Arc`s, so a panic mid-update cannot leave it in a
        // torn state — the push either happened or it did not, and the
        // generation bump below re-establishes the only cross-field
        // invariant (generation moves after every visible registration).
        let mut lanes = self
            .lanes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        lanes.push(lane);
        self.lane_generation.fetch_add(1, Ordering::Release);
    }

    /// Stamps a cut mark for `gate` into every registered lane at its
    /// current push position and returns how many lanes were marked (the
    /// command's `fanin`). Must be called while holding the ingest fence
    /// exclusively — that is what makes "current push position" a
    /// consistent cut across producers.
    pub(crate) fn mark_lanes(&self, gate: u64) -> usize {
        // Poison recovery is safe: marking only reads the append-only
        // registry, and a poisoned lock still guards a structurally
        // valid `Vec` (see `register_lane`).
        let lanes = self
            .lanes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for lane in lanes.iter() {
            lane.push_mark(gate);
        }
        lanes.len()
    }

    /// Current lane registry generation (relaxed; the worker re-snapshots
    /// when it moves).
    pub(crate) fn lane_generation(&self) -> u64 {
        self.lane_generation.load(Ordering::Acquire)
    }

    /// Clones the current lane registry (worker refresh path).
    pub(crate) fn lanes_snapshot(&self) -> Vec<Arc<IngestLane>> {
        // Poison recovery is safe: cloning the append-only registry only
        // reads `Arc`s that were fully constructed before being pushed.
        self.lanes
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The latest published snapshot. If the worker has processed batches
    /// beyond it, raises the refresh flag so the worker republishes on its
    /// next batch — the *next* read then sees a current snapshot even under
    /// sustained load (an idle worker republishes on its own before
    /// blocking, so staleness can only be observed while batches are in
    /// flight).
    pub(crate) fn load_snapshot(&self) -> Arc<ShardSnapshot> {
        let snapshot = self.snapshot.get();
        if snapshot.epoch < self.live_epoch.load(Ordering::Relaxed) {
            self.refresh.store(true, Ordering::Release);
        }
        snapshot
    }
}

/// Final operator state a shard worker hands back at shutdown.
pub struct ShardFinal {
    /// Shard index.
    pub shard: usize,
    /// Items this shard processed.
    pub items: u64,
    /// The shard's infinite-window heavy-hitter tracker.
    pub heavy_hitters: InfiniteHeavyHitters,
    /// The shard's pane state of the global sliding window, when
    /// configured.
    pub window: Option<PaneWindow>,
    /// Lifted operators, labelled, in registration order.
    pub lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
}

/// The worker loop: owned operators plus the shared query surface.
pub(crate) struct ShardWorker {
    shard: usize,
    epoch: u64,
    items: u64,
    heavy_hitters: InfiniteHeavyHitters,
    /// Pane state of the global sliding window, when configured.
    window: Option<PaneWindow>,
    /// Sealed views of the last few boundaries, oldest first (see
    /// [`WINDOW_HISTORY`]).
    window_history: VecDeque<Arc<SealedWindow>>,
    /// Seed for the per-minibatch histogram shared between the
    /// heavy-hitter tracker, the open window pane, and the Count-Min
    /// sketch.
    hist_seed: u64,
    /// Reusable histogram scratch + output: the per-batch histogram pass
    /// allocates nothing after warm-up.
    hist_scratch: HistScratch,
    hist: Vec<HistogramEntry>,
    /// Buffer recycling back to the producers (see [`BufferPool`]).
    pool: Arc<BufferPool>,
    /// Number of MG entries in the last published snapshot: the cheap
    /// membership-change test for immediate republication.
    published_entries: usize,
    /// True when the operator state has advanced past the published
    /// snapshot.
    dirty: bool,
    /// Minimum epochs between membership-triggered publications (see
    /// [`EngineConfig::membership_publish_interval`]).
    membership_interval: u64,
    /// Epoch of the last publication *of any reason* — the base of the
    /// membership rate limit (any publication resets the budget, since
    /// it already carried the membership change out).
    last_any_publish_epoch: u64,
    lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
    shared: Arc<ShardShared>,
    /// Cached view of the shard's ingest lane registry (refreshed when
    /// `lanes_gen` falls behind [`ShardShared::lane_generation`]).
    lanes: Vec<Arc<IngestLane>>,
    /// Registry generation the cache reflects.
    lanes_gen: u64,
    /// Observability recorders, when enabled (see the `obs` module).
    obs: Option<Arc<EngineObs>>,
    /// Fault-injection plan, when enabled (see `psfa_primitives::fault`).
    /// One `Option` branch per batch when unset.
    fault: Option<Arc<FaultPlan>>,
    /// Clock reading at the last snapshot publication (staleness base;
    /// `0` until the worker starts with observability enabled).
    last_publish_ns: u64,
    /// Epoch of the last snapshot publication (epoch-gap base).
    last_publish_epoch: u64,
}

impl ShardWorker {
    /// Builds a worker, either fresh from the config or resuming from a
    /// recovered [`ShardState`] (whose Count-Min sketch lives in
    /// [`ShardShared`], not here).
    pub(crate) fn new(
        shard: usize,
        config: &EngineConfig,
        lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
        shared: Arc<ShardShared>,
        pool: Arc<BufferPool>,
        recovered: Option<&ShardState>,
        obs: Option<Arc<EngineObs>>,
    ) -> Self {
        let (epoch, items, heavy_hitters, window) = match recovered {
            None => (
                0,
                0,
                InfiniteHeavyHitters::new(config.phi, config.epsilon),
                config
                    .window
                    .map(|_| PaneWindow::new(config.epsilon, config.window_panes)),
            ),
            Some(state) => (
                state.epoch,
                state.items,
                state.heavy_hitters.clone(),
                state.window.clone(),
            ),
        };
        // The tracker charges its summary-update work to the shard's shared
        // meter (decode drops meters, so recovered trackers re-attach here).
        let heavy_hitters = heavy_hitters.with_meter(shared.work.clone());
        let window_history = window
            .as_ref()
            .and_then(|w| w.sealed_window())
            .map(Arc::new)
            .into_iter()
            .collect();
        let published_entries = heavy_hitters.estimator().num_counters();
        Self {
            shard,
            epoch,
            items,
            heavy_hitters,
            window,
            window_history,
            hist_seed: 0x5eed_0000 ^ shard as u64,
            hist_scratch: HistScratch::new(),
            hist: Vec::new(),
            pool,
            published_entries,
            dirty: false,
            membership_interval: config.membership_publish_interval,
            last_any_publish_epoch: epoch,
            lifted,
            shared,
            lanes: Vec::new(),
            lanes_gen: 0,
            obs,
            fault: config.fault.clone(),
            last_publish_ns: 0,
            last_publish_epoch: epoch,
        }
    }

    /// Rebuilds a worker from the shard's last *published* snapshot — the
    /// supervisor's reseed path after a worker panic. What survives and
    /// what is lost is precise:
    ///
    /// * **Survives**: everything up to the snapshot's epoch — the MG
    ///   entries (rebuilt one-sided via
    ///   [`InfiniteHeavyHitters::from_entries`]), the sealed window
    ///   history, and the shard's Count-Min sketch (it lives in
    ///   [`ShardShared`] and was never torn down). Queued channel commands
    ///   and lane batches also survive: the supervisor keeps the receiver
    ///   and the lanes are registered in [`ShardShared`].
    /// * **Lost**: the effects of minibatches processed *after* the last
    ///   publication (at most `membership_publish_interval` batches plus
    ///   the in-flight one), the open (unsealed) window pane, and any
    ///   lifted operators' state (they are owned by the panicked worker
    ///   and cannot be reconstructed — the restarted shard runs without
    ///   them).
    ///
    /// The Count-Min sketch retains the post-snapshot adds, so its
    /// one-sided *over*estimate is unaffected; `live_epoch` rolls back to
    /// the snapshot's epoch so the lazy-publication protocol resumes
    /// consistently. The boundary fence numbering continues via
    /// [`PaneWindow::resume_after`].
    pub(crate) fn reseed(
        shard: usize,
        config: &EngineConfig,
        shared: Arc<ShardShared>,
        pool: Arc<BufferPool>,
        obs: Option<Arc<EngineObs>>,
    ) -> Self {
        let snapshot = shared.snapshot.get();
        let heavy_hitters = InfiniteHeavyHitters::from_entries(
            config.phi,
            config.epsilon,
            &snapshot.hh_entries,
            snapshot.stream_len,
        )
        .with_meter(shared.work.clone());
        let window = config.window.map(|_| {
            PaneWindow::resume_after(
                config.epsilon,
                config.window_panes,
                snapshot.latest_window_seq(),
            )
        });
        let window_history: VecDeque<Arc<SealedWindow>> =
            snapshot.windows.iter().cloned().collect();
        let published_entries = snapshot.hh_entries.len();
        // Roll the progress counter back to the snapshot: post-snapshot
        // batches are the documented restart loss, and leaving the old
        // value would make queries wait for a refresh that counts epochs
        // the reborn worker never saw.
        shared.live_epoch.store(snapshot.epoch, Ordering::Relaxed);
        Self {
            shard,
            epoch: snapshot.epoch,
            items: snapshot.stream_len,
            heavy_hitters,
            window,
            window_history,
            hist_seed: 0x5eed_0000 ^ shard as u64,
            hist_scratch: HistScratch::new(),
            hist: Vec::new(),
            pool,
            published_entries,
            dirty: false,
            membership_interval: config.membership_publish_interval,
            last_any_publish_epoch: snapshot.epoch,
            lifted: Vec::new(),
            shared,
            lanes: Vec::new(),
            lanes_gen: 0,
            obs,
            fault: config.fault.clone(),
            last_publish_ns: 0,
            last_publish_epoch: snapshot.epoch,
        }
    }

    /// Runs until [`ShardCommand::Shutdown`] (or every sender is dropped)
    /// and returns the final operator state. Takes the receiver by
    /// reference so a supervisor can keep the channel alive across a
    /// panic and hand the same queue to a reseeded worker.
    pub(crate) fn run(mut self, queue: &Receiver<ShardCommand>) -> ShardFinal {
        if let Some(obs) = self.obs.clone() {
            let now = obs.now_ns();
            self.last_publish_ns = now;
            obs.trace
                .push(now, TraceKind::WorkerStart, self.shard as u32, 0, 0);
        }
        loop {
            // Drain-then-block: once the control channel runs dry, serve
            // the ingest lanes, publish anything pending so idle shards
            // always expose an exact snapshot, then wait for the next
            // command.
            let command = match queue.try_recv() {
                Ok(command) => command,
                Err(TryRecvError::Empty) => {
                    self.refresh_lanes();
                    if self.poll_lanes_once() {
                        continue;
                    }
                    self.publish_if_dirty(PublishReason::Idle);
                    if self.lanes.is_empty() {
                        // No lanes ever registered: the pre-lane blocking
                        // wait, exact legacy idle semantics. A producer
                        // registering its first lane sends `Wake`.
                        match queue.recv() {
                            Ok(command) => command,
                            Err(_) => break,
                        }
                    } else {
                        match queue.recv_timeout(LANE_POLL) {
                            Ok(command) => command,
                            Err(RecvTimeoutError::Timeout) => continue,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            };
            match command {
                ShardCommand::Batch(minibatch) => self.ingest(minibatch),
                ShardCommand::Barrier { ack, gate, fanin } => {
                    // FIFO queue ⇒ everything enqueued before the barrier is
                    // already processed; the gated drain extends the same
                    // guarantee to the lanes. Publish so a drained caller
                    // reads current state. A failed send means the drainer
                    // gave up waiting, which is not the worker's problem.
                    self.drain_to_gate(gate, fanin);
                    self.publish_if_dirty(PublishReason::Drain);
                    let _ = ack.send(());
                }
                ShardCommand::Boundary { seq, gate, fanin } => {
                    self.drain_to_gate(gate, fanin);
                    self.seal_boundary(seq);
                }
                ShardCommand::Persist { reply, gate, fanin } => {
                    // Hand back a clone of the operator state as of this
                    // cut; encoding and disk I/O happen on the flusher
                    // thread, off the ingest hot path. The atomic Count-Min
                    // snapshot is exact here: the worker is the only writer
                    // and reads its own adds. A failed send means the
                    // persister gave up (e.g. the engine is being torn
                    // down) — not the worker's problem.
                    self.drain_to_gate(gate, fanin);
                    let _ = reply.send(ShardState {
                        shard: self.shard as u32,
                        epoch: self.epoch,
                        items: self.items,
                        heavy_hitters: self.heavy_hitters.clone(),
                        window: self.window.clone(),
                        count_min: self.shared.count_min.to_parallel(),
                    });
                }
                ShardCommand::Wake => {}
                ShardCommand::Shutdown => break,
            }
        }
        // Lane residue: the engine closes the ingest fence before sending
        // `Shutdown`, so every producer push has completed and is visible —
        // drain it all so accepted batches are never lost.
        self.drain_lanes_for_shutdown();
        // Outstanding handles keep answering queries after shutdown; leave
        // them the final state.
        self.publish_if_dirty(PublishReason::Drain);
        if let Some(obs) = &self.obs {
            obs.trace.push(
                obs.now_ns(),
                TraceKind::WorkerExit,
                self.shard as u32,
                self.items,
                0,
            );
        }
        ShardFinal {
            shard: self.shard,
            items: self.items,
            heavy_hitters: self.heavy_hitters,
            window: self.window,
            lifted: self.lifted,
        }
    }

    /// Seals the open window pane at boundary `seq` and publishes the new
    /// sealed window. `O(k/ε)` work per boundary — amortised over the
    /// `slide` items of the pane, not paid per item.
    fn seal_boundary(&mut self, seq: u64) {
        let Some(window) = &mut self.window else {
            return;
        };
        let sealed = window.seal();
        debug_assert_eq!(
            sealed.seq, seq,
            "shard {} sealed boundary {} when the fence cut {seq}",
            self.shard, sealed.seq
        );
        self.window_history.push_back(Arc::new(sealed));
        while self.window_history.len() > WINDOW_HISTORY {
            self.window_history.pop_front();
        }
        self.publish_snapshot(PublishReason::Boundary);
        // The seq counter last: a reader that sees the new boundary also
        // finds the sealed window in the published snapshot.
        self.shared.stats.window_seq.store(seq, Ordering::Release);
    }

    /// Re-reads the lane registry when it grew since the last snapshot.
    /// Returns whether the cache changed. One relaxed-ish atomic load on
    /// the no-change path — cheap enough to call once per channel-dry poll.
    fn refresh_lanes(&mut self) -> bool {
        let generation = self.shared.lane_generation();
        if generation == self.lanes_gen {
            return false;
        }
        self.lanes = self.shared.lanes_snapshot();
        self.lanes_gen = generation;
        true
    }

    /// One sweep over the cached lanes, ingesting every immediately
    /// poppable batch. Returns whether anything was processed.
    /// [`IngestLane::pop_batch`] structurally refuses to pass a due mark,
    /// so opportunistic polling can never run ahead of a pending cut.
    fn poll_lanes_once(&mut self) -> bool {
        let mut any = false;
        for i in 0..self.lanes.len() {
            loop {
                let batch = self.lanes[i].pop_batch();
                match batch {
                    Some(batch) => {
                        any = true;
                        self.ingest(batch);
                    }
                    None => break,
                }
            }
        }
        any
    }

    /// The lane side of a gated command: drains every marked lane exactly
    /// to its `gate` mark before the caller executes the cut.
    ///
    /// The cutter stamped `fanin` marks under the exclusive fence *before*
    /// sending the command, and all gated sends serialise under that
    /// fence, so per-lane mark order equals channel command order: when
    /// this command is at the head of the queue, every earlier gate's mark
    /// has already been consumed and exactly `fanin` front marks for
    /// `gate` exist at or before each marked lane's push position. Lanes
    /// registered after the cut carry no mark for `gate`
    /// ([`IngestLane::pop_mark_for`] refuses later gates) and are not
    /// waited on. `fanin == 0` — an engine without lane producers — is a
    /// no-op, the pre-lane fast path.
    fn drain_to_gate(&mut self, gate: u64, fanin: usize) {
        if fanin == 0 {
            return;
        }
        let mut parked = vec![false; self.lanes.len()];
        let mut seen = 0usize;
        while seen < fanin {
            let mut progressed = false;
            for (i, lane_parked) in parked.iter_mut().enumerate() {
                if *lane_parked {
                    continue;
                }
                while let Some(batch) = self.lanes[i].pop_batch() {
                    progressed = true;
                    self.ingest(batch);
                }
                if self.lanes[i].pop_mark_for(gate) {
                    *lane_parked = true;
                    seen += 1;
                    progressed = true;
                }
            }
            if seen >= fanin {
                break;
            }
            if !progressed {
                // A marked lane may have registered after our last cache
                // refresh (registration bumps the generation inside the
                // registry lock, so the cutter's fan-in always matches a
                // registry state we can observe). Refresh; otherwise yield
                // — the marks are already in place, we are only waiting on
                // our own pop visibility.
                if self.refresh_lanes() {
                    parked.resize(self.lanes.len(), false);
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Drains every lane to exhaustion at shutdown. The engine closes the
    /// ingest fence before sending [`ShardCommand::Shutdown`], so no push
    /// can start after this begins; any mark still pending belongs to a
    /// cut whose command was never sent (a cutter racing teardown) — with
    /// no command left to order against it is consumed unconditionally so
    /// the batches behind it are not stranded.
    fn drain_lanes_for_shutdown(&mut self) {
        self.refresh_lanes();
        loop {
            let mut progressed = false;
            for i in 0..self.lanes.len() {
                loop {
                    let batch = self.lanes[i].pop_batch();
                    match batch {
                        Some(batch) => {
                            progressed = true;
                            self.ingest(batch);
                        }
                        None => break,
                    }
                }
                if self.lanes[i].pop_mark_if_due().is_some() {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// The per-minibatch hot path: one histogram pass into reused scratch,
    /// shared by every summary; lock-free Count-Min adds; lazy publication;
    /// buffer recycling. Steady state (stable MG membership, warm
    /// buffers, no stale reader): **zero** heap allocations and **zero**
    /// lock acquisitions.
    fn ingest(&mut self, minibatch: Vec<u64>) {
        // Fault injection (tests only; one `Option` branch when unset):
        // a scheduled panic fires before any state mutates, so the loss
        // after recovery is exactly the documented set — this batch plus
        // the unpublished tail.
        if let Some(fault) = &self.fault {
            if fault.worker_panic_due(self.shard, self.epoch + 1) {
                panic!(
                    "injected worker panic (fault plan): shard {} at batch {}",
                    self.shard,
                    self.epoch + 1
                );
            }
        }
        // Telemetry stays relaxed and off the common path: with
        // observability disabled this reads no clock at all; enabled, it
        // costs two clock reads and one relaxed RMW per *batch*.
        let service_start = self.obs.as_ref().map(|obs| obs.now_ns());
        self.hist_seed = self
            .hist_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        build_hist_into(
            &minibatch,
            self.hist_seed,
            &mut self.hist_scratch,
            &mut self.hist,
        );
        let len = minibatch.len() as u64;
        let cutoff = self.heavy_hitters.process_histogram(&self.hist, len);
        if let Some(window) = &mut self.window {
            window.process_histogram(&self.hist, len);
        }
        self.shared.count_min.ingest_histogram(&self.hist);
        for (_, op) in &mut self.lifted {
            op.process(&minibatch);
        }
        self.epoch += 1;
        self.items += len;
        // Progress counters (relaxed; see the module-level ordering
        // contract), then the publication decision.
        self.shared.live_epoch.store(self.epoch, Ordering::Relaxed);
        self.shared
            .stats
            .items_processed
            .fetch_add(len, Ordering::Relaxed);
        self.shared
            .stats
            .batches_processed
            .fetch_add(1, Ordering::Relaxed);
        // Membership may change two ways: the entry count moved, or the
        // augment applied a non-zero cut-off (which can evict one item
        // while another enters, leaving the count unchanged). Either way,
        // publish at once so heavy-hitter churn is never deferred.
        let membership_changed =
            cutoff > 0 || self.heavy_hitters.estimator().num_counters() != self.published_entries;
        // Rate limit: under a uniform stream MG membership churns on every
        // batch, which would clone a full snapshot per batch. A change
        // inside the interval is *suppressed* — counted, then handed to
        // the lazy path (dirty/refresh), whose drain/idle/query-refresh
        // publications keep the bounded-staleness contract intact.
        let membership_due =
            self.epoch.saturating_sub(self.last_any_publish_epoch) >= self.membership_interval;
        if membership_changed && membership_due {
            self.publish_snapshot(PublishReason::Membership);
        } else {
            if membership_changed {
                if let Some(obs) = &self.obs {
                    obs.count_membership_suppressed();
                }
            }
            if self.shared.refresh.swap(false, Ordering::AcqRel) {
                self.publish_snapshot(PublishReason::QueryRefresh);
            } else {
                self.dirty = true;
            }
        }
        // Hand the buffer's capacity back to the producers.
        self.pool.give_back(self.shard, minibatch);
        if let Some(obs) = &self.obs {
            let start = service_start.unwrap_or(0);
            obs.batch_service(self.shard)
                .record(obs.now_ns().saturating_sub(start));
        }
    }

    fn publish_if_dirty(&mut self, reason: PublishReason) {
        if self.dirty {
            self.publish_snapshot(reason);
        }
    }

    fn publish_snapshot(&mut self, reason: PublishReason) {
        let hh_entries = self.heavy_hitters.estimator().tracked_items_sorted();
        self.published_entries = hh_entries.len();
        self.dirty = false;
        self.last_any_publish_epoch = self.epoch;
        self.shared.snapshot.set(Arc::new(ShardSnapshot {
            shard: self.shard,
            epoch: self.epoch,
            stream_len: self.items,
            hh_entries,
            windows: self.window_history.iter().cloned().collect(),
        }));
        // Stall accounting: how long (and how many epochs) the previous
        // snapshot stayed current, and why this publication happened. All
        // relaxed — the data-plane `Release` above is the visibility edge.
        if let Some(obs) = self.obs.clone() {
            let now = obs.now_ns();
            obs.publish_staleness
                .record(now.saturating_sub(self.last_publish_ns));
            obs.publish_epoch_gap
                .record(self.epoch.saturating_sub(self.last_publish_epoch));
            obs.count_republish(reason);
            obs.trace.push(
                now,
                TraceKind::EpochPublish,
                self.shard as u32,
                self.epoch,
                reason as u64,
            );
            self.last_publish_ns = now;
            self.last_publish_epoch = self.epoch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn test_config() -> EngineConfig {
        EngineConfig::with_shards(1)
            .heavy_hitters(0.1, 0.01)
            .sliding_window(10_000)
    }

    fn test_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(1, 4))
    }

    #[test]
    fn worker_processes_batches_and_publishes_snapshots() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(8);
        tx.send(ShardCommand::Batch(vec![7; 100])).unwrap();
        tx.send(ShardCommand::Batch(vec![7, 8, 9])).unwrap();
        tx.send(ShardCommand::Boundary {
            seq: 1,
            gate: 0,
            fanin: 0,
        })
        .unwrap();
        tx.send(ShardCommand::Batch(vec![9; 10])).unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        let fin = worker.run(&rx);
        assert_eq!(fin.items, 113);
        let snap = shared.load_snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.stream_len, 113);
        assert!(snap.estimate(7) >= 100, "dominant item must be tracked");
        assert!(
            snap.hh_entries.windows(2).all(|w| w[0].0 < w[1].0),
            "published entries must be item-sorted"
        );
        // The boundary sealed a window over everything before it; the
        // post-boundary batch sits in the (unpublished) open pane.
        assert_eq!(snap.latest_window_seq(), 1);
        let sealed = snap.window_at(1).expect("boundary 1 sealed");
        assert_eq!(sealed.items, 103);
        assert_eq!(sealed.estimate(7), 101);
        assert_eq!(shared.count_min.query(7), 101);
        assert_eq!(fin.heavy_hitters.estimator().stream_len(), 113);
        let window = fin.window.expect("window configured");
        assert_eq!(window.sealed_seq(), 1);
        assert_eq!(window.open_items(), 10);
    }

    #[test]
    fn barrier_acknowledges_after_prior_batches() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(4);
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(ShardCommand::Batch(vec![1; 50])).unwrap();
        tx.send(ShardCommand::Barrier {
            ack: ack_tx,
            gate: 0,
            fanin: 0,
        })
        .unwrap();
        let handle = std::thread::spawn(move || worker.run(&rx));
        ack_rx.recv().expect("barrier must be acknowledged");
        assert_eq!(shared.load_snapshot().stream_len, 50);
        drop(tx); // closing the queue ends the worker too
        handle.join().unwrap();
    }

    #[test]
    fn lazy_publication_republishes_on_a_stale_read() {
        // Same-membership batches defer publication; a stale read requests
        // a refresh that the next batch serves.
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(16);
        let handle = std::thread::spawn(move || worker.run(&rx));
        // First batch: membership changes (empty → {7}), published at once.
        // Keep the queue saturated enough that the worker cannot go idle
        // between our sends... simpler: send everything, then drain via
        // barrier, and assert the final snapshot is exact despite the
        // middle batches never forcing a membership change.
        for _ in 0..10 {
            tx.send(ShardCommand::Batch(vec![7; 100])).unwrap();
        }
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(ShardCommand::Barrier {
            ack: ack_tx,
            gate: 0,
            fanin: 0,
        })
        .unwrap();
        ack_rx.recv().unwrap();
        let snap = shared.load_snapshot();
        assert_eq!(snap.epoch, 10);
        assert_eq!(snap.estimate(7), 1000);
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn ingested_buffers_return_to_the_pool_lane() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let pool = test_pool();
        let worker = ShardWorker::new(0, &config, Vec::new(), shared, pool.clone(), None, None);
        let (tx, rx) = sync_channel(4);
        tx.send(ShardCommand::Batch(Vec::with_capacity(64)))
            .unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        worker.run(&rx);
        assert_eq!(pool.lane_depth(0), 1, "worker must recycle the buffer");
        assert!(pool.checkout()[0].capacity() >= 64);
    }

    #[test]
    fn lifted_operators_see_every_batch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)> = vec![(
            "counter".to_string(),
            Box::new(("counter".to_string(), move |b: &[u64]| {
                c.fetch_add(b.len() as u64, Ordering::Relaxed);
            })),
        )];
        let worker = ShardWorker::new(0, &config, lifted, shared, test_pool(), None, None);
        let (tx, rx) = sync_channel(4);
        tx.send(ShardCommand::Batch(vec![1, 2, 3])).unwrap();
        tx.send(ShardCommand::Batch(vec![4; 10])).unwrap();
        drop(tx);
        let fin = worker.run(&rx);
        assert_eq!(count.load(Ordering::Relaxed), 13);
        assert_eq!(fin.lifted.len(), 1);
        assert_eq!(fin.lifted[0].0, "counter");
    }

    #[test]
    fn gated_boundary_orders_lane_batches_exactly() {
        // Two batches pushed before the cut mark land in the sealed pane;
        // a batch pushed after it (but delivered to the worker at the same
        // time) must stay in the open pane.
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let lane = Arc::new(IngestLane::new(8));
        shared.register_lane(lane.clone());
        lane.push(vec![7; 100]);
        lane.push(vec![7, 8, 9]);
        let fanin = shared.mark_lanes(1);
        assert_eq!(fanin, 1);
        lane.push(vec![9; 10]); // post-cut
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(8);
        tx.send(ShardCommand::Boundary {
            seq: 1,
            gate: 1,
            fanin,
        })
        .unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        let fin = worker.run(&rx);
        // All three batches processed (shutdown drained the post-cut one).
        assert_eq!(fin.items, 113);
        let snap = shared.load_snapshot();
        assert_eq!(snap.stream_len, 113);
        let sealed = snap.window_at(1).expect("boundary 1 sealed");
        assert_eq!(sealed.items, 103, "pane holds exactly the pre-cut items");
        assert_eq!(sealed.estimate(7), 101);
        let window = fin.window.expect("window configured");
        assert_eq!(window.open_items(), 10, "post-cut batch stays open");
    }

    #[test]
    fn gated_barrier_drains_lane_batches_before_acknowledging() {
        // The barrier rides the channel while the pre-cut batch sits in a
        // lane the worker has never polled — the gated drain must pull it
        // in (and publish it) before the ack, or drain() would lie.
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let lane = Arc::new(IngestLane::new(4));
        shared.register_lane(lane.clone());
        lane.push(vec![3; 40]);
        let fanin = shared.mark_lanes(2);
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(4);
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(ShardCommand::Barrier {
            ack: ack_tx,
            gate: 2,
            fanin,
        })
        .unwrap();
        let handle = std::thread::spawn(move || worker.run(&rx));
        ack_rx.recv().expect("barrier must be acknowledged");
        assert_eq!(shared.load_snapshot().stream_len, 40);
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn worker_picks_up_lanes_registered_mid_run() {
        // A worker already parked on its channel must notice a lane
        // registered afterwards (via Wake) and ingest from it.
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(
            0,
            &config,
            Vec::new(),
            shared.clone(),
            test_pool(),
            None,
            None,
        );
        let (tx, rx) = sync_channel(4);
        let handle = std::thread::spawn(move || worker.run(&rx));
        // Give the worker a moment to park in the blocking recv.
        std::thread::sleep(Duration::from_millis(5));
        let lane = Arc::new(IngestLane::new(4));
        shared.register_lane(lane.clone());
        let _ = tx.try_send(ShardCommand::Wake);
        lane.push(vec![5; 25]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while shared.load_snapshot().stream_len < 25 {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never ingested from the late-registered lane"
            );
            std::thread::yield_now();
        }
        drop(tx);
        handle.join().unwrap();
    }
}
