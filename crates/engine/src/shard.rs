//! Shard workers: the ingestion side of the engine.
//!
//! Each shard owns its operator set outright — there is no locking on the
//! heavy-hitter or sliding-window update path. After every minibatch the
//! worker *publishes* an immutable [`ShardSnapshot`] (an `Arc` swapped under
//! a short write lock), so query handles read a consistent frozen view of
//! the shard at some epoch without ever blocking ingestion for more than a
//! pointer swap. The Count-Min sketch is kept behind a mutex instead of
//! being snapshotted: cloning `w × d` counters per minibatch would dwarf the
//! `O(1/ε)` cost of the summary snapshot, while point queries under the
//! mutex are `O(d)`.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};

use psfa_freq::{InfiniteHeavyHitters, PaneWindow, SealedWindow};
use psfa_primitives::build_hist;
use psfa_sketch::ParallelCountMin;
use psfa_store::ShardState;
use psfa_stream::MinibatchOperator;

use crate::config::EngineConfig;
use crate::metrics::ShardStats;

/// Sealed windows kept per shard snapshot: enough boundary history for a
/// query to find one boundary that *every* shard has already sealed even
/// while shards lag each other by a few queued markers.
const WINDOW_HISTORY: usize = 8;

/// Commands accepted by a shard worker, in queue order.
pub(crate) enum ShardCommand {
    /// One routed minibatch to ingest.
    Batch(Vec<u64>),
    /// Drain checkpoint: acknowledge once every earlier command is done.
    Barrier(SyncSender<()>),
    /// Window boundary `seq`: seal the open pane. The `WindowFence`
    /// enqueues this on every shard from inside an exclusive cut, so the
    /// marker sits at the same stream position on every shard's FIFO — the
    /// items between two markers (one pane) partition the global stream
    /// identically from every shard's point of view.
    Boundary(u64),
    /// Snapshot cut: reply with a clone of the full operator state. The
    /// persister enqueues this on every shard while holding the ingest
    /// fence exclusively, so the FIFO position — and therefore the state
    /// handed back — reflects exactly the minibatches accepted before the
    /// cut, on every shard.
    Persist(SyncSender<ShardState>),
    /// Finish queued work, then exit and hand back the operator state.
    Shutdown,
}

/// Immutable view of one shard's summaries at one epoch.
///
/// Snapshots freeze the *query surfaces* (Misra–Gries entries, stream
/// length, the sealed windows of recent boundaries) — `O(1/ε)` data — not
/// the raw operator state. `epoch` equals the number of minibatches the
/// shard had processed when the snapshot was published; it is strictly
/// increasing, so callers can detect progress between reads.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Owning shard index.
    pub shard: usize,
    /// Minibatches processed when this snapshot was taken.
    pub epoch: u64,
    /// Items processed by this shard (its `m_s`).
    pub stream_len: u64,
    /// Misra–Gries `(item, estimate)` entries of the infinite-window
    /// estimator; estimates are one-sided: `f − ε·m_s ≤ f̂ ≤ f`.
    pub hh_entries: Vec<(u64, u64)>,
    /// This shard's sealed views of the global sliding window at the most
    /// recent boundaries it has processed, oldest first (empty when the
    /// engine runs without a window or before the first boundary). Shared
    /// `Arc`s: sealed windows are immutable and only change at boundaries,
    /// so re-publishing a snapshot per batch costs pointer bumps.
    pub windows: Vec<Arc<SealedWindow>>,
}

impl ShardSnapshot {
    pub(crate) fn empty(shard: usize) -> Self {
        Self {
            shard,
            epoch: 0,
            stream_len: 0,
            hh_entries: Vec::new(),
            windows: Vec::new(),
        }
    }

    /// The Misra–Gries estimate for `item` (`0` when untracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.hh_entries
            .iter()
            .find(|&&(i, _)| i == item)
            .map_or(0, |&(_, e)| e)
    }

    /// The newest window boundary this shard has sealed (`0` before the
    /// first).
    pub fn latest_window_seq(&self) -> u64 {
        self.windows.last().map_or(0, |w| w.seq)
    }

    /// This shard's sealed window at boundary `seq`, if still retained.
    pub fn window_at(&self, seq: u64) -> Option<&Arc<SealedWindow>> {
        self.windows.iter().find(|w| w.seq == seq)
    }
}

/// State of one shard shared between producers, the worker, and queries.
pub(crate) struct ShardShared {
    pub stats: ShardStats,
    pub snapshot: RwLock<Arc<ShardSnapshot>>,
    pub count_min: Mutex<ParallelCountMin>,
}

impl ShardShared {
    /// Shared state for one shard. When `recovered` is given (crash
    /// recovery), the Count-Min sketch is taken from the persisted epoch and
    /// the *initial published snapshot* already reflects the recovered
    /// summaries — queries against a freshly recovered engine see the
    /// persisted state immediately, with no race against the worker's first
    /// batch.
    pub(crate) fn new(shard: usize, config: &EngineConfig, recovered: Option<&ShardState>) -> Self {
        let (snapshot, count_min) = match recovered {
            None => (
                ShardSnapshot::empty(shard),
                ParallelCountMin::new(config.cm_epsilon, config.cm_delta, config.cm_seed),
            ),
            Some(state) => (
                ShardSnapshot {
                    shard,
                    epoch: state.epoch,
                    stream_len: state.items,
                    hh_entries: state.heavy_hitters.estimator().tracked_items(),
                    windows: state
                        .window
                        .as_ref()
                        .and_then(|w| w.sealed_window())
                        .map(Arc::new)
                        .into_iter()
                        .collect(),
                },
                state.count_min.clone(),
            ),
        };
        let stats = ShardStats::default();
        stats
            .window_seq
            .store(snapshot.latest_window_seq(), Ordering::Release);
        Self {
            stats,
            snapshot: RwLock::new(Arc::new(snapshot)),
            count_min: Mutex::new(count_min),
        }
    }

    pub(crate) fn load_snapshot(&self) -> Arc<ShardSnapshot> {
        self.snapshot
            .read()
            .expect("shard snapshot lock poisoned")
            .clone()
    }
}

/// Final operator state a shard worker hands back at shutdown.
pub struct ShardFinal {
    /// Shard index.
    pub shard: usize,
    /// Items this shard processed.
    pub items: u64,
    /// The shard's infinite-window heavy-hitter tracker.
    pub heavy_hitters: InfiniteHeavyHitters,
    /// The shard's pane state of the global sliding window, when
    /// configured.
    pub window: Option<PaneWindow>,
    /// Lifted operators, labelled, in registration order.
    pub lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
}

/// The worker loop: owned operators plus the shared query surface.
pub(crate) struct ShardWorker {
    shard: usize,
    epoch: u64,
    items: u64,
    heavy_hitters: InfiniteHeavyHitters,
    /// Pane state of the global sliding window, when configured.
    window: Option<PaneWindow>,
    /// Sealed views of the last few boundaries, oldest first (see
    /// [`WINDOW_HISTORY`]).
    window_history: VecDeque<Arc<SealedWindow>>,
    /// Seed for the per-minibatch histogram shared between the
    /// heavy-hitter tracker and the open window pane.
    hist_seed: u64,
    lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
    shared: Arc<ShardShared>,
}

impl ShardWorker {
    /// Builds a worker, either fresh from the config or resuming from a
    /// recovered [`ShardState`] (whose Count-Min sketch lives in
    /// [`ShardShared`], not here).
    pub(crate) fn new(
        shard: usize,
        config: &EngineConfig,
        lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
        shared: Arc<ShardShared>,
        recovered: Option<&ShardState>,
    ) -> Self {
        let (epoch, items, heavy_hitters, window) = match recovered {
            None => (
                0,
                0,
                InfiniteHeavyHitters::new(config.phi, config.epsilon),
                config
                    .window
                    .map(|_| PaneWindow::new(config.epsilon, config.window_panes)),
            ),
            Some(state) => (
                state.epoch,
                state.items,
                state.heavy_hitters.clone(),
                state.window.clone(),
            ),
        };
        let window_history = window
            .as_ref()
            .and_then(|w| w.sealed_window())
            .map(Arc::new)
            .into_iter()
            .collect();
        Self {
            shard,
            epoch,
            items,
            heavy_hitters,
            window,
            window_history,
            hist_seed: 0x5eed_0000 ^ shard as u64,
            lifted,
            shared,
        }
    }

    /// Runs until [`ShardCommand::Shutdown`] (or every sender is dropped)
    /// and returns the final operator state.
    pub(crate) fn run(mut self, queue: Receiver<ShardCommand>) -> ShardFinal {
        while let Ok(command) = queue.recv() {
            match command {
                ShardCommand::Batch(minibatch) => self.ingest(&minibatch),
                ShardCommand::Barrier(ack) => {
                    // FIFO queue ⇒ everything enqueued before the barrier is
                    // already processed; a failed send means the drainer gave
                    // up waiting, which is not the worker's problem.
                    let _ = ack.send(());
                }
                ShardCommand::Boundary(seq) => self.seal_boundary(seq),
                ShardCommand::Persist(reply) => {
                    // Hand back a clone of the operator state as of this
                    // queue position; encoding and disk I/O happen on the
                    // flusher thread, off the ingest hot path. A failed send
                    // means the persister gave up (e.g. the engine is being
                    // torn down) — not the worker's problem.
                    let count_min = self
                        .shared
                        .count_min
                        .lock()
                        .expect("count-min lock poisoned")
                        .clone();
                    let _ = reply.send(ShardState {
                        shard: self.shard as u32,
                        epoch: self.epoch,
                        items: self.items,
                        heavy_hitters: self.heavy_hitters.clone(),
                        window: self.window.clone(),
                        count_min,
                    });
                }
                ShardCommand::Shutdown => break,
            }
        }
        ShardFinal {
            shard: self.shard,
            items: self.items,
            heavy_hitters: self.heavy_hitters,
            window: self.window,
            lifted: self.lifted,
        }
    }

    /// Seals the open window pane at boundary `seq` and publishes the new
    /// sealed window. `O(k/ε)` work per boundary — amortised over the
    /// `slide` items of the pane, not paid per item.
    fn seal_boundary(&mut self, seq: u64) {
        let Some(window) = &mut self.window else {
            return;
        };
        let sealed = window.seal();
        debug_assert_eq!(
            sealed.seq, seq,
            "shard {} sealed boundary {} when the fence cut {seq}",
            self.shard, sealed.seq
        );
        self.window_history.push_back(Arc::new(sealed));
        while self.window_history.len() > WINDOW_HISTORY {
            self.window_history.pop_front();
        }
        self.publish_snapshot();
        // The seq counter last: a reader that sees the new boundary also
        // finds the sealed window in the published snapshot.
        self.shared.stats.window_seq.store(seq, Ordering::Release);
    }

    fn ingest(&mut self, minibatch: &[u64]) {
        // One histogram pass shared by the heavy-hitter tracker and the
        // open window pane — the windowed engine pays `buildHist` once.
        self.hist_seed = self
            .hist_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        let hist = build_hist(minibatch, self.hist_seed);
        let len = minibatch.len() as u64;
        self.heavy_hitters.process_histogram(&hist, len);
        if let Some(window) = &mut self.window {
            window.process_histogram(&hist, len);
        }
        {
            let mut cm = self
                .shared
                .count_min
                .lock()
                .expect("count-min lock poisoned");
            cm.process_minibatch(minibatch);
        }
        for (_, op) in &mut self.lifted {
            op.process(minibatch);
        }
        self.epoch += 1;
        self.items += minibatch.len() as u64;
        self.publish_snapshot();
        // Stats last: queries that see the counts also find the snapshot.
        self.shared
            .stats
            .items_processed
            .fetch_add(minibatch.len() as u64, Ordering::AcqRel);
        self.shared
            .stats
            .batches_processed
            .fetch_add(1, Ordering::AcqRel);
    }

    fn publish_snapshot(&self) {
        let snapshot = Arc::new(ShardSnapshot {
            shard: self.shard,
            epoch: self.epoch,
            stream_len: self.items,
            hh_entries: self.heavy_hitters.estimator().tracked_items(),
            windows: self.window_history.iter().cloned().collect(),
        });
        *self
            .shared
            .snapshot
            .write()
            .expect("shard snapshot lock poisoned") = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn test_config() -> EngineConfig {
        EngineConfig::with_shards(1)
            .heavy_hitters(0.1, 0.01)
            .sliding_window(10_000)
    }

    #[test]
    fn worker_processes_batches_and_publishes_snapshots() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(0, &config, Vec::new(), shared.clone(), None);
        let (tx, rx) = sync_channel(8);
        tx.send(ShardCommand::Batch(vec![7; 100])).unwrap();
        tx.send(ShardCommand::Batch(vec![7, 8, 9])).unwrap();
        tx.send(ShardCommand::Boundary(1)).unwrap();
        tx.send(ShardCommand::Batch(vec![9; 10])).unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        let fin = worker.run(rx);
        assert_eq!(fin.items, 113);
        let snap = shared.load_snapshot();
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.stream_len, 113);
        assert!(snap.estimate(7) >= 100, "dominant item must be tracked");
        // The boundary sealed a window over everything before it; the
        // post-boundary batch sits in the (unpublished) open pane.
        assert_eq!(snap.latest_window_seq(), 1);
        let sealed = snap.window_at(1).expect("boundary 1 sealed");
        assert_eq!(sealed.items, 103);
        assert_eq!(sealed.estimate(7), 101);
        assert_eq!(shared.count_min.lock().unwrap().query(7), 101);
        assert_eq!(fin.heavy_hitters.estimator().stream_len(), 113);
        let window = fin.window.expect("window configured");
        assert_eq!(window.sealed_seq(), 1);
        assert_eq!(window.open_items(), 10);
    }

    #[test]
    fn barrier_acknowledges_after_prior_batches() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(0, &config, Vec::new(), shared.clone(), None);
        let (tx, rx) = sync_channel(4);
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(ShardCommand::Batch(vec![1; 50])).unwrap();
        tx.send(ShardCommand::Barrier(ack_tx)).unwrap();
        let handle = std::thread::spawn(move || worker.run(rx));
        ack_rx.recv().expect("barrier must be acknowledged");
        assert_eq!(shared.load_snapshot().stream_len, 50);
        drop(tx); // closing the queue ends the worker too
        handle.join().unwrap();
    }

    #[test]
    fn lifted_operators_see_every_batch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)> = vec![(
            "counter".to_string(),
            Box::new(("counter".to_string(), move |b: &[u64]| {
                c.fetch_add(b.len() as u64, Ordering::Relaxed);
            })),
        )];
        let worker = ShardWorker::new(0, &config, lifted, shared, None);
        let (tx, rx) = sync_channel(4);
        tx.send(ShardCommand::Batch(vec![1, 2, 3])).unwrap();
        tx.send(ShardCommand::Batch(vec![4; 10])).unwrap();
        drop(tx);
        let fin = worker.run(rx);
        assert_eq!(count.load(Ordering::Relaxed), 13);
        assert_eq!(fin.lifted.len(), 1);
        assert_eq!(fin.lifted[0].0, "counter");
    }
}
