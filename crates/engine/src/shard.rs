//! Shard workers: the ingestion side of the engine.
//!
//! Each shard owns its operator set outright — there is no locking on the
//! heavy-hitter or sliding-window update path. After every minibatch the
//! worker *publishes* an immutable [`ShardSnapshot`] (an `Arc` swapped under
//! a short write lock), so query handles read a consistent frozen view of
//! the shard at some epoch without ever blocking ingestion for more than a
//! pointer swap. The Count-Min sketch is kept behind a mutex instead of
//! being snapshotted: cloning `w × d` counters per minibatch would dwarf the
//! `O(1/ε)` cost of the summary snapshot, while point queries under the
//! mutex are `O(d)`.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};

use psfa_freq::{InfiniteHeavyHitters, SlidingFreqWorkEfficient, SlidingFrequencyEstimator};
use psfa_sketch::ParallelCountMin;
use psfa_store::ShardState;
use psfa_stream::MinibatchOperator;

use crate::config::EngineConfig;
use crate::metrics::ShardStats;

/// Commands accepted by a shard worker, in queue order.
pub(crate) enum ShardCommand {
    /// One routed minibatch to ingest.
    Batch(Vec<u64>),
    /// Drain checkpoint: acknowledge once every earlier command is done.
    Barrier(SyncSender<()>),
    /// Snapshot cut: reply with a clone of the full operator state. The
    /// persister enqueues this on every shard while holding the ingest
    /// fence exclusively, so the FIFO position — and therefore the state
    /// handed back — reflects exactly the minibatches accepted before the
    /// cut, on every shard.
    Persist(SyncSender<ShardState>),
    /// Finish queued work, then exit and hand back the operator state.
    Shutdown,
}

/// Immutable view of one shard's summaries at one epoch.
///
/// Snapshots freeze the *query surfaces* (Misra–Gries entries, stream
/// length, sliding-window tracked items) — `O(1/ε)` data — not the raw
/// operator state. `epoch` equals the number of minibatches the shard had
/// processed when the snapshot was published; it is strictly increasing, so
/// callers can detect progress between reads.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Owning shard index.
    pub shard: usize,
    /// Minibatches processed when this snapshot was taken.
    pub epoch: u64,
    /// Items processed by this shard (its `m_s`).
    pub stream_len: u64,
    /// Misra–Gries `(item, estimate)` entries of the infinite-window
    /// estimator; estimates are one-sided: `f − ε·m_s ≤ f̂ ≤ f`.
    pub hh_entries: Vec<(u64, u64)>,
    /// Tracked `(item, estimate)` pairs of the sliding-window estimator
    /// (empty when the engine runs without a window).
    pub sliding_entries: Vec<(u64, u64)>,
}

impl ShardSnapshot {
    pub(crate) fn empty(shard: usize) -> Self {
        Self {
            shard,
            epoch: 0,
            stream_len: 0,
            hh_entries: Vec::new(),
            sliding_entries: Vec::new(),
        }
    }

    /// The Misra–Gries estimate for `item` (`0` when untracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.hh_entries
            .iter()
            .find(|&&(i, _)| i == item)
            .map_or(0, |&(_, e)| e)
    }

    /// The sliding-window estimate for `item` (`0` when untracked).
    pub fn sliding_estimate(&self, item: u64) -> u64 {
        self.sliding_entries
            .iter()
            .find(|&&(i, _)| i == item)
            .map_or(0, |&(_, e)| e)
    }
}

/// State of one shard shared between producers, the worker, and queries.
pub(crate) struct ShardShared {
    pub stats: ShardStats,
    pub snapshot: RwLock<Arc<ShardSnapshot>>,
    pub count_min: Mutex<ParallelCountMin>,
}

impl ShardShared {
    /// Shared state for one shard. When `recovered` is given (crash
    /// recovery), the Count-Min sketch is taken from the persisted epoch and
    /// the *initial published snapshot* already reflects the recovered
    /// summaries — queries against a freshly recovered engine see the
    /// persisted state immediately, with no race against the worker's first
    /// batch.
    pub(crate) fn new(shard: usize, config: &EngineConfig, recovered: Option<&ShardState>) -> Self {
        let (snapshot, count_min) = match recovered {
            None => (
                ShardSnapshot::empty(shard),
                ParallelCountMin::new(config.cm_epsilon, config.cm_delta, config.cm_seed),
            ),
            Some(state) => (
                ShardSnapshot {
                    shard,
                    epoch: state.epoch,
                    stream_len: state.items,
                    hh_entries: state.heavy_hitters.estimator().tracked_items(),
                    sliding_entries: state
                        .sliding
                        .as_ref()
                        .map(|s| s.tracked_items())
                        .unwrap_or_default(),
                },
                state.count_min.clone(),
            ),
        };
        Self {
            stats: ShardStats::default(),
            snapshot: RwLock::new(Arc::new(snapshot)),
            count_min: Mutex::new(count_min),
        }
    }

    pub(crate) fn load_snapshot(&self) -> Arc<ShardSnapshot> {
        self.snapshot
            .read()
            .expect("shard snapshot lock poisoned")
            .clone()
    }
}

/// Final operator state a shard worker hands back at shutdown.
pub struct ShardFinal {
    /// Shard index.
    pub shard: usize,
    /// Items this shard processed.
    pub items: u64,
    /// The shard's infinite-window heavy-hitter tracker.
    pub heavy_hitters: InfiniteHeavyHitters,
    /// The shard's sliding-window estimator, when configured.
    pub sliding: Option<SlidingFreqWorkEfficient>,
    /// Lifted operators, labelled, in registration order.
    pub lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
}

/// The worker loop: owned operators plus the shared query surface.
pub(crate) struct ShardWorker {
    shard: usize,
    epoch: u64,
    items: u64,
    heavy_hitters: InfiniteHeavyHitters,
    sliding: Option<SlidingFreqWorkEfficient>,
    lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
    shared: Arc<ShardShared>,
}

impl ShardWorker {
    /// Builds a worker, either fresh from the config or resuming from a
    /// recovered [`ShardState`] (whose Count-Min sketch lives in
    /// [`ShardShared`], not here).
    pub(crate) fn new(
        shard: usize,
        config: &EngineConfig,
        lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)>,
        shared: Arc<ShardShared>,
        recovered: Option<&ShardState>,
    ) -> Self {
        let (epoch, items, heavy_hitters, sliding) = match recovered {
            None => (
                0,
                0,
                InfiniteHeavyHitters::new(config.phi, config.epsilon),
                config
                    .window
                    .map(|n| SlidingFreqWorkEfficient::new(config.epsilon, n)),
            ),
            Some(state) => (
                state.epoch,
                state.items,
                state.heavy_hitters.clone(),
                state.sliding.clone(),
            ),
        };
        Self {
            shard,
            epoch,
            items,
            heavy_hitters,
            sliding,
            lifted,
            shared,
        }
    }

    /// Runs until [`ShardCommand::Shutdown`] (or every sender is dropped)
    /// and returns the final operator state.
    pub(crate) fn run(mut self, queue: Receiver<ShardCommand>) -> ShardFinal {
        while let Ok(command) = queue.recv() {
            match command {
                ShardCommand::Batch(minibatch) => self.ingest(&minibatch),
                ShardCommand::Barrier(ack) => {
                    // FIFO queue ⇒ everything enqueued before the barrier is
                    // already processed; a failed send means the drainer gave
                    // up waiting, which is not the worker's problem.
                    let _ = ack.send(());
                }
                ShardCommand::Persist(reply) => {
                    // Hand back a clone of the operator state as of this
                    // queue position; encoding and disk I/O happen on the
                    // flusher thread, off the ingest hot path. A failed send
                    // means the persister gave up (e.g. the engine is being
                    // torn down) — not the worker's problem.
                    let count_min = self
                        .shared
                        .count_min
                        .lock()
                        .expect("count-min lock poisoned")
                        .clone();
                    let _ = reply.send(ShardState {
                        shard: self.shard as u32,
                        epoch: self.epoch,
                        items: self.items,
                        heavy_hitters: self.heavy_hitters.clone(),
                        sliding: self.sliding.clone(),
                        count_min,
                    });
                }
                ShardCommand::Shutdown => break,
            }
        }
        ShardFinal {
            shard: self.shard,
            items: self.items,
            heavy_hitters: self.heavy_hitters,
            sliding: self.sliding,
            lifted: self.lifted,
        }
    }

    fn ingest(&mut self, minibatch: &[u64]) {
        self.heavy_hitters.process_minibatch(minibatch);
        if let Some(sliding) = &mut self.sliding {
            sliding.process_minibatch(minibatch);
        }
        {
            let mut cm = self
                .shared
                .count_min
                .lock()
                .expect("count-min lock poisoned");
            cm.process_minibatch(minibatch);
        }
        for (_, op) in &mut self.lifted {
            op.process(minibatch);
        }
        self.epoch += 1;
        self.items += minibatch.len() as u64;
        self.publish_snapshot();
        // Stats last: queries that see the counts also find the snapshot.
        self.shared
            .stats
            .items_processed
            .fetch_add(minibatch.len() as u64, Ordering::AcqRel);
        self.shared
            .stats
            .batches_processed
            .fetch_add(1, Ordering::AcqRel);
    }

    fn publish_snapshot(&self) {
        let snapshot = Arc::new(ShardSnapshot {
            shard: self.shard,
            epoch: self.epoch,
            stream_len: self.items,
            hh_entries: self.heavy_hitters.estimator().tracked_items(),
            sliding_entries: self
                .sliding
                .as_ref()
                .map(|s| s.tracked_items())
                .unwrap_or_default(),
        });
        *self
            .shared
            .snapshot
            .write()
            .expect("shard snapshot lock poisoned") = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn test_config() -> EngineConfig {
        EngineConfig::with_shards(1)
            .heavy_hitters(0.1, 0.01)
            .sliding_window(10_000)
    }

    #[test]
    fn worker_processes_batches_and_publishes_snapshots() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(0, &config, Vec::new(), shared.clone(), None);
        let (tx, rx) = sync_channel(4);
        tx.send(ShardCommand::Batch(vec![7; 100])).unwrap();
        tx.send(ShardCommand::Batch(vec![7, 8, 9])).unwrap();
        tx.send(ShardCommand::Shutdown).unwrap();
        let fin = worker.run(rx);
        assert_eq!(fin.items, 103);
        let snap = shared.load_snapshot();
        assert_eq!(snap.epoch, 2);
        assert_eq!(snap.stream_len, 103);
        assert!(snap.estimate(7) >= 100, "dominant item must be tracked");
        assert!(snap.sliding_estimate(7) > 0);
        assert_eq!(shared.count_min.lock().unwrap().query(7), 101);
        assert_eq!(fin.heavy_hitters.estimator().stream_len(), 103);
    }

    #[test]
    fn barrier_acknowledges_after_prior_batches() {
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let worker = ShardWorker::new(0, &config, Vec::new(), shared.clone(), None);
        let (tx, rx) = sync_channel(4);
        let (ack_tx, ack_rx) = sync_channel(1);
        tx.send(ShardCommand::Batch(vec![1; 50])).unwrap();
        tx.send(ShardCommand::Barrier(ack_tx)).unwrap();
        let handle = std::thread::spawn(move || worker.run(rx));
        ack_rx.recv().expect("barrier must be acknowledged");
        assert_eq!(shared.load_snapshot().stream_len, 50);
        drop(tx); // closing the queue ends the worker too
        handle.join().unwrap();
    }

    #[test]
    fn lifted_operators_see_every_batch() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let config = test_config();
        let shared = Arc::new(ShardShared::new(0, &config, None));
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        let lifted: Vec<(String, Box<dyn MinibatchOperator + Send>)> = vec![(
            "counter".to_string(),
            Box::new(("counter".to_string(), move |b: &[u64]| {
                c.fetch_add(b.len() as u64, Ordering::Relaxed);
            })),
        )];
        let worker = ShardWorker::new(0, &config, lifted, shared, None);
        let (tx, rx) = sync_channel(4);
        tx.send(ShardCommand::Batch(vec![1, 2, 3])).unwrap();
        tx.send(ShardCommand::Batch(vec![4; 10])).unwrap();
        drop(tx);
        let fin = worker.run(rx);
        assert_eq!(count.load(Ordering::Relaxed), 13);
        assert_eq!(fin.lifted.len(), 1);
        assert_eq!(fin.lifted[0].0, "counter");
    }
}
