//! Shard and queue metrics.
//!
//! Every shard updates a set of atomic counters on the hot path (enqueue and
//! batch completion); [`EngineMetrics`] is a point-in-time copy assembled by
//! [`crate::EngineHandle::metrics`]. Counters are monotone, so queue depths
//! derived from them are exact up to in-flight updates.
//!
//! Counter increments are **relaxed** — they are progress hints, and the
//! data a reader can act on is fenced by the snapshot publication instead
//! (see the ordering contract in `shard.rs`). Reads stay `Acquire` so a
//! metrics snapshot observes a consistent-enough recent view (notably:
//! `window_seq` is `Release`-stored after the sealed window is published,
//! so seeing a boundary here implies the window is queryable).

use std::sync::atomic::{AtomicU64, Ordering};

use psfa_obs::ObsReport;
use psfa_stream::PoolCounters;

/// Supervision state of one shard's worker, surfaced in
/// [`ShardMetrics::health`] and consulted by the degraded-query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardHealth {
    /// The worker is running normally.
    #[default]
    Live,
    /// The worker panicked; the supervisor is restarting it. Queries
    /// answer from the shard's last published snapshot meanwhile.
    Quarantined,
    /// The worker exhausted its restart budget
    /// ([`crate::EngineConfig::worker_restart_limit`]); the shard answers
    /// from its last published snapshot permanently and is reported in
    /// the typed shutdown/drain errors.
    Dead,
}

impl ShardHealth {
    pub(crate) fn code(self) -> u64 {
        match self {
            ShardHealth::Live => 0,
            ShardHealth::Quarantined => 1,
            ShardHealth::Dead => 2,
        }
    }

    pub(crate) fn from_code(code: u64) -> Self {
        match code {
            1 => ShardHealth::Quarantined,
            2 => ShardHealth::Dead,
            _ => ShardHealth::Live,
        }
    }

    /// `true` unless the worker is live (queries over this shard answer
    /// from its last published snapshot).
    pub fn is_stale(self) -> bool {
        self != ShardHealth::Live
    }
}

/// Live atomic counters of one shard (shared between producers, the shard
/// worker, and query handles).
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub items_enqueued: AtomicU64,
    pub items_processed: AtomicU64,
    pub batches_enqueued: AtomicU64,
    pub batches_processed: AtomicU64,
    /// Newest window boundary this shard has sealed (`0` before the first
    /// or without a window).
    pub window_seq: AtomicU64,
    /// [`ShardHealth`] code, written by the supervisor (`Release`) and
    /// read by queries/metrics (`Acquire`), so observing `Quarantined`
    /// happens-after the panicked worker stopped touching shard state.
    pub health: AtomicU64,
    /// Worker restarts performed by the supervisor for this shard.
    pub restarts: AtomicU64,
}

impl ShardStats {
    pub(crate) fn snapshot(&self, shard: usize) -> ShardMetrics {
        // Read processed before enqueued so depth never goes negative.
        let batches_processed = self.batches_processed.load(Ordering::Acquire);
        let items_processed = self.items_processed.load(Ordering::Acquire);
        let batches_enqueued = self.batches_enqueued.load(Ordering::Acquire);
        let items_enqueued = self.items_enqueued.load(Ordering::Acquire);
        let window_seq = self.window_seq.load(Ordering::Acquire);
        ShardMetrics {
            shard,
            items_enqueued,
            items_processed,
            batches_enqueued,
            batches_processed,
            queue_depth: batches_enqueued.saturating_sub(batches_processed),
            window_seq,
            health: ShardHealth::from_code(self.health.load(Ordering::Acquire)),
            restarts: self.restarts.load(Ordering::Acquire),
        }
    }

    pub(crate) fn health(&self) -> ShardHealth {
        ShardHealth::from_code(self.health.load(Ordering::Acquire))
    }

    pub(crate) fn set_health(&self, health: ShardHealth) {
        self.health.store(health.code(), Ordering::Release);
    }
}

/// Point-in-time metrics of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Items handed to this shard's queue so far.
    pub items_enqueued: u64,
    /// Items the worker has finished processing.
    pub items_processed: u64,
    /// Minibatches handed to this shard's queue so far.
    pub batches_enqueued: u64,
    /// Minibatches the worker has finished processing.
    pub batches_processed: u64,
    /// Minibatches currently queued or in flight.
    pub queue_depth: u64,
    /// Newest window boundary this shard has sealed (`0` before the first
    /// boundary or without a window).
    pub window_seq: u64,
    /// Supervision state of the shard's worker.
    pub health: ShardHealth,
    /// Times the supervisor has restarted this shard's worker.
    pub restarts: u64,
}

/// Point-in-time metrics of the global sliding window's fence (present
/// only when `EngineConfig::window` is configured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowMetrics {
    /// Window slide in items (`n_W / panes`): one boundary is cut per
    /// `slide` accepted items.
    pub slide: u64,
    /// Number of panes the window is divided into.
    pub panes: u32,
    /// Window boundaries cut by the fence so far.
    pub boundaries: u64,
    /// How many boundaries the slowest shard's sealed window trails the
    /// fence (markers still queued behind batches). `0` when drained.
    pub max_shard_lag: u64,
}

/// Point-in-time metrics of the persistence subsystem (present only when
/// the engine was configured with `EngineConfig::persistence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Epochs persisted by this process (flusher cuts + `snapshot_now`).
    pub epochs_persisted: u64,
    /// Bytes appended to the segment log by this process.
    pub bytes_written: u64,
    /// Newest epoch in the store (`0` when nothing is persisted yet); this
    /// includes epochs recovered from a previous process.
    pub last_epoch: u64,
    /// Segment files currently on disk.
    pub segments: u64,
    /// Background flushes that failed (I/O trouble); the flusher skips the
    /// interval and keeps going.
    pub flush_failures: u64,
}

/// Point-in-time metrics of the whole engine.
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Name of the active routing policy.
    pub router: &'static str,
    /// Keys the router currently splits across shards (empty under static
    /// hash routing), sorted ascending.
    pub hot_keys: Vec<u64>,
    /// Window-fence metrics, when a global sliding window is configured.
    pub window: Option<WindowMetrics>,
    /// Persistence metrics, when a snapshot store is attached.
    pub store: Option<StoreMetrics>,
    /// Sub-batch [`psfa_stream::BufferPool`] counters: a rising `misses`
    /// rate means producers outrun the recycle lanes and fall back to heap
    /// allocation (see the pool docs for sizing).
    pub pool: PoolCounters,
    /// Abstract work units charged by each shard's estimator (the E8
    /// work-optimality meter; see `psfa_primitives::WorkMeter` for
    /// overflow/reset semantics), in shard order.
    pub work_units: Vec<u64>,
    /// Full latency/staleness report, when the engine was configured with
    /// [`crate::ObsConfig`].
    pub obs: Option<ObsReport>,
}

impl EngineMetrics {
    /// Total items processed across shards.
    pub fn items_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.items_processed).sum()
    }

    /// Total items enqueued across shards.
    pub fn items_enqueued(&self) -> u64 {
        self.shards.iter().map(|s| s.items_enqueued).sum()
    }

    /// Total minibatches currently queued or in flight.
    pub fn queue_depth(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Shards whose workers are not live (quarantined or dead), in shard
    /// order. Queries over these shards answer from their last published
    /// snapshot (see the `Degraded` annotation on the `*_checked`
    /// queries).
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.health.is_stale())
            .map(|s| s.shard)
            .collect()
    }

    /// Total worker restarts performed by the shard supervisors.
    pub fn worker_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Total abstract work units charged across shards (wraps with the
    /// underlying meters; see `psfa_primitives::WorkMeter`).
    pub fn total_work_units(&self) -> u64 {
        self.work_units.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Largest per-shard share of processed items (1/shards = perfectly
    /// balanced); `None` before any item is processed.
    pub fn max_shard_share(&self) -> Option<f64> {
        let total = self.items_processed();
        if total == 0 {
            return None;
        }
        self.shards
            .iter()
            .map(|s| s.items_processed as f64 / total as f64)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Load imbalance across shards: the busiest shard's processed items
    /// over the per-shard mean (`1.0` = perfectly balanced, `shards` = all
    /// load on one shard); `None` before any item is processed.
    ///
    /// This is the quantity skew-aware routing exists to shrink — the
    /// engine's throughput under backpressure is bounded by the busiest
    /// shard, i.e. by `imbalance × (m / shards)` items on one worker.
    pub fn load_imbalance(&self) -> Option<f64> {
        self.max_shard_share()
            .map(|share| share * self.shards.len() as f64)
    }

    /// Renders the metrics as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:>14} {:>14} {:>10} {:>10} {:>8}\n",
            "shard", "items in", "items done", "batches", "done", "queued"
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "{:<6} {:>14} {:>14} {:>10} {:>10} {:>8}\n",
                s.shard,
                s.items_enqueued,
                s.items_processed,
                s.batches_enqueued,
                s.batches_processed,
                s.queue_depth
            ));
        }
        out.push_str(&format!(
            "router {} | hot keys {} | load imbalance (max/mean) {}\n",
            self.router,
            self.hot_keys.len(),
            self.load_imbalance()
                .map_or_else(|| "n/a".to_string(), |x| format!("{x:.3}")),
        ));
        let stale = self.quarantined_shards();
        if !stale.is_empty() || self.worker_restarts() > 0 {
            out.push_str(&format!(
                "supervision: {} worker restarts | stale shards {stale:?}\n",
                self.worker_restarts(),
            ));
        }
        if let Some(window) = &self.window {
            out.push_str(&format!(
                "window: slide {} x {} panes | {} boundaries cut | max shard lag {}\n",
                window.slide, window.panes, window.boundaries, window.max_shard_lag,
            ));
        }
        if let Some(store) = &self.store {
            out.push_str(&format!(
                "store: epoch {} | {} epochs persisted | {} KiB | {} segments | {} failures\n",
                store.last_epoch,
                store.epochs_persisted,
                store.bytes_written / 1024,
                store.segments,
                store.flush_failures,
            ));
        }
        out.push_str(&format!(
            "pool: {} hits | {} misses | {} drops | work units {}\n",
            self.pool.hits,
            self.pool.misses,
            self.pool.drops,
            self.total_work_units(),
        ));
        if let Some(obs) = &self.obs {
            out.push_str(&obs.to_table());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_computes_queue_depth() {
        let stats = ShardStats::default();
        stats.batches_enqueued.store(7, Ordering::Release);
        stats.batches_processed.store(4, Ordering::Release);
        stats.items_enqueued.store(700, Ordering::Release);
        stats.items_processed.store(400, Ordering::Release);
        let m = stats.snapshot(2);
        assert_eq!(m.shard, 2);
        assert_eq!(m.queue_depth, 3);
    }

    #[test]
    fn engine_metrics_aggregate() {
        let shards = vec![
            ShardMetrics {
                shard: 0,
                items_enqueued: 100,
                items_processed: 90,
                batches_enqueued: 10,
                batches_processed: 9,
                queue_depth: 1,
                window_seq: 4,
                health: ShardHealth::Live,
                restarts: 0,
            },
            ShardMetrics {
                shard: 1,
                items_enqueued: 50,
                items_processed: 30,
                batches_enqueued: 5,
                batches_processed: 3,
                queue_depth: 2,
                window_seq: 3,
                health: ShardHealth::Quarantined,
                restarts: 1,
            },
        ];
        let m = EngineMetrics {
            shards,
            router: "hash",
            hot_keys: Vec::new(),
            window: Some(WindowMetrics {
                slide: 25,
                panes: 4,
                boundaries: 4,
                max_shard_lag: 1,
            }),
            store: None,
            pool: PoolCounters {
                hits: 12,
                misses: 3,
                drops: 1,
            },
            work_units: vec![200, 100],
            obs: None,
        };
        assert_eq!(m.items_processed(), 120);
        assert_eq!(m.total_work_units(), 300);
        assert_eq!(m.items_enqueued(), 150);
        assert_eq!(m.queue_depth(), 3);
        assert!((m.max_shard_share().unwrap() - 0.75).abs() < 1e-12);
        // max = 90, mean = 60 ⇒ imbalance 1.5.
        assert!((m.load_imbalance().unwrap() - 1.5).abs() < 1e-12);
        let table = m.to_table();
        assert!(table.contains("queued"));
        assert!(table.contains("router hash"));
        // The fix for the omitted window-fence stats: boundary count and
        // shard lag must be visible in the rendered table.
        assert!(table.contains("4 boundaries cut"));
        assert!(table.contains("max shard lag 1"));
        assert!(table.contains("slide 25 x 4 panes"));
        assert!(table.contains("3 misses"));
        assert!(table.contains("work units 300"));
        assert_eq!(m.quarantined_shards(), vec![1]);
        assert_eq!(m.worker_restarts(), 1);
        assert!(table.contains("stale shards [1]"));
    }

    #[test]
    fn empty_engine_has_no_share() {
        let m = EngineMetrics {
            shards: Vec::new(),
            router: "hash",
            hot_keys: Vec::new(),
            window: None,
            store: None,
            pool: PoolCounters::default(),
            work_units: Vec::new(),
            obs: None,
        };
        assert_eq!(m.items_processed(), 0);
        assert!(m.max_shard_share().is_none());
        assert!(m.load_imbalance().is_none());
        assert!(!m.to_table().contains("boundaries cut"));
    }
}
