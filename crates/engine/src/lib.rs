//! # psfa-engine
//!
//! A multi-threaded, sharded ingestion engine over the PSFA aggregates:
//! the serving layer that turns the paper's single-summary minibatch
//! algorithms into a system that ingests concurrent traffic and answers
//! queries *while ingestion runs*.
//!
//! ```text
//!  producers (any thread, cloneable EngineHandle)
//!      │  ingest(&[u64])
//!      ▼
//!  hash router (psfa_stream::shard_of — each key owned by one shard)
//!      │  bounded sync channels (backpressure when full)
//!      ▼
//!  shard workers 0..N   each owns: InfiniteHeavyHitters   (φ, ε)
//!      │                           SlidingFreqWorkEfficient (optional)
//!      │                           ParallelCountMin       (shared seed)
//!      │                           lifted MinibatchOperators
//!      ▼
//!  per-shard epoch snapshots  ──►  EngineHandle queries
//!      (Arc swap per batch)        estimate / heavy_hitters / cm_estimate
//! ```
//!
//! ## Why sharding preserves the paper's guarantees
//!
//! The router assigns every key to exactly one shard
//! ([`psfa_stream::shard_of`] is a pure function of the key), so per-shard
//! summaries partition the key space instead of overlapping:
//!
//! * A **point query** is answered entirely by the owning shard. Its
//!   Misra–Gries estimate satisfies `f − ε·m_s ≤ f̂ ≤ f` for the shard's
//!   substream length `m_s ≤ m`, which implies the global one-sided bound
//!   `f − ε·m ≤ f̂ ≤ f`.
//! * A **heavy-hitter query** takes the union of per-shard summary entries
//!   against the global threshold `(φ − ε)·m`: every item with `f ≥ φm` is
//!   kept (its estimate is at least `f − ε·m_s ≥ (φ − ε)m`), and nothing
//!   with `f < (φ − ε)m` survives (estimates never overestimate). These are
//!   exactly the guarantees of the single-summary algorithm (Theorem 5.2 and
//!   the Section 5 reduction).
//! * The per-shard **Count-Min** sketches share one hash seed, so they are
//!   counter-wise mergeable ([`psfa_sketch::CountMinSketch::merge`]) into a
//!   sketch of the full stream; single-shard point queries are already
//!   global upper bounds with error `ε_cm · m_s`.
//!
//! This is the concurrent-ADT architecture of Gulisano et al. (producers
//! decoupled from aggregators by explicit in-flight state) combined with the
//! query/parallelism split of QPOPSS (queries run against published epochs,
//! never against half-updated operator state).
//!
//! ## Consistency
//!
//! Each shard publishes an immutable [`ShardSnapshot`] after every
//! minibatch; queries read the latest snapshots without stalling ingestion.
//! Cross-shard queries therefore observe a *recent prefix per shard* — the
//! natural consistency of a discretized-stream system between minibatches —
//! with epochs exposed via [`EngineHandle::epochs`] for callers that need to
//! wait for progress ([`EngineHandle::drain`] gives a full barrier).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod engine;
mod metrics;
mod operator;
mod shard;

pub use config::EngineConfig;
pub use engine::{Engine, EngineBuilder, EngineClosed, EngineHandle, EngineReport};
pub use metrics::{EngineMetrics, ShardMetrics};
pub use operator::{EngineOperator, ShardedOperator};
pub use shard::{ShardFinal, ShardSnapshot};
