//! # psfa-engine
//!
//! A multi-threaded, sharded ingestion engine over the PSFA aggregates:
//! the serving layer that turns the paper's single-summary minibatch
//! algorithms into a system that ingests concurrent traffic and answers
//! queries *while ingestion runs*.
//!
//! ```text
//!  producers (any thread, cloneable EngineHandle)
//!      │  ingest(&[u64])  — items tick the WindowFence's logical clock
//!      ▼
//!  pluggable router (psfa_stream::Router)
//!      │  hash: each key owned by one shard (default)
//!      │  skew-aware: hot keys split round-robin across all shards
//!      │  bounded sync channels (backpressure when full)
//!      │  every `slide` items: a window boundary marker is enqueued on
//!      │  EVERY shard from one exclusive fence cut (same position on all)
//!      ▼
//!  shard workers 0..N   each owns: InfiniteHeavyHitters   (φ, ε)
//!      │                           PaneWindow             (global window)
//!      │                           ParallelCountMin       (shared seed)
//!      │                           lifted MinibatchOperators
//!      ▼
//!  per-shard epoch snapshots  ──►  EngineHandle queries
//!      (Arc swap per batch)        estimate / heavy_hitters / cm_estimate
//!      (sealed window per boundary) sliding_estimate / sliding_heavy_hitters
//! ```
//!
//! ## Why sharding preserves the paper's guarantees
//!
//! The router places every *occurrence* on exactly one shard, so per-shard
//! substreams partition the input stream (`Σ_s m_s = m`) even when a hot
//! key's occurrences are spread across shards:
//!
//! * A **point query** on an owner-routed key is answered entirely by the
//!   owning shard: its Misra–Gries estimate satisfies `f − ε·m_s ≤ f̂ ≤ f`,
//!   which implies the global one-sided bound `f − ε·m ≤ f̂ ≤ f`. For a
//!   **replicated** (hot) key the per-shard estimates are *summed*: each
//!   underestimates its substream frequency by at most `ε·m_s`, so the sum
//!   underestimates `f = Σ_s f_s` by at most `Σ_s ε·m_s = ε·m` and never
//!   overestimates — the mergeable-summaries accounting of
//!   [`psfa_freq::MgSummary::merge`] applied at query time.
//! * A **heavy-hitter query** sums per-shard summary entries by key and
//!   thresholds the sums against `(φ − ε)·m`: every item with `f ≥ φm` is
//!   kept (its summed estimate is at least `f − ε·m ≥ (φ − ε)m`), and
//!   nothing with `f < (φ − ε)m` survives (summed estimates never
//!   overestimate). These are exactly the guarantees of the single-summary
//!   algorithm (Theorem 5.2 and the Section 5 reduction).
//! * The per-shard **Count-Min** sketches share one hash seed, so they are
//!   counter-wise mergeable ([`psfa_sketch::CountMinSketch::merge`]) into a
//!   sketch of the full stream; point queries take the owning shard's upper
//!   bound (error `ε_cm · m_s`), or for replicated keys the sum of per-shard
//!   upper bounds (error `ε_cm · m`).
//!
//! This is the concurrent-ADT architecture of Gulisano et al. (producers
//! decoupled from aggregators by explicit in-flight state) combined with the
//! query/parallelism split of QPOPSS (queries run against published epochs,
//! never against half-updated operator state).
//!
//! ## The global sliding window
//!
//! With [`EngineConfig::sliding_window`] configured, `sliding_estimate`
//! and `sliding_heavy_hitters` answer over the **last `n_W` items of the
//! global stream** — not over per-shard substreams. The mechanism is
//! window-aligned barriers: accepted items draw logical positions from a
//! shared atomic ticket (`psfa_stream::WindowFence`), and every
//! `slide = n_W / panes` items one exclusive fence cut enqueues a boundary
//! marker at the *same stream position on every shard*. Each shard seals
//! its open pane at the marker into a ring of per-pane mergeable
//! summaries, and queries merge every shard's sealed window *at the same
//! boundary* — summing per-key estimates, which keeps the one-sided
//! `ε·n_W` bound over the global window under any routing policy (see
//! [`psfa_freq::windowed`] for the accounting). Alignment work happens at
//! boundaries on the worker threads, never on the query path and never
//! per item.
//!
//! ```
//! use psfa_engine::{Engine, EngineConfig};
//!
//! // A 4-pane window of the last 8000 items, global across 2 shards.
//! let engine = Engine::spawn(
//!     EngineConfig::with_shards(2)
//!         .heavy_hitters(0.05, 0.01)
//!         .sliding_window(8_000)
//!         .window_panes(4),
//! );
//! let handle = engine.handle();
//! for _ in 0..4 {
//!     handle.ingest(&vec![7u64; 1_000]).unwrap(); // 2 boundaries @ slide 2000
//! }
//! engine.drain().unwrap();
//! let window = handle.global_window().expect("aligned at boundary 2");
//! assert_eq!((window.seq(), window.items()), (2, 4_000));
//! assert_eq!(handle.sliding_estimate(7), 4_000);
//! let heavy = handle.sliding_heavy_hitters();
//! assert_eq!(heavy[0].item, 7);
//! engine.shutdown().unwrap();
//! ```
//!
//! ## Consistency
//!
//! Each shard publishes an immutable [`ShardSnapshot`] after every
//! minibatch; queries read the latest snapshots without stalling ingestion.
//! Cross-shard queries therefore observe a *recent prefix per shard* — the
//! natural consistency of a discretized-stream system between minibatches —
//! with epochs exposed via [`EngineHandle::epochs`] for callers that need to
//! wait for progress ([`EngineHandle::drain`] gives a full barrier).
//! Windowed queries are stricter: they answer only at a boundary *every*
//! shard has sealed, so the reported window is a single consistent global
//! cut (never a mix of two different windows).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod engine;
mod metrics;
mod obs;
mod operator;
mod persist;
mod producer;
mod shard;

pub use config::EngineConfig;
pub use engine::{
    Answered, Degraded, Engine, EngineBuilder, EngineClosed, EngineHandle, EngineReport,
    IngestError, ShutdownError, TryIngestError,
};
pub use metrics::{EngineMetrics, ShardHealth, ShardMetrics, StoreMetrics, WindowMetrics};
pub use obs::ObsConfig;
pub use operator::{EngineOperator, ShardedOperator};
pub use producer::Producer;
pub use shard::{ShardFinal, ShardSnapshot};

// Routing and window fencing live in `psfa_stream`; re-exported here
// because the engine's config and query semantics are expressed in terms
// of them. The windowed query types come from `psfa_freq::windowed`.
pub use psfa_freq::{GlobalWindow, SealedWindow};
// Fault injection lives in `psfa-primitives`; re-exported so
// `EngineConfig::fault_injection` can be used without a direct dependency.
pub use psfa_primitives::FaultPlan;
pub use psfa_stream::{
    HashRouter, IngestFence, Placement, Router, RoutingPolicy, SkewAwareRouter, WindowFence,
};

// Persistence lives in `psfa-store`; the engine-facing pieces are
// re-exported so `EngineConfig::persistence` and `Engine::recover` can be
// used without a direct `psfa-store` dependency.
pub use psfa_store::{EpochView, PersistenceConfig, SnapshotStore, StoreError, WindowState};

// Observability mechanisms live in `psfa-obs`; the pieces surfaced by
// `EngineMetrics::obs` and `EngineHandle::trace_events` are re-exported so
// callers can consume reports without a direct `psfa-obs` dependency.
pub use psfa_obs::{
    Clock, HistogramSnapshot, ManualClock, MonotonicClock, ObsCounter, ObsReport, ObsSection,
    Percentiles, TraceEvent, TraceKind,
};
