//! # psfa-engine
//!
//! A multi-threaded, sharded ingestion engine over the PSFA aggregates:
//! the serving layer that turns the paper's single-summary minibatch
//! algorithms into a system that ingests concurrent traffic and answers
//! queries *while ingestion runs*.
//!
//! ```text
//!  producers (any thread, cloneable EngineHandle)
//!      │  ingest(&[u64])
//!      ▼
//!  pluggable router (psfa_stream::Router)
//!      │  hash: each key owned by one shard (default)
//!      │  skew-aware: hot keys split round-robin across all shards
//!      │  bounded sync channels (backpressure when full)
//!      ▼
//!  shard workers 0..N   each owns: InfiniteHeavyHitters   (φ, ε)
//!      │                           SlidingFreqWorkEfficient (optional)
//!      │                           ParallelCountMin       (shared seed)
//!      │                           lifted MinibatchOperators
//!      ▼
//!  per-shard epoch snapshots  ──►  EngineHandle queries
//!      (Arc swap per batch)        estimate / heavy_hitters / cm_estimate
//! ```
//!
//! ## Why sharding preserves the paper's guarantees
//!
//! The router places every *occurrence* on exactly one shard, so per-shard
//! substreams partition the input stream (`Σ_s m_s = m`) even when a hot
//! key's occurrences are spread across shards:
//!
//! * A **point query** on an owner-routed key is answered entirely by the
//!   owning shard: its Misra–Gries estimate satisfies `f − ε·m_s ≤ f̂ ≤ f`,
//!   which implies the global one-sided bound `f − ε·m ≤ f̂ ≤ f`. For a
//!   **replicated** (hot) key the per-shard estimates are *summed*: each
//!   underestimates its substream frequency by at most `ε·m_s`, so the sum
//!   underestimates `f = Σ_s f_s` by at most `Σ_s ε·m_s = ε·m` and never
//!   overestimates — the mergeable-summaries accounting of
//!   [`psfa_freq::MgSummary::merge`] applied at query time.
//! * A **heavy-hitter query** sums per-shard summary entries by key and
//!   thresholds the sums against `(φ − ε)·m`: every item with `f ≥ φm` is
//!   kept (its summed estimate is at least `f − ε·m ≥ (φ − ε)m`), and
//!   nothing with `f < (φ − ε)m` survives (summed estimates never
//!   overestimate). These are exactly the guarantees of the single-summary
//!   algorithm (Theorem 5.2 and the Section 5 reduction).
//! * The per-shard **Count-Min** sketches share one hash seed, so they are
//!   counter-wise mergeable ([`psfa_sketch::CountMinSketch::merge`]) into a
//!   sketch of the full stream; point queries take the owning shard's upper
//!   bound (error `ε_cm · m_s`), or for replicated keys the sum of per-shard
//!   upper bounds (error `ε_cm · m`).
//!
//! This is the concurrent-ADT architecture of Gulisano et al. (producers
//! decoupled from aggregators by explicit in-flight state) combined with the
//! query/parallelism split of QPOPSS (queries run against published epochs,
//! never against half-updated operator state).
//!
//! ## Consistency
//!
//! Each shard publishes an immutable [`ShardSnapshot`] after every
//! minibatch; queries read the latest snapshots without stalling ingestion.
//! Cross-shard queries therefore observe a *recent prefix per shard* — the
//! natural consistency of a discretized-stream system between minibatches —
//! with epochs exposed via [`EngineHandle::epochs`] for callers that need to
//! wait for progress ([`EngineHandle::drain`] gives a full barrier).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod engine;
mod metrics;
mod operator;
mod persist;
mod shard;

pub use config::EngineConfig;
pub use engine::{Engine, EngineBuilder, EngineClosed, EngineHandle, EngineReport, IngestError};
pub use metrics::{EngineMetrics, ShardMetrics, StoreMetrics};
pub use operator::{EngineOperator, ShardedOperator};
pub use shard::{ShardFinal, ShardSnapshot};

// Routing lives in `psfa_stream::router`; re-exported here because the
// engine's config and query semantics are expressed in terms of it.
pub use psfa_stream::{HashRouter, IngestFence, Placement, Router, RoutingPolicy, SkewAwareRouter};

// Persistence lives in `psfa-store`; the engine-facing pieces are
// re-exported so `EngineConfig::persistence` and `Engine::recover` can be
// used without a direct `psfa-store` dependency.
pub use psfa_store::{EpochView, PersistenceConfig, SnapshotStore, StoreError};
