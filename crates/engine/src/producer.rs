//! Per-thread ingest endpoints: contention-free multi-producer ingestion.
//!
//! [`crate::EngineHandle::ingest`] is safe to call from many threads, but
//! every call funnels through the per-shard bounded MPSC channels — whose
//! internal lock and shared head/tail cache lines serialise exactly the
//! traffic sharding was supposed to spread out. A [`Producer`] is the
//! scaling front end: one single-owner endpoint per producer thread, in
//! one of two modes selected by the engine configuration.
//!
//! ## Lanes mode (the default)
//!
//! The producer owns one [`psfa_stream::IngestLane`] per shard — a bounded
//! SPSC ring registered with the shard at construction — plus its own
//! routing scratch, so concurrent producers partition their minibatches in
//! parallel and hand sub-batches to the workers without sharing a single
//! mutable cache line. Consistent cuts (window boundaries, drain barriers,
//! persistence snapshots) still work: every cut stamps an in-position mark
//! into each registered lane under the exclusive ingest fence, and workers
//! drain lanes exactly to their marks before executing the cut (see the
//! `shard` module docs). All engine invariants — the one-sided `ε·m`
//! bound, window alignment, epoch-consistent persistence — are therefore
//! unchanged.
//!
//! ## Thread-local mode ([`crate::EngineConfig::thread_local_ingest`])
//!
//! The producer skips routing entirely: it owns a *private* substream —
//! its own Misra–Gries tracker and Count-Min sketch, registered with the
//! engine as an extra query-time "shard" — and updates it in place, with
//! no cross-thread handoff at all. Queries merge the producer substreams
//! with the shard summaries (mergeable-summaries accounting: the summed
//! one-sided error stays `Σ ε·m_s = ε·m`). The trade-offs: query-time
//! merge work grows with the producer count, publication is lazy (call
//! [`Producer::flush`] for a read-your-writes barrier), and features that
//! need a global stream order — the sliding window, persistence — are
//! unavailable (the config validator rejects the combinations).
//!
//! Producer substreams are **not** part of [`crate::EngineReport`] or the
//! per-shard metrics; query them through the handle
//! (`estimate`/`heavy_hitters`/`total_items`), which merges them in.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use psfa_freq::InfiniteHeavyHitters;
use psfa_primitives::{build_hist_into, HistScratch, HistogramEntry};
use psfa_stream::IngestLane;

use crate::engine::{EngineClosed, EngineHandle, TryIngestError};
use crate::shard::{ShardCommand, ShardShared, ShardSnapshot};

/// A per-thread ingest endpoint (see the module docs). Obtain one per
/// producer thread via [`crate::EngineHandle::producer`]; the endpoint is
/// single-owner (`&mut self` ingestion) and `Send`, so move it into the
/// thread that uses it.
pub struct Producer {
    inner: ProducerInner,
}

enum ProducerInner {
    Lanes(LaneProducer),
    Local(Box<LocalProducer>),
}

impl Producer {
    pub(crate) fn new(handle: &EngineHandle) -> Self {
        let inner = if handle.config.thread_local_ingest {
            ProducerInner::Local(Box::new(LocalProducer::new(handle)))
        } else {
            ProducerInner::Lanes(LaneProducer::new(handle))
        };
        Self { inner }
    }

    /// The active ingest mode: `"lanes"` or `"thread-local"`.
    pub fn mode(&self) -> &'static str {
        match &self.inner {
            ProducerInner::Lanes(_) => "lanes",
            ProducerInner::Local(_) => "thread-local",
        }
    }

    /// Ingests one minibatch, blocking on backpressure (a full lane waits
    /// for the shard worker; thread-local mode never blocks). `Ok` means
    /// the whole minibatch is accepted and will be reflected in queries;
    /// an error is a clean rejection (the engine is shut down and nothing
    /// was enqueued).
    pub fn ingest(&mut self, minibatch: &[u64]) -> Result<(), EngineClosed> {
        match &mut self.inner {
            ProducerInner::Lanes(p) => p.ingest(minibatch),
            ProducerInner::Local(p) => p.ingest(minibatch),
        }
    }

    /// Non-blocking [`Producer::ingest`]: rejects with
    /// [`TryIngestError::Busy`] when any target lane is full instead of
    /// waiting. Always a clean rejection — nothing was enqueued.
    /// Thread-local mode has no queue and only rejects when closed.
    pub fn try_ingest(&mut self, minibatch: &[u64]) -> Result<(), TryIngestError> {
        match &mut self.inner {
            ProducerInner::Lanes(p) => p.try_ingest(minibatch),
            ProducerInner::Local(p) => p
                .ingest(minibatch)
                .map_err(|EngineClosed| TryIngestError::Closed),
        }
    }

    /// Read-your-writes barrier for this producer's accepted batches.
    ///
    /// Lanes mode waits until the shard workers have drained everything
    /// this producer pushed (cheaper than a full [`EngineHandle::drain`]:
    /// only this producer's lanes are waited on). Thread-local mode
    /// publishes any pending substream snapshot so queries observe every
    /// batch ingested so far.
    pub fn flush(&mut self) {
        match &mut self.inner {
            ProducerInner::Lanes(p) => p.flush(),
            ProducerInner::Local(p) => p.flush(),
        }
    }
}

/// Lanes-mode producer: per-shard SPSC lanes plus private routing scratch.
struct LaneProducer {
    handle: EngineHandle,
    /// One lane per shard, registered with the shard workers at
    /// construction.
    lanes: Vec<Arc<IngestLane>>,
    /// Private routing scratch (one buffer per shard); sent slots are
    /// refilled from the engine's buffer pool, so steady-state routing
    /// allocates nothing.
    parts: Vec<Vec<u64>>,
}

impl LaneProducer {
    fn new(handle: &EngineHandle) -> Self {
        let handle = handle.clone();
        let shards = handle.shards();
        let lanes: Vec<Arc<IngestLane>> = (0..shards)
            .map(|_| Arc::new(IngestLane::new(handle.queue_capacity)))
            .collect();
        for (shard, lane) in lanes.iter().enumerate() {
            handle.shared[shard].register_lane(lane.clone());
            // Rouse a worker parked in its blocking channel wait so it
            // notices the new lane. A failed try_send means the channel is
            // non-empty (or closed) — either way the worker is not parked.
            let _ = handle.senders[shard].try_send(ShardCommand::Wake);
        }
        let mut parts = Vec::new();
        parts.resize_with(shards, Vec::new);
        Self {
            handle,
            lanes,
            parts,
        }
    }

    fn ingest(&mut self, minibatch: &[u64]) -> Result<(), EngineClosed> {
        if minibatch.is_empty() {
            return Ok(());
        }
        // One fence guard across routing + pushes: cuts (and shutdown)
        // serialise strictly between whole minibatches, exactly as on the
        // channel path, which is what makes lane marks consistent cuts.
        let Some(guard) = self.handle.fence.enter() else {
            return Err(EngineClosed);
        };
        self.handle
            .router
            .partition_into(minibatch, &mut self.parts);
        self.handle.trace_hot_promotions();
        for (shard, part) in self.parts.iter_mut().enumerate() {
            if part.is_empty() {
                continue;
            }
            let len = part.len() as u64;
            // Reserve before the push (see `send_part` in engine.rs):
            // `items_enqueued >= items_processed` must hold for every
            // concurrent observer the moment the batch becomes poppable.
            let stats = &self.handle.shared[shard].stats;
            stats.items_enqueued.fetch_add(len, Ordering::Relaxed);
            stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
            // Fault injection (tests only; one `Option` branch when
            // unset): a scheduled stall before the push simulates a slow
            // or wedged producer without changing what is delivered.
            if let Some(fault) = &self.handle.config.fault {
                if let Some(stall) =
                    fault.lane_stall(shard, stats.batches_enqueued.load(Ordering::Relaxed))
                {
                    std::thread::sleep(stall);
                }
            }
            // Swap the routed buffer out and refill the slot from the
            // pool's return lane, keeping the recycling loop closed.
            let batch = std::mem::replace(part, self.handle.pool.take(shard).unwrap_or_default());
            self.lanes[shard].push(batch);
        }
        let boundary_due = match &self.handle.window_fence {
            Some(windows) => windows.claim(&guard, minibatch.len() as u64).due,
            None => false,
        };
        self.handle.accepted_batches.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        if boundary_due {
            self.handle.cut_due_window_boundaries();
        }
        Ok(())
    }

    fn try_ingest(&mut self, minibatch: &[u64]) -> Result<(), TryIngestError> {
        if minibatch.is_empty() {
            return Ok(());
        }
        let Some(guard) = self.handle.fence.enter() else {
            return Err(TryIngestError::Closed);
        };
        self.handle
            .router
            .partition_into(minibatch, &mut self.parts);
        self.handle.trace_hot_promotions();
        // Admission: every target lane must have room *now*. The lane is
        // SPSC and this producer is its only pusher, so room observed here
        // cannot be taken by anyone else before our push lands — unlike
        // `EngineHandle::try_ingest`, this admission check is exact.
        let full = self.parts.iter().enumerate().any(|(shard, part)| {
            !part.is_empty() && self.lanes[shard].len() >= self.lanes[shard].capacity() as u64
        });
        if full {
            return Err(TryIngestError::Busy);
        }
        for (shard, part) in self.parts.iter_mut().enumerate() {
            if part.is_empty() {
                continue;
            }
            let len = part.len() as u64;
            let stats = &self.handle.shared[shard].stats;
            stats.items_enqueued.fetch_add(len, Ordering::Relaxed);
            stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
            let batch = std::mem::replace(part, self.handle.pool.take(shard).unwrap_or_default());
            self.lanes[shard]
                .try_push(batch)
                .expect("SPSC lane reported room, then refused the push");
        }
        let boundary_due = match &self.handle.window_fence {
            Some(windows) => windows.claim(&guard, minibatch.len() as u64).due,
            None => false,
        };
        self.handle.accepted_batches.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        if boundary_due {
            self.handle.cut_due_window_boundaries();
        }
        Ok(())
    }

    fn flush(&mut self) {
        // Wait for the workers to drain this producer's lanes, then run a
        // gated barrier so the final popped batches are fully processed
        // and published before we return.
        for lane in &self.lanes {
            while !lane.is_empty() {
                std::thread::yield_now();
            }
        }
        // A dead shard cannot acknowledge the barrier; the flush barrier
        // is best-effort for what remains (callers that need the typed
        // dead-shard report use `EngineHandle::drain` directly).
        let _ = self.handle.drain();
    }
}

impl Drop for LaneProducer {
    fn drop(&mut self) {
        for lane in &self.lanes {
            lane.close();
        }
    }
}

/// Thread-local-mode producer: a private substream registered with the
/// engine as an extra query-time shard.
struct LocalProducer {
    handle: EngineHandle,
    /// The substream's Misra–Gries tracker (charges work to the shared
    /// meter like a shard worker's).
    heavy_hitters: InfiniteHeavyHitters,
    /// Query surface shared with the engine: published snapshots, the
    /// substream's Count-Min sketch, the refresh protocol.
    shared: Arc<ShardShared>,
    /// Substream index (`engine shards + registration position`), used as
    /// the snapshot's shard id.
    index: usize,
    hist_seed: u64,
    hist_scratch: HistScratch,
    hist: Vec<HistogramEntry>,
    epoch: u64,
    items: u64,
    /// Mirrors the shard worker's lazy-publication state (see `shard.rs`).
    published_entries: usize,
    dirty: bool,
    membership_interval: u64,
    last_any_publish_epoch: u64,
}

impl LocalProducer {
    fn new(handle: &EngineHandle) -> Self {
        let handle = handle.clone();
        // Poison recovery (via `EngineHandle::locals`) is safe: the
        // registry is append-only and every pushed `Arc` was fully
        // constructed first.
        let mut locals = handle.locals();
        let index = handle.shards() + locals.len();
        let shared = Arc::new(ShardShared::new(index, &handle.config, None));
        locals.push(shared.clone());
        drop(locals);
        let heavy_hitters = InfiniteHeavyHitters::new(handle.config.phi, handle.config.epsilon)
            .with_meter(shared.work.clone());
        let membership_interval = handle.config.membership_publish_interval;
        Self {
            handle,
            heavy_hitters,
            shared,
            index,
            hist_seed: 0x5eed_0000 ^ index as u64,
            hist_scratch: HistScratch::new(),
            hist: Vec::new(),
            epoch: 0,
            items: 0,
            published_entries: 0,
            dirty: false,
            membership_interval,
            last_any_publish_epoch: 0,
        }
    }

    fn ingest(&mut self, minibatch: &[u64]) -> Result<(), EngineClosed> {
        if minibatch.is_empty() {
            return Ok(());
        }
        // The guard orders this batch against shutdown: once the fence is
        // closed no new substream updates land, so post-shutdown queries
        // are stable. (Cloned `Arc` so the guard does not borrow `self`.)
        let fence = self.handle.fence.clone();
        let Some(_guard) = fence.enter() else {
            return Err(EngineClosed);
        };
        self.hist_seed = self
            .hist_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        build_hist_into(
            minibatch,
            self.hist_seed,
            &mut self.hist_scratch,
            &mut self.hist,
        );
        let len = minibatch.len() as u64;
        let cutoff = self.heavy_hitters.process_histogram(&self.hist, len);
        self.shared.count_min.ingest_histogram(&self.hist);
        self.epoch += 1;
        self.items += len;
        self.shared.live_epoch.store(self.epoch, Ordering::Relaxed);
        // Enqueued first, then processed: observers must never see
        // processed ahead of enqueued (there is no queue here — the
        // substream processes synchronously).
        let stats = &self.shared.stats;
        stats.items_enqueued.fetch_add(len, Ordering::Relaxed);
        stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
        stats.items_processed.fetch_add(len, Ordering::Relaxed);
        stats.batches_processed.fetch_add(1, Ordering::Relaxed);
        // The shard worker's lazy-publication protocol, verbatim (see the
        // `shard` module docs): publish on membership churn (rate
        // limited), on a stale reader's refresh request, else defer.
        let membership_changed =
            cutoff > 0 || self.heavy_hitters.estimator().num_counters() != self.published_entries;
        let membership_due =
            self.epoch.saturating_sub(self.last_any_publish_epoch) >= self.membership_interval;
        // Consuming the refresh flag even when the membership branch is
        // what triggers the publish is correct: the publication that
        // follows satisfies the stale reader either way.
        let refresh = self.shared.refresh.swap(false, Ordering::AcqRel);
        if (membership_changed && membership_due) || refresh {
            self.publish();
        } else {
            self.dirty = true;
        }
        self.handle.accepted_batches.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&mut self) {
        if self.dirty {
            self.publish();
        }
    }

    fn publish(&mut self) {
        let hh_entries = self.heavy_hitters.estimator().tracked_items_sorted();
        self.published_entries = hh_entries.len();
        self.dirty = false;
        self.last_any_publish_epoch = self.epoch;
        self.shared.snapshot.set(Arc::new(ShardSnapshot {
            shard: self.index,
            epoch: self.epoch,
            stream_len: self.items,
            hh_entries,
            windows: Vec::new(),
        }));
    }
}

impl Drop for LocalProducer {
    fn drop(&mut self) {
        // The substream outlives the producer (queries keep merging it);
        // leave it an exact final snapshot.
        self.flush();
    }
}
