//! The engine: shard spawning, routed ingestion, live cross-shard queries,
//! drain and shutdown.

use std::fmt;
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use psfa_freq::{
    merge_sum, GlobalWindow, HeavyHitter, InfiniteHeavyHitters, ParallelFrequencyEstimator,
};
use psfa_obs::{TraceEvent, TraceKind, NO_SHARD};
use psfa_sketch::ParallelCountMin;
use psfa_store::{EpochRecord, EpochView, PersistenceConfig, SnapshotStore, StoreError};
use psfa_stream::{
    BufferPool, IngestFence, MinibatchOperator, Placement, Router, WindowFence, WindowFenceState,
};

use crate::config::EngineConfig;
use crate::metrics::{EngineMetrics, ShardHealth, WindowMetrics};
use crate::obs::{EngineObs, QueryKind, Reporter};
use crate::operator::ShardedOperator;
use crate::persist::{Flusher, PersistWindow, Persister};
use crate::shard::{ShardCommand, ShardFinal, ShardShared, ShardSnapshot, ShardWorker};

/// How many trailing trace events an [`psfa_obs::ObsReport`] embeds (a
/// non-destructive peek; [`EngineHandle::trace_events`] drains the full
/// ring).
const RECENT_TRACE_EVENTS: usize = 32;

/// Error returned when ingesting into an engine whose workers have exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine is shut down; ingestion channel closed")
    }
}

impl std::error::Error for EngineClosed {}

/// Error returned by [`EngineHandle::ingest`], reporting exactly how much of
/// the minibatch was delivered before the failure.
///
/// `ingest` splits a minibatch into per-shard sub-batches and enqueues them
/// one shard at a time, so a failure is **not** automatically all-or-nothing:
///
/// * A *graceful* shutdown ([`Engine::shutdown`]) serialises behind the whole
///   `ingest` call, so it can only reject a batch up-front —
///   `parts_delivered == 0` and nothing was enqueued (clean rejection).
/// * If a shard *worker died* (panicked) mid-call, the sub-batches sent to
///   other shards before the failure are already enqueued and will be (or
///   were) processed; `parts_delivered` counts them so callers can account
///   for the partially applied batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestError {
    /// Non-empty per-shard sub-batches enqueued before the failure.
    pub parts_delivered: usize,
    /// Non-empty per-shard sub-batches the minibatch was split into
    /// (`0` when the batch was rejected before being split).
    pub parts_total: usize,
}

impl IngestError {
    fn rejected() -> Self {
        Self {
            parts_delivered: 0,
            parts_total: 0,
        }
    }

    /// True if nothing was enqueued: the batch was refused as a whole and
    /// the stream state is exactly as if `ingest` was never called.
    pub fn is_clean_rejection(&self) -> bool {
        self.parts_delivered == 0
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `parts_total == 0` is the up-front rejection path (the batch was
        // never split); a worker death mid-call has `parts_total > 0` even
        // when it struck before the first part was delivered.
        if self.parts_total == 0 {
            write!(
                f,
                "engine is shut down; minibatch rejected (none of it was enqueued)"
            )
        } else {
            write!(
                f,
                "engine worker died mid-ingest: {}/{} per-shard sub-batches were already enqueued",
                self.parts_delivered, self.parts_total
            )
        }
    }
}

impl std::error::Error for IngestError {}

/// Error returned by [`EngineHandle::try_ingest`]. Both variants are clean
/// rejections: nothing was enqueued and the stream state is exactly as if
/// the call never happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryIngestError {
    /// At least one target shard's queue was at capacity. The caller
    /// should shed, retry later, or fall back to the blocking
    /// [`EngineHandle::ingest`].
    Busy,
    /// The engine is shut down.
    Closed,
}

impl fmt::Display for TryIngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryIngestError::Busy => {
                write!(
                    f,
                    "shard queues are full; minibatch rejected (nothing was enqueued)"
                )
            }
            TryIngestError::Closed => {
                write!(
                    f,
                    "engine is shut down; minibatch rejected (nothing was enqueued)"
                )
            }
        }
    }
}

impl std::error::Error for TryIngestError {}

/// Error returned by [`Engine::shutdown`] and [`EngineHandle::drain`] when
/// one or more shard workers died permanently (exhausted their restart
/// budget after repeated panics) instead of completing the operation.
///
/// The engine never panics the *caller* for a worker death: supervised
/// workers are restarted from their last published snapshot (see
/// `shard.rs`), and only a shard that keeps dying past
/// [`EngineConfig::worker_restart_limit`] is marked dead. Queries keep
/// answering from dead shards' last snapshots (see
/// [`EngineHandle::heavy_hitters_checked`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownError {
    /// Shards whose workers died permanently, ascending.
    pub dead_shards: Vec<usize>,
}

impl fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard worker(s) {:?} died permanently (restart budget exhausted)",
            self.dead_shards
        )
    }
}

impl std::error::Error for ShutdownError {}

/// Staleness annotation attached to a query answer when some shards are
/// quarantined or dead: those shards contributed their last *published*
/// snapshot instead of live state.
///
/// The answer itself remains one-sided — snapshot estimates never exceed
/// true frequencies — but it may additionally miss the unpublished tail of
/// the stale shards' substreams (bounded by `epoch_lag` batches each).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// Shards answering from their last published snapshot, ascending.
    pub stale_shards: Vec<usize>,
    /// Largest number of processed-but-unpublished batches any stale shard
    /// had at its last observed progress point — the answer's staleness in
    /// batches.
    pub epoch_lag: u64,
}

/// A query answer plus an optional [`Degraded`] annotation — the
/// non-breaking fault-aware wrapper returned by the `*_checked` query
/// variants. `degraded` is `None` when every shard was live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answered<T> {
    /// The merged answer (same semantics as the unchecked query).
    pub value: T,
    /// Present when some shards answered from stale snapshots.
    pub degraded: Option<Degraded>,
}

/// Builder collecting lifted operators before the workers start.
pub struct EngineBuilder {
    config: EngineConfig,
    lifted: Vec<Vec<(String, Box<dyn MinibatchOperator + Send>)>>,
    /// Persisted epoch the engine resumes from ([`Engine::recover`]).
    recovered: Option<EpochRecord>,
    /// Store already opened (and validated) by [`Engine::recover`], so the
    /// spawned engine appends to the same log it recovered from.
    preopened_store: Option<SnapshotStore>,
}

impl EngineBuilder {
    fn new(config: EngineConfig) -> Self {
        config.validate();
        let lifted = (0..config.shards).map(|_| Vec::new()).collect();
        Self {
            config,
            lifted,
            recovered: None,
            preopened_store: None,
        }
    }

    /// Lifts a [`ShardedOperator`] into the engine: one instance is built
    /// per shard and sees exactly the minibatches routed to that shard.
    pub fn lift<S: ShardedOperator>(mut self, mut sharded: S) -> Self {
        let name = sharded.name();
        for (shard, ops) in self.lifted.iter_mut().enumerate() {
            ops.push((name.clone(), Box::new(sharded.build_shard(shard)) as Box<_>));
        }
        self
    }

    /// Spawns the shard workers and returns the running engine.
    ///
    /// # Panics
    /// Panics if the configured persistence directory cannot be opened; use
    /// [`EngineBuilder::try_spawn`] to handle that gracefully.
    pub fn spawn(self) -> Engine {
        self.try_spawn().expect("failed to open the snapshot store")
    }

    /// Spawns the shard workers, reporting persistence failures as a typed
    /// error instead of panicking.
    pub fn try_spawn(self) -> Result<Engine, StoreError> {
        let EngineBuilder {
            config,
            lifted,
            recovered,
            preopened_store,
        } = self;
        let router: Arc<dyn Router> = config.routing.build(config.shards);
        if let Some(record) = &recovered {
            // Restore the persisted hot set so replicated-key placements —
            // and therefore query-time summing — survive the restart.
            router.promote(&record.hot_keys);
        }
        let recovered_shard = |shard: usize| recovered.as_ref().map(|r| &r.shards[shard]);
        let shared: Arc<Vec<Arc<ShardShared>>> = Arc::new(
            (0..config.shards)
                .map(|shard| Arc::new(ShardShared::new(shard, &config, recovered_shard(shard))))
                .collect(),
        );
        // Sub-batch buffers circulate producers → workers → producers; a
        // lane never needs to park more buffers than can be in flight on
        // one queue (capacity) plus a checkout in progress.
        let pool = Arc::new(BufferPool::new(config.shards, config.queue_capacity + 2));
        // Observability is opt-in: `None` here compiles every instrumentation
        // point in the hot paths down to an untaken branch.
        let obs = config
            .observability
            .as_ref()
            .map(|oc| Arc::new(EngineObs::new(oc, config.shards)));
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (shard, ops) in lifted.into_iter().enumerate() {
            let (tx, rx) = sync_channel(config.queue_capacity);
            let worker = ShardWorker::new(
                shard,
                &config,
                ops,
                shared[shard].clone(),
                pool.clone(),
                recovered_shard(shard),
                obs.clone(),
            );
            let supervisor_config = config.clone();
            let supervisor_shared = shared[shard].clone();
            let supervisor_pool = pool.clone();
            let supervisor_obs = obs.clone();
            let join = std::thread::Builder::new()
                .name(format!("psfa-shard-{shard}"))
                .spawn(move || {
                    supervise(
                        shard,
                        supervisor_config,
                        supervisor_shared,
                        supervisor_pool,
                        supervisor_obs,
                        worker,
                        rx,
                    )
                })
                .expect("failed to spawn shard worker thread");
            senders.push(tx);
            workers.push(join);
        }
        let senders = Arc::new(senders);
        let fence = Arc::new(IngestFence::new());
        let accepted_batches = Arc::new(std::sync::atomic::AtomicU64::new(0));
        // Gate 0 is reserved as the "no lanes" sentinel used by legacy
        // unit tests; real cuts allocate from 1.
        let gates = Arc::new(std::sync::atomic::AtomicU64::new(1));
        let locals = Arc::new(std::sync::Mutex::new(Vec::new()));

        // The window fence shares the ingest fence, so pane boundaries cut
        // shard-consistently; on recovery the logical clock resumes from
        // the persisted cut so boundaries keep landing at the same
        // positions.
        let window_fence = config.window.map(|n| {
            let slide = n / config.window_panes as u64;
            match recovered.as_ref().and_then(|r| r.window.as_ref()) {
                None => Arc::new(WindowFence::new(fence.clone(), slide)),
                Some(ws) => Arc::new(WindowFence::resume(
                    fence.clone(),
                    slide,
                    WindowFenceState {
                        ticket: ws.ticket,
                        boundaries: ws.boundaries,
                    },
                )),
            }
        });

        let mut flusher = None;
        let persister = match &config.persistence {
            None => None,
            Some(pcfg) => {
                let store = match preopened_store {
                    Some(store) => store,
                    None => SnapshotStore::open(
                        &pcfg.dir,
                        pcfg.retain_epochs,
                        pcfg.segment_max_records,
                    )?,
                };
                let persister = Arc::new(Persister::new(
                    store,
                    fence.clone(),
                    senders.clone(),
                    shared.clone(),
                    gates.clone(),
                    router.clone(),
                    config.phi,
                    config.epsilon,
                    config.window.map(|n| PersistWindow {
                        size: n,
                        panes: config.window_panes as u32,
                        fence: window_fence
                            .clone()
                            .expect("window fence exists when a window is configured"),
                    }),
                    obs.clone(),
                    config.fault.clone(),
                ));
                flusher = Some(Flusher::spawn(
                    persister.clone(),
                    accepted_batches.clone(),
                    pcfg.interval_batches,
                    pcfg.poll,
                ));
                Some(persister)
            }
        };

        let handle = EngineHandle {
            senders,
            shared,
            router,
            pool,
            fence,
            window_fence,
            persister,
            accepted_batches,
            gates,
            locals,
            obs,
            phi: config.phi,
            epsilon: config.epsilon,
            window: config.window,
            window_panes: config.window_panes,
            queue_capacity: config.queue_capacity,
            config: Arc::new(config.clone()),
        };
        // The periodic reporter renders the full ObsReport table off a
        // cloned handle; it only exists when both observability and a
        // report interval are configured.
        let reporter = config
            .observability
            .as_ref()
            .and_then(|oc| oc.report_interval)
            .map(|interval| {
                let handle = handle.clone();
                Reporter::spawn(interval, move || {
                    handle
                        .metrics()
                        .obs
                        .map_or_else(String::new, |report| report.to_table())
                })
            });
        Ok(Engine {
            handle,
            workers,
            flusher,
            reporter,
        })
    }
}

/// The shard worker supervisor: runs the worker under `catch_unwind` and
/// restarts it from the shard's last published snapshot after a panic.
///
/// The supervisor — not the worker — owns the command `Receiver`, so a
/// panic never disconnects the channel: producers keep their backpressure
/// semantics (`Busy`, blocking sends) instead of seeing `Closed`, queued
/// commands and lane batches survive the restart, and the reborn worker
/// resumes the same queue. The shard's health is published through
/// [`crate::ShardHealth`] in the shared stats: `Quarantined` while down
/// (queries annotate answers via the `*_checked` variants), back to `Live`
/// after the reseed, and `Dead` once the restart budget
/// ([`EngineConfig::worker_restart_limit`]) is exhausted — at which point
/// the original panic is resumed so [`Engine::shutdown`] reports the shard
/// in a typed [`ShutdownError`] instead of aborting.
fn supervise(
    shard: usize,
    config: EngineConfig,
    shared: Arc<ShardShared>,
    pool: Arc<BufferPool>,
    obs: Option<Arc<EngineObs>>,
    first: ShardWorker,
    queue: std::sync::mpsc::Receiver<ShardCommand>,
) -> ShardFinal {
    use std::sync::atomic::Ordering;
    let mut worker = first;
    loop {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run(&queue)));
        let payload = match outcome {
            Ok(fin) => return fin,
            Err(payload) => payload,
        };
        shared.stats.set_health(ShardHealth::Quarantined);
        let restarts = shared.stats.restarts.load(Ordering::Relaxed);
        let published_epoch = shared.snapshot.get().epoch;
        if let Some(obs) = &obs {
            obs.trace.push(
                obs.now_ns(),
                TraceKind::ShardQuarantined,
                shard as u32,
                restarts,
                published_epoch,
            );
        }
        if restarts >= config.worker_restart_limit {
            shared.stats.set_health(ShardHealth::Dead);
            // Joining this thread now observes the original panic; the
            // engine surfaces it as a typed `ShutdownError`.
            std::panic::resume_unwind(payload);
        }
        // Test hook: hold the quarantine open so degraded queries are
        // reliably observable (no-op without a fault plan).
        if let Some(delay) = config.fault.as_ref().and_then(|f| f.restart_delay()) {
            std::thread::sleep(delay);
        }
        worker = ShardWorker::reseed(shard, &config, shared.clone(), pool.clone(), obs.clone());
        shared.stats.restarts.fetch_add(1, Ordering::Relaxed);
        shared.stats.set_health(ShardHealth::Live);
        if let Some(obs) = &obs {
            obs.trace.push(
                obs.now_ns(),
                TraceKind::WorkerRestart,
                shard as u32,
                restarts + 1,
                published_epoch,
            );
        }
    }
}

/// A multi-threaded sharded ingestion engine.
///
/// Construction spawns one worker thread per shard; [`Engine::handle`] hands
/// out cloneable [`EngineHandle`]s for concurrent producers and queriers;
/// [`Engine::shutdown`] drains gracefully and returns the final per-shard
/// operator state.
pub struct Engine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<ShardFinal>>,
    flusher: Option<Flusher>,
    reporter: Option<Reporter>,
}

impl Engine {
    /// Spawns an engine with the given configuration and no lifted
    /// operators.
    pub fn spawn(config: EngineConfig) -> Engine {
        Engine::builder(config).spawn()
    }

    /// Starts building an engine (add lifted operators, then `spawn`).
    pub fn builder(config: EngineConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// Recovers an engine from the snapshot store at `dir`: loads the
    /// latest consistent persisted epoch, replays it into fresh shard
    /// workers (summaries, Count-Min sketches, sliding windows, stream
    /// lengths, and the router's hot-key set), and resumes — appending
    /// future epochs to the same log.
    ///
    /// The recovered engine answers `heavy_hitters`/`estimate` for the
    /// persisted prefix of `m` items with the same one-sided `ε·m` bound as
    /// the engine that wrote the snapshot: serialisation is exact and the
    /// persisted epoch is a consistent cut, so the mergeable-summaries
    /// accounting is unchanged (see `psfa-store`).
    ///
    /// `config` must describe the same engine shape the snapshot was taken
    /// with (shard count, φ/ε, window, Count-Min parameters), and a
    /// snapshot with split hot keys requires a splitting (skew-aware)
    /// routing policy; mismatches are reported as
    /// [`StoreError::ShardCountMismatch`] /
    /// [`StoreError::ConfigMismatch`]. `config.persistence` may carry
    /// tuning knobs; its directory is overridden by `dir`. Lifted operators
    /// are not persisted — recovered engines start with none.
    pub fn recover(dir: impl AsRef<Path>, mut config: EngineConfig) -> Result<Engine, StoreError> {
        let pcfg = match config.persistence.take() {
            Some(mut pcfg) => {
                pcfg.dir = dir.as_ref().to_path_buf();
                pcfg
            }
            None => PersistenceConfig::new(dir.as_ref()),
        };
        let store = SnapshotStore::open(&pcfg.dir, pcfg.retain_epochs, pcfg.segment_max_records)?;
        let latest = store.latest_epoch().ok_or(StoreError::NoSnapshot)?;
        let record = store.load(latest)?;
        if record.shards.len() != config.shards {
            return Err(StoreError::ShardCountMismatch {
                persisted: record.shards.len(),
                configured: config.shards,
            });
        }
        if record.phi != config.phi || record.epsilon != config.epsilon {
            return Err(StoreError::ConfigMismatch("phi/epsilon differ"));
        }
        match (&record.window, config.window) {
            (None, None) => {}
            (Some(ws), Some(n)) if ws.size == n && ws.panes as usize == config.window_panes => {}
            _ => {
                return Err(StoreError::ConfigMismatch(
                    "sliding-window size or pane count differs",
                ));
            }
        }
        for state in &record.shards {
            let sketch = state.count_min.sketch();
            if sketch.seed() != config.cm_seed {
                return Err(StoreError::ConfigMismatch("count-min seed differs"));
            }
            if sketch.epsilon().to_bits() != config.cm_epsilon.to_bits()
                || sketch.delta().to_bits() != config.cm_delta.to_bits()
            {
                return Err(StoreError::ConfigMismatch("count-min epsilon/delta differ"));
            }
        }
        // A snapshot with split (replicated) keys needs a router that will
        // honour *all* the promotions: under plain hash routing `placement`
        // would report `Owner` for keys whose mass is spread across shards,
        // and a skew router whose hot capacity is below the persisted hot
        // set would silently truncate it — either way point queries on the
        // dropped keys would lose most of their count.
        if !record.hot_keys.is_empty() {
            match &config.routing {
                psfa_stream::RoutingPolicy::Hash => {
                    return Err(StoreError::ConfigMismatch(
                        "snapshot has split hot keys but the config routes by hash",
                    ));
                }
                psfa_stream::RoutingPolicy::SkewAware { hot_capacity, .. } => {
                    let capacity = hot_capacity.unwrap_or_else(|| {
                        psfa_stream::SkewAwareRouter::default_hot_capacity(config.shards)
                    });
                    if record.hot_keys.len() > capacity {
                        return Err(StoreError::ConfigMismatch(
                            "persisted hot keys exceed the configured hot_capacity",
                        ));
                    }
                }
            }
        }
        config.persistence = Some(pcfg);
        let mut builder = EngineBuilder::new(config);
        builder.recovered = Some(record);
        builder.preopened_store = Some(store);
        builder.try_spawn()
    }

    /// A cloneable handle for ingestion and live queries.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Blocks until every minibatch enqueued *before this call* has been
    /// processed by its shard. Returns a typed [`ShutdownError`] naming
    /// any permanently dead shards whose barriers could not be
    /// acknowledged (see [`EngineHandle::drain`]).
    pub fn drain(&self) -> Result<(), ShutdownError> {
        self.handle.drain()
    }

    /// Drains, stops every worker, and returns the final per-shard state.
    ///
    /// Outstanding [`EngineHandle`]s stay valid for queries against the last
    /// published snapshots, but further [`EngineHandle::ingest`] calls fail
    /// with a clean-rejection [`IngestError`] — including calls racing this
    /// shutdown: every `ingest` that returned `Ok` is guaranteed to be
    /// processed.
    ///
    /// A shard whose worker died permanently (exhausted its restart budget
    /// after repeated panics) is reported in a typed [`ShutdownError`]
    /// instead of propagating the panic to the caller; its last published
    /// snapshot remains queryable through outstanding handles.
    pub fn shutdown(mut self) -> Result<EngineReport, ShutdownError> {
        // Stop the reporter first: it queries through the handle, and there
        // is no point rendering tables against a draining engine.
        if let Some(mut reporter) = self.reporter.take() {
            reporter.stop();
        }
        // Closing the fence waits for every in-flight enqueue (which holds
        // the fence's shared side across its sends) to finish, and makes
        // later enqueues fail fast. Everything successfully sent is
        // therefore FIFO-ordered *before* the Shutdown commands below —
        // workers process all of it before exiting.
        self.handle.fence.close();
        // Stop the flusher with one final snapshot (workers are still
        // draining their queues, so the cut captures every accepted batch).
        if let Some(flusher) = self.flusher.take() {
            flusher.finish();
        }
        for sender in self.handle.senders.iter() {
            // A send error means the worker already exited; shutdown
            // proceeds to join either way.
            let _ = sender.send(ShardCommand::Shutdown);
        }
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut dead_shards = Vec::new();
        for (shard, worker) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            match worker.join() {
                Ok(fin) => shards.push(fin),
                // The supervisor resumed the panic after exhausting the
                // restart budget: report the shard, never re-panic here.
                Err(_) => dead_shards.push(shard),
            }
        }
        if dead_shards.is_empty() {
            Ok(EngineReport {
                epsilon: self.handle.epsilon,
                shards,
            })
        } else {
            Err(ShutdownError { dead_shards })
        }
    }

    /// Stops the engine as if the process had been killed: worker threads
    /// are torn down cleanly, but — unlike [`Engine::shutdown`] — **no
    /// final snapshot is cut**, so the store keeps only what the flusher
    /// (or an explicit [`EngineHandle::snapshot_now`]) already made
    /// durable. Queued minibatches that were never persisted are lost,
    /// exactly as in a real crash; use [`Engine::recover`] to restart from
    /// the latest consistent epoch. Intended for crash-recovery tests and
    /// chaos drills.
    pub fn kill(mut self) {
        if let Some(mut reporter) = self.reporter.take() {
            reporter.stop();
        }
        self.handle.fence.close();
        if let Some(flusher) = self.flusher.take() {
            flusher.abort();
        }
        for sender in self.handle.senders.iter() {
            let _ = sender.send(ShardCommand::Shutdown);
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

impl Drop for Engine {
    /// Dropping an engine without [`Engine::shutdown`] or [`Engine::kill`]
    /// behaves like a crash towards the store: the flusher is stopped
    /// without a final snapshot.
    fn drop(&mut self) {
        if let Some(mut reporter) = self.reporter.take() {
            reporter.stop();
        }
        if let Some(flusher) = self.flusher.take() {
            flusher.abort();
        }
    }
}

/// Cloneable handle for concurrent ingestion and live cross-shard queries.
///
/// ## Consistency model
///
/// Ingestion is split by the configured [`Router`]: under hash routing each
/// key is owned by exactly one shard; under skew-aware routing a hot key's
/// occurrences are spread across all shards and its per-shard counts are
/// *summed* at query time. Queries merge per-shard [`ShardSnapshot`]s
/// published under an epoch discipline: each snapshot is internally
/// consistent at its shard's epoch, and epochs only move forward. A
/// cross-shard query therefore sees, for every shard, *some* recently
/// completed prefix of that shard's substream — exactly the guarantee a
/// minibatch system gives between batches — and the paper's one-sided error
/// bounds hold for the observed prefix: every occurrence lands on exactly
/// one shard, so summed estimates never exceed true frequencies and
/// underestimate by at most `Σ_s ε · m_s = ε · m` (the mergeable-summaries
/// accounting of [`psfa_freq::MgSummary::merge`] applied at query time).
#[derive(Clone)]
pub struct EngineHandle {
    pub(crate) senders: Arc<Vec<SyncSender<ShardCommand>>>,
    pub(crate) shared: Arc<Vec<Arc<ShardShared>>>,
    pub(crate) router: Arc<dyn Router>,
    /// Recycles routed sub-batch buffers between producers and workers, so
    /// steady-state ingestion allocates nothing (see [`BufferPool`]).
    pub(crate) pool: Arc<BufferPool>,
    /// Orders whole minibatches against snapshot cuts and shutdown:
    /// enqueues hold the fence's shared side across their sends, so a cut
    /// (or [`Engine::shutdown`]) serialises strictly between minibatches.
    pub(crate) fence: Arc<IngestFence>,
    /// The global window's logical item clock, when a window is
    /// configured: accepted items tick it (under the ingest guard), and
    /// the producer that observes a `slide` crossing cuts the boundary.
    pub(crate) window_fence: Option<Arc<WindowFence>>,
    /// Snapshot machinery, when persistence is configured.
    pub(crate) persister: Option<Arc<Persister>>,
    /// Minibatches accepted so far (one per successful `ingest` call, one
    /// per accepted pre-routed `enqueue`/`try_enqueue`, one per
    /// [`crate::Producer::ingest`]); the flusher's `interval_batches`
    /// counts against this.
    pub(crate) accepted_batches: Arc<std::sync::atomic::AtomicU64>,
    /// Engine-wide gate id allocator for cut-like commands (boundaries,
    /// barriers, persistence cuts) — shared with the persister so gate ids
    /// stay unique across all cut kinds. Ids are only compared for
    /// equality (a lane mark against its command), so allocation is a
    /// relaxed fetch-add inside the exclusive cut.
    pub(crate) gates: Arc<std::sync::atomic::AtomicU64>,
    /// Thread-local producer substreams ([`crate::Producer`] in
    /// thread-local mode): each entry is a producer-private shard whose
    /// summaries queries merge in at read time.
    pub(crate) locals: Arc<std::sync::Mutex<Vec<Arc<ShardShared>>>>,
    /// The engine configuration (producer construction needs the mode
    /// flag and the accuracy parameters).
    pub(crate) config: Arc<EngineConfig>,
    /// Observability recorders, when [`crate::ObsConfig`] is set. All
    /// recording is relaxed telemetry: it never adds ordering the data
    /// plane relies on (see the ordering contract in `shard.rs`).
    pub(crate) obs: Option<Arc<EngineObs>>,
    phi: f64,
    epsilon: f64,
    window: Option<u64>,
    window_panes: usize,
    /// Per-shard queue capacity in minibatches — the admission threshold
    /// of [`EngineHandle::try_ingest`].
    pub(crate) queue_capacity: usize,
}

impl EngineHandle {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The engine's heavy-hitter threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The engine's estimation error ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The global sliding-window size `n_W`, when configured.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// Number of panes the global window is divided into.
    pub fn window_panes(&self) -> usize {
        self.window_panes
    }

    /// The window slide in items (`n_W / panes`), when configured.
    pub fn window_slide(&self) -> Option<u64> {
        self.window.map(|n| n / self.window_panes as u64)
    }

    /// Routes one minibatch through the configured [`Router`] and enqueues
    /// the per-shard sub-batches, blocking while any target queue is full
    /// (backpressure).
    ///
    /// Safe to call from many threads at once; item order per key is
    /// preserved per producer. Atomic with respect to [`Engine::shutdown`]:
    /// `Ok` means the whole minibatch will be processed, and an error from a
    /// graceful shutdown is a *clean rejection* — none of it was enqueued.
    /// Only a shard worker dying mid-call (a panic, never a graceful stop)
    /// can leave the batch partially delivered; the returned [`IngestError`]
    /// reports how many per-shard sub-batches had already been enqueued so
    /// the caller can account for the partial application.
    pub fn ingest(&self, minibatch: &[u64]) -> Result<(), IngestError> {
        if minibatch.is_empty() {
            return Ok(());
        }
        {
            // One fence guard across every per-shard send: a racing
            // shutdown or snapshot cut either happens entirely before this
            // call (Err / cut excludes the batch) or entirely after it
            // (Ok, everything enqueued and included).
            let Some(guard) = self.fence.enter() else {
                return Err(IngestError::rejected());
            };
            // Route into pooled buffers: the sub-batch `Vec`s sent below
            // were recycled from the workers' return lanes, so a
            // steady-state ingest call performs no heap allocation.
            let mut parts = self.pool.checkout();
            self.router.partition_into(minibatch, &mut parts);
            self.trace_hot_promotions();
            let parts_total = parts.iter().filter(|p| !p.is_empty()).count();
            let mut parts_delivered = 0usize;
            let mut delivery_failed = false;
            for (shard, slot) in parts.iter_mut().enumerate() {
                if slot.is_empty() {
                    continue;
                }
                if self.send_part(shard, std::mem::take(slot)).is_err() {
                    delivery_failed = true;
                    break;
                }
                parts_delivered += 1;
            }
            // The container (and any unsent capacity) goes back either way.
            self.pool.checkin(parts);
            if delivery_failed {
                return Err(IngestError {
                    parts_delivered,
                    parts_total,
                });
            }
            // The window clock ticks under the same guard as the sends, so
            // a boundary cut orders before or after the whole minibatch —
            // never between its per-shard parts. The batched claim flags
            // whether this batch crossed a boundary; only then does the
            // producer pay for the poll (most batches skip it entirely).
            let boundary_due = match &self.window_fence {
                Some(windows) => windows.claim(&guard, minibatch.len() as u64).due,
                None => false,
            };
            self.accepted_batches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            drop(guard);
            if boundary_due {
                self.cut_due_window_boundaries();
            }
        }
        Ok(())
    }

    /// Non-blocking [`EngineHandle::ingest`]: routes the minibatch, then
    /// *admits* it only if every target shard's queue has room, so a full
    /// engine surfaces as [`TryIngestError::Busy`] instead of a stalled
    /// caller — the backpressure primitive `psfa-serve` turns into `Busy`
    /// responses.
    ///
    /// [`TryIngestError::Busy`] is always a **clean rejection**: the check
    /// runs before any send, so nothing was enqueued. A graceful shutdown
    /// rejects cleanly too; only a shard worker *dying* (panicking)
    /// between this call's sends can leave the batch partially delivered —
    /// the same caveat as [`EngineHandle::ingest`]. The admission check is
    /// advisory under racing producers: a queue slot observed free can be
    /// taken by a concurrent producer before the send lands, in which case
    /// the send blocks for that one batch — a write stall bounded by the
    /// race window, never unbounded buffering.
    pub fn try_ingest(&self, minibatch: &[u64]) -> Result<(), TryIngestError> {
        if minibatch.is_empty() {
            return Ok(());
        }
        {
            let Some(guard) = self.fence.enter() else {
                return Err(TryIngestError::Closed);
            };
            let mut parts = self.pool.checkout();
            self.router.partition_into(minibatch, &mut parts);
            self.trace_hot_promotions();
            // Admission: every target shard must have queue room *now*.
            // Depth is derived from the monotone stat counters (processed
            // read before enqueued, so it never under-reports room).
            let full = parts.iter().enumerate().any(|(shard, part)| {
                !part.is_empty()
                    && self.shared[shard].stats.snapshot(shard).queue_depth
                        >= self.queue_capacity as u64
            });
            if full {
                self.pool.checkin(parts);
                return Err(TryIngestError::Busy);
            }
            for (shard, slot) in parts.iter_mut().enumerate() {
                if slot.is_empty() {
                    continue;
                }
                if self.send_part(shard, std::mem::take(slot)).is_err() {
                    self.pool.checkin(parts);
                    return Err(TryIngestError::Closed);
                }
            }
            self.pool.checkin(parts);
            let boundary_due = match &self.window_fence {
                Some(windows) => windows.claim(&guard, minibatch.len() as u64).due,
                None => false,
            };
            self.accepted_batches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            drop(guard);
            if boundary_due {
                self.cut_due_window_boundaries();
            }
        }
        Ok(())
    }

    /// Cuts any window boundary the logical clock has crossed (two atomic
    /// loads when none is due). Must not be called while holding an ingest
    /// guard — the cut takes the fence exclusively. `pub(crate)`: lane
    /// producers ([`crate::Producer`]) cut the boundaries their claims
    /// flagged as due.
    pub(crate) fn cut_due_window_boundaries(&self) {
        let Some(windows) = &self.window_fence else {
            return;
        };
        match &self.obs {
            None => {
                windows.poll_cut(|seq| self.send_boundary(seq));
            }
            Some(obs) => {
                // Boundary cuts take the fence exclusively; their duration
                // is producer stall, recorded alongside snapshot cuts.
                let start = obs.now_ns();
                let cut = windows.poll_cut(|seq| {
                    self.send_boundary(seq);
                    let slide = windows.slide();
                    obs.trace.push(
                        obs.now_ns(),
                        TraceKind::Boundary,
                        NO_SHARD,
                        seq * slide,
                        seq,
                    );
                });
                if cut > 0 {
                    obs.fence_exclusive_wait
                        .record(obs.now_ns().saturating_sub(start));
                }
            }
        }
    }

    /// Enqueues one boundary marker on every shard's queue, stamping lane
    /// marks first so lane traffic obeys the same cut. Runs inside the
    /// window fence's exclusive cut ([`psfa_stream::WindowFence::poll_cut`]
    /// holds the ingest fence exclusively around the seal closure), which
    /// is what serialises these marks against every other gated send.
    fn send_boundary(&self, seq: u64) {
        use std::sync::atomic::Ordering;
        let gate = self.gates.fetch_add(1, Ordering::Relaxed);
        for (sender, shared) in self.senders.iter().zip(self.shared.iter()) {
            let fanin = shared.mark_lanes(gate);
            // A send error means that worker already exited; the
            // surviving shards still seal so queries stay aligned.
            let _ = sender.send(ShardCommand::Boundary { seq, gate, fanin });
        }
    }

    /// Emits a [`TraceKind::HotPromote`] event when the router's hot set
    /// changed since the last emission. Racing producers deduplicate on the
    /// monotone promotion epoch: exactly one of them wins the `fetch_max`
    /// for any given epoch and emits the event.
    pub(crate) fn trace_hot_promotions(&self) {
        use std::sync::atomic::Ordering;
        let Some(obs) = &self.obs else {
            return;
        };
        let promotions = self.router.promotions();
        if promotions > obs.promotions_seen.load(Ordering::Relaxed)
            && obs.promotions_seen.fetch_max(promotions, Ordering::Relaxed) < promotions
        {
            obs.trace.push(
                obs.now_ns(),
                TraceKind::HotPromote,
                NO_SHARD,
                promotions,
                self.router.hot_keys().len() as u64,
            );
        }
    }

    /// Advances the global window's logical clock by `items` positions
    /// *without* ingesting anything, cutting any boundary that becomes
    /// due. This is the caller-supplied-timestamp hook: an external clock
    /// (wall time, an upstream sequencer) can force panes to close during
    /// quiet periods so `sliding_*` answers keep sliding forward. Returns
    /// `false` when no window is configured or the engine is shut down.
    pub fn advance_window_clock(&self, items: u64) -> bool {
        let Some(windows) = &self.window_fence else {
            return false;
        };
        let boundary_due = {
            let Some(guard) = self.fence.enter() else {
                return false;
            };
            windows.claim(&guard, items).due
        };
        if boundary_due {
            self.cut_due_window_boundaries();
        }
        true
    }

    /// Enqueues one pre-routed sub-batch onto `shard`'s queue. Useful with
    /// [`psfa_stream::SplitGenerator`] when the caller splits upstream.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn enqueue(&self, shard: usize, part: Vec<u64>) -> Result<(), EngineClosed> {
        {
            // Hold the fence guard across the send: Engine::shutdown and
            // snapshot cuts then serialise after this batch, guaranteeing
            // the worker processes everything accepted here (see
            // shutdown()).
            let Some(guard) = self.fence.enter() else {
                return Err(EngineClosed);
            };
            let len = part.len() as u64;
            self.send_part(shard, part)?;
            let boundary_due = match &self.window_fence {
                Some(windows) => windows.claim(&guard, len).due,
                None => false,
            };
            self.accepted_batches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            drop(guard);
            if boundary_due {
                self.cut_due_window_boundaries();
            }
        }
        Ok(())
    }

    /// Sends one sub-batch; the caller must hold a fence guard.
    fn send_part(&self, shard: usize, part: Vec<u64>) -> Result<(), EngineClosed> {
        use std::sync::atomic::Ordering;
        let len = part.len() as u64;
        // Reserve the counters *before* the send: the instant the batch is
        // on the queue the worker may process it and bump
        // `items_processed`, and `items_enqueued >= items_processed` must
        // hold for every concurrent observer (the metrics invariant tests
        // sample it mid-flight). A blocked producer transiently
        // over-reports queue depth by its in-flight batch, which only
        // makes `try_ingest` admission more conservative. Relaxed:
        // monotone progress hints (see the ordering contract in
        // `shard.rs`).
        let stats = &self.shared[shard].stats;
        stats.items_enqueued.fetch_add(len, Ordering::Relaxed);
        stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
        let sent = match &self.obs {
            None => self.senders[shard]
                .send(ShardCommand::Batch(part))
                .map_err(|_| EngineClosed),
            Some(obs) => {
                // Backpressure accounting: an uncontended enqueue records a
                // zero wait with no clock read; only the blocking path (the
                // shard's queue was full) pays for timestamps.
                match self.senders[shard].try_send(ShardCommand::Batch(part)) {
                    Ok(()) => {
                        obs.enqueue_wait.record(0);
                        Ok(())
                    }
                    Err(TrySendError::Full(cmd)) => {
                        let start = obs.now_ns();
                        match self.senders[shard].send(cmd) {
                            Ok(()) => {
                                obs.enqueue_wait.record(obs.now_ns().saturating_sub(start));
                                Ok(())
                            }
                            Err(_) => Err(EngineClosed),
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => Err(EngineClosed),
                }
            }
        };
        if sent.is_err() {
            // The batch never reached the queue (the engine is shutting
            // down): undo the reservation so no phantom depth survives.
            stats.items_enqueued.fetch_sub(len, Ordering::Relaxed);
            stats.batches_enqueued.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }

    /// Non-blocking variant of [`EngineHandle::enqueue`]: returns the batch
    /// if the shard's queue is full so the caller can shed or retry.
    ///
    /// One caveat when a global window is configured: a *successful*
    /// enqueue whose items cross a window boundary places the boundary
    /// marker on **every** shard's queue before returning (skipping a
    /// boundary would desynchronise the aligned window), and a marker
    /// send waits for queue space exactly like a snapshot cut does — so
    /// that one call in `1 / slide` may wait for saturated workers to
    /// drain a slot. The shed/retry path (`Err(Full)`) never blocks.
    pub fn try_enqueue(&self, shard: usize, part: Vec<u64>) -> Result<(), TrySendError<Vec<u64>>> {
        use std::sync::atomic::Ordering;
        let mut boundary_due = false;
        let result = {
            let Some(guard) = self.fence.enter() else {
                return Err(TrySendError::Disconnected(part));
            };
            let len = part.len() as u64;
            // Reserve before the send (see `send_part`): the worker may
            // process the batch before a post-send increment would land,
            // breaking `items_enqueued >= items_processed` for observers.
            let stats = &self.shared[shard].stats;
            stats.items_enqueued.fetch_add(len, Ordering::Relaxed);
            stats.batches_enqueued.fetch_add(1, Ordering::Relaxed);
            match self.senders[shard].try_send(ShardCommand::Batch(part)) {
                Ok(()) => {
                    if let Some(obs) = &self.obs {
                        // Non-blocking by construction: a successful
                        // try_enqueue never waited.
                        obs.enqueue_wait.record(0);
                    }
                    if let Some(windows) = &self.window_fence {
                        boundary_due = windows.claim(&guard, len).due;
                    }
                    self.accepted_batches.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(err) => {
                    // Refused: undo the reservation so a shed batch leaves
                    // no phantom queue depth behind.
                    stats.items_enqueued.fetch_sub(len, Ordering::Relaxed);
                    stats.batches_enqueued.fetch_sub(1, Ordering::Relaxed);
                    match err {
                        TrySendError::Full(ShardCommand::Batch(part)) => {
                            Err(TrySendError::Full(part))
                        }
                        TrySendError::Disconnected(ShardCommand::Batch(part)) => {
                            Err(TrySendError::Disconnected(part))
                        }
                        _ => unreachable!("try_send returns the command it was given"),
                    }
                }
            }
        };
        if boundary_due {
            self.cut_due_window_boundaries();
        }
        result
    }

    /// Blocks until every minibatch enqueued — or accepted by a
    /// [`crate::Producer`] — before this call is processed.
    ///
    /// The barrier is a gated cut like any other: marks are stamped into
    /// every registered ingest lane and the commands are sent under the
    /// exclusive fence, so the workers drain lane traffic up to the same
    /// consistent cut before acknowledging. `cut_with` works on a closed
    /// fence, so draining remains valid through (and after) shutdown.
    ///
    /// A shard whose worker died permanently (marked [`ShardHealth::Dead`]
    /// after exhausting its restart budget) cannot acknowledge the
    /// barrier; such shards are reported in a typed [`ShutdownError`].
    /// Workers that exited through a *graceful* shutdown still count as
    /// drained — their queues were emptied before they left.
    pub fn drain(&self) -> Result<(), ShutdownError> {
        use std::sync::atomic::Ordering;
        let acks = self.fence.cut_with(|_cut| {
            let gate = self.gates.fetch_add(1, Ordering::Relaxed);
            let mut acks = Vec::with_capacity(self.shards());
            for (shard, (sender, shared)) in self.senders.iter().zip(self.shared.iter()).enumerate()
            {
                let fanin = shared.mark_lanes(gate);
                let (ack_tx, ack_rx) = sync_channel(1);
                if sender
                    .send(ShardCommand::Barrier {
                        ack: ack_tx,
                        gate,
                        fanin,
                    })
                    .is_ok()
                {
                    acks.push((shard, ack_rx));
                }
            }
            acks
        });
        let mut dead_shards = Vec::new();
        for (shard, ack) in acks {
            // A receive error means the worker exited: after a graceful
            // shutdown its queue was drained first (ack-equivalent), but a
            // permanently dead shard never processed the barrier.
            if ack.recv().is_err() && self.shared[shard].stats.health() == ShardHealth::Dead {
                dead_shards.push(shard);
            }
        }
        // Shards whose channel was already disconnected at send time.
        for (shard, shared) in self.shared.iter().enumerate() {
            if shared.stats.health() == ShardHealth::Dead && !dead_shards.contains(&shard) {
                dead_shards.push(shard);
            }
        }
        dead_shards.sort_unstable();
        if dead_shards.is_empty() {
            Ok(())
        } else {
            Err(ShutdownError { dead_shards })
        }
    }

    /// Runs a query body under the observability clock, recording its
    /// latency into the per-kind histogram. A single branch when
    /// observability is off.
    #[inline]
    fn timed<R>(&self, kind: QueryKind, f: impl FnOnce() -> R) -> R {
        match &self.obs {
            None => f(),
            Some(obs) => {
                let start = obs.now_ns();
                let out = f();
                obs.record_query(kind, start);
                out
            }
        }
    }

    /// Hands out a [`crate::Producer`]: a per-thread ingest endpoint that
    /// bypasses the shared shard channels. In the default (lanes) mode the
    /// producer owns one SPSC lane per shard and routes into them; with
    /// [`EngineConfig::thread_local_ingest`] it instead accumulates a
    /// private substream merged into queries at read time. One producer
    /// per thread — the endpoints are deliberately `!Sync` single-owner
    /// values; clone the handle and call this once per producer thread.
    pub fn producer(&self) -> crate::Producer {
        crate::Producer::new(self)
    }

    /// Current snapshots of every shard (each at its own epoch), followed
    /// by the snapshots of any thread-local producer substreams. Summaries
    /// are mergeable, so downstream accounting (`total_items`,
    /// `heavy_hitters`, `epochs`) treats the substreams exactly like extra
    /// shards: the summed one-sided error stays `Σ ε·m_s = ε·m`.
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        let mut snapshots: Vec<Arc<ShardSnapshot>> =
            self.shared.iter().map(|s| s.load_snapshot()).collect();
        let locals = self.locals();
        snapshots.extend(locals.iter().map(|s| s.load_snapshot()));
        snapshots
    }

    /// Locks the thread-local substream registry, recovering from poison.
    /// Recovery is safe: the registry is an append-only `Vec` of fully
    /// constructed `Arc`s, so a thread that panicked while holding the
    /// lock cannot have left it torn — the push either completed or never
    /// happened.
    pub(crate) fn locals(&self) -> std::sync::MutexGuard<'_, Vec<Arc<ShardShared>>> {
        self.locals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current staleness annotation: `Some` when any shard is quarantined
    /// or dead (its contribution to merged answers is its last published
    /// snapshot), `None` when every shard is live. The `*_checked` query
    /// variants attach this to their answers.
    pub fn degradation(&self) -> Option<Degraded> {
        use std::sync::atomic::Ordering;
        let mut stale_shards = Vec::new();
        let mut epoch_lag = 0u64;
        for (shard, shared) in self.shared.iter().enumerate() {
            if shared.stats.health().is_stale() {
                stale_shards.push(shard);
                let published = shared.snapshot.get().epoch;
                let live = shared.live_epoch.load(Ordering::Relaxed);
                epoch_lag = epoch_lag.max(live.saturating_sub(published));
            }
        }
        if stale_shards.is_empty() {
            None
        } else {
            Some(Degraded {
                stale_shards,
                epoch_lag,
            })
        }
    }

    /// [`EngineHandle::heavy_hitters`] with a staleness annotation:
    /// quarantined or dead shards contribute their last published snapshot
    /// (still one-sided — snapshot estimates never exceed true
    /// frequencies), and the wrapper reports which shards were stale and
    /// by how many batches. The plain query keeps its signature; use this
    /// variant when the caller needs to distinguish full-fidelity answers
    /// from degraded-but-bounded ones.
    pub fn heavy_hitters_checked(&self) -> Answered<Vec<HeavyHitter>> {
        let value = self.heavy_hitters();
        Answered {
            value,
            degraded: self.degradation(),
        }
    }

    /// [`EngineHandle::estimate`] with a staleness annotation (see
    /// [`EngineHandle::heavy_hitters_checked`]).
    pub fn estimate_checked(&self, item: u64) -> Answered<u64> {
        let value = self.estimate(item);
        Answered {
            value,
            degraded: self.degradation(),
        }
    }

    /// [`EngineHandle::cm_estimate`] with a staleness annotation (see
    /// [`EngineHandle::heavy_hitters_checked`]). Count-Min sketches live
    /// outside the workers and keep every add up to the panic, so a stale
    /// shard's overestimate bound is unaffected.
    pub fn cm_estimate_checked(&self, item: u64) -> Answered<u64> {
        let value = self.cm_estimate(item);
        Answered {
            value,
            degraded: self.degradation(),
        }
    }

    /// Where `item`'s count mass may live under the configured routing:
    /// a single owning shard, or replicated across all shards (hot keys
    /// under skew-aware routing).
    pub fn placement(&self, item: u64) -> Placement {
        self.router.placement(item)
    }

    /// The active router (for inspection; e.g. its current hot-key set).
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Total items reflected in the current snapshots (`m` of the observed
    /// prefix).
    pub fn total_items(&self) -> u64 {
        self.snapshots().iter().map(|s| s.stream_len).sum()
    }

    /// Per-shard epochs (minibatches processed) of the current snapshots.
    pub fn epochs(&self) -> Vec<u64> {
        self.snapshots().iter().map(|s| s.epoch).collect()
    }

    /// Live point-frequency estimate for `item`: one-sided,
    /// `f − ε·m ≤ f̂ ≤ f` over the observed prefix.
    ///
    /// Owner-routed keys are answered by the owning shard's snapshot alone;
    /// replicated (hot) keys are summed across every shard's snapshot — each
    /// shard underestimates its substream by at most `ε·m_s`, so the sum
    /// underestimates by at most `ε·m` and never overestimates.
    pub fn estimate(&self, item: u64) -> u64 {
        self.timed(QueryKind::Estimate, || {
            let sharded = match self.router.placement(item) {
                Placement::Owner(shard) => self.shared[shard].load_snapshot().estimate(item),
                Placement::Replicated => self
                    .shared
                    .iter()
                    .map(|s| s.load_snapshot().estimate(item))
                    .sum(),
            };
            // Thread-local substreams are unrouted: any key may appear in
            // any producer's substream, so they are always summed in.
            sharded + self.locals_estimate(item)
        })
    }

    /// Sum of `item`'s Misra–Gries estimates across the thread-local
    /// producer substreams (`0` when none are registered — lanes mode).
    fn locals_estimate(&self, item: u64) -> u64 {
        let locals = self.locals();
        locals
            .iter()
            .map(|s| s.load_snapshot().estimate(item))
            .sum()
    }

    /// The globally consistent sliding window at the latest boundary every
    /// shard has sealed: per-shard sealed windows *for the same boundary*
    /// merged by summing per-key estimates (the mergeable-summaries
    /// accounting, so estimates are one-sided within `ε·n_W` of the true
    /// window frequencies — see [`psfa_freq::windowed`]).
    ///
    /// Returns `None` when the engine runs without a window, before the
    /// first boundary (`slide = n_W / panes` items must be accepted
    /// first), or in the rare case that some shard lags the others by more
    /// boundaries than the snapshots retain — [`EngineHandle::drain`]
    /// realigns. **Router-independent**: the window covers the same global
    /// items whether keys are hash-owned or split by the skew-aware
    /// router.
    pub fn global_window(&self) -> Option<GlobalWindow> {
        self.window_fence.as_ref()?;
        let snapshots = self.snapshots();
        // The newest boundary *every* shard has sealed; each shard's
        // snapshot keeps a few boundaries of history, so a slightly
        // lagging shard does not force the query to fail.
        let seq = snapshots.iter().map(|s| s.latest_window_seq()).min()?;
        if seq == 0 {
            return None;
        }
        let aligned: Option<Vec<&psfa_freq::SealedWindow>> = snapshots
            .iter()
            .map(|s| s.window_at(seq).map(Arc::as_ref))
            .collect();
        GlobalWindow::merge(aligned?)
    }

    /// Live one-sided estimate of `item`'s frequency in the aligned global
    /// sliding window: `f − ε·n_W ≤ f̂ ≤ f` over the window's `n_W` items,
    /// under every routing policy (replicated hot keys are summed across
    /// shards like any other — each occurrence lands on exactly one
    /// shard). `0` when no aligned window is available yet (see
    /// [`EngineHandle::global_window`]).
    ///
    /// Each call merges the per-shard sealed windows; to probe many keys
    /// at one boundary, call [`EngineHandle::global_window`] once and use
    /// [`GlobalWindow::estimate`] on the result.
    pub fn sliding_estimate(&self, item: u64) -> u64 {
        self.timed(QueryKind::SlidingEstimate, || {
            self.global_window().map_or(0, |w| w.estimate(item))
        })
    }

    /// Live φ-heavy hitters of the aligned global sliding window, most
    /// frequent first: every item with window frequency `≥ φ·n_W` is
    /// reported and no item with window frequency `< (φ − ε)·n_W` is —
    /// the paper's sliding-window query, answered across shards. Empty
    /// when no aligned window is available yet.
    pub fn sliding_heavy_hitters(&self) -> Vec<HeavyHitter> {
        self.timed(QueryKind::SlidingHeavyHitters, || {
            self.global_window()
                .map_or_else(Vec::new, |w| w.heavy_hitters(self.phi, self.epsilon))
        })
    }

    /// Live Count-Min overestimate for `item` (`f ≤ f̂ ≤ f + ε_cm·m`).
    ///
    /// Owner-routed keys query the owning shard's sketch (error `ε_cm·m_s`);
    /// replicated keys sum the per-shard overestimates, which remains an
    /// overestimate with error at most `Σ_s ε_cm·m_s = ε_cm·m`.
    ///
    /// **Lock-free**: the sketches are relaxed-atomic
    /// ([`psfa_sketch::AtomicCountMin`]), so this never contends with the
    /// shard workers' batch updates. A query racing an update answers for a
    /// recent prefix of the shard's substream — never below what any
    /// published snapshot of that shard reflects (the publication
    /// `Release`/`Acquire` edge; see `shard.rs`).
    pub fn cm_estimate(&self, item: u64) -> u64 {
        self.timed(QueryKind::CmEstimate, || {
            let query_shard = |shard: usize| self.shared[shard].count_min.query(item);
            let sharded = match self.router.placement(item) {
                Placement::Owner(shard) => query_shard(shard),
                Placement::Replicated => (0..self.shards()).map(query_shard).sum(),
            };
            // Thread-local substreams are unrouted; always sum them in
            // (each sketch overestimates one-sidedly, so the sum does too).
            let locals = self.locals();
            sharded + locals.iter().map(|s| s.count_min.query(item)).sum::<u64>()
        })
    }

    /// Live φ-heavy hitters of the full stream, merged across shards from
    /// the current snapshots, most frequent first.
    ///
    /// Per-shard summary entries are **summed by key** before thresholding,
    /// so a hot key split across shards by the skew-aware router is judged
    /// by its global estimate, not its largest fragment. Snapshots keep
    /// their entries sorted by item, so the merge is a linear sorted merge
    /// ([`psfa_freq::merge_sum`]) — no hashing. Guarantees over the
    /// observed prefix of `m` items: every item with true frequency `≥ φm`
    /// is reported (its summed estimate is at least `f − ε·m ≥ (φ − ε)m`);
    /// no item with true frequency `< (φ − ε)m` is reported (summed
    /// estimates never overestimate).
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        self.timed(QueryKind::HeavyHitters, || {
            let snapshots = self.snapshots();
            let m: u64 = snapshots.iter().map(|s| s.stream_len).sum();
            let threshold = ((self.phi - self.epsilon) * m as f64).max(0.0);
            let mut merged: Vec<(u64, u64)> = Vec::new();
            for snapshot in &snapshots {
                if merged.is_empty() {
                    merged = snapshot.hh_entries.clone();
                } else if !snapshot.hh_entries.is_empty() {
                    merged = merge_sum(&merged, &snapshot.hh_entries);
                }
            }
            let mut out: Vec<HeavyHitter> = merged
                .into_iter()
                .filter(|&(_, est)| est as f64 >= threshold)
                .map(|(item, estimate)| HeavyHitter { item, estimate })
                .collect();
            out.sort_unstable_by(|a, b| b.estimate.cmp(&a.estimate).then(a.item.cmp(&b.item)));
            out
        })
    }

    /// Merges every shard's Count-Min sketch into one global sketch of the
    /// full stream (all shards share hash seeds, so the merge is exact).
    /// Lock-free: each shard's atomic sketch is snapshotted in place.
    pub fn merged_count_min(&self) -> ParallelCountMin {
        let mut merged = self.shared[0].count_min.to_parallel();
        for shared in &self.shared[1..] {
            merged.merge(&shared.count_min.to_parallel());
        }
        let locals = self.locals();
        for local in locals.iter() {
            merged.merge(&local.count_min.to_parallel());
        }
        merged
    }

    /// Point-in-time shard and queue metrics, including the active routing
    /// policy, its current hot-key set, the window fence's boundary
    /// counters (when a global window is configured), and — when
    /// persistence is configured — the snapshot store's counters.
    pub fn metrics(&self) -> EngineMetrics {
        let shards: Vec<_> = self
            .shared
            .iter()
            .enumerate()
            .map(|(shard, s)| s.stats.snapshot(shard))
            .collect();
        let window = self.window_fence.as_ref().map(|windows| {
            let boundaries = windows.boundaries();
            WindowMetrics {
                slide: windows.slide(),
                panes: self.window_panes as u32,
                boundaries,
                // How far the slowest shard's sealed window trails the
                // fence: markers still sitting in its queue. Persistent
                // lag beyond the snapshot history makes aligned queries
                // fail, so it is worth watching.
                max_shard_lag: shards
                    .iter()
                    .map(|s| boundaries.saturating_sub(s.window_seq))
                    .max()
                    .unwrap_or(0),
            }
        });
        let pool = self.pool.counters();
        let work_units: Vec<u64> = self.shared.iter().map(|s| s.work.total()).collect();
        let obs = self.obs.as_ref().map(|obs| {
            obs.report(
                pool,
                self.fence.cuts(),
                work_units.iter().sum(),
                RECENT_TRACE_EVENTS,
            )
        });
        EngineMetrics {
            shards,
            router: self.router.name(),
            hot_keys: self.router.hot_keys(),
            window,
            store: self.persister.as_ref().map(|p| p.metrics()),
            pool,
            work_units,
            obs,
        }
    }

    /// True when the engine was configured with an [`crate::ObsConfig`].
    pub fn observability_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Drains the bounded trace ring: every retained event since the last
    /// drain, oldest first. Under sustained load the ring overwrites its
    /// oldest entries, so long-idle consumers see the most recent
    /// `ObsConfig::trace_capacity` events (the drop count is reported in
    /// the [`psfa_obs::ObsReport`] counters). Empty when observability is
    /// off.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.obs
            .as_ref()
            .map_or_else(Vec::new, |obs| obs.trace.drain())
    }

    /// Renders the current observability report in the Prometheus text
    /// exposition format (see [`psfa_obs::ObsReport::prometheus_text`]).
    /// `None` when observability is off.
    pub fn prometheus_text(&self) -> Option<String> {
        self.metrics().obs.map(|report| report.prometheus_text())
    }

    // ---- persistence & time travel ------------------------------------

    /// True when the engine was configured with a snapshot store.
    pub fn persistence_enabled(&self) -> bool {
        self.persister.is_some()
    }

    fn persister(&self) -> Result<&Arc<Persister>, StoreError> {
        self.persister.as_ref().ok_or(StoreError::Disabled)
    }

    /// Cuts one epoch snapshot *now*, synchronously: a consistent cut
    /// across all shards is taken, appended durably to the segment log, and
    /// compacted. Returns the persisted epoch number. Runs concurrently
    /// with ingestion (producers are excluded only for the microseconds of
    /// the cut itself) and with the background flusher.
    pub fn snapshot_now(&self) -> Result<u64, StoreError> {
        self.persister()?.snapshot_once()
    }

    /// Epochs currently retained by the store, ascending.
    pub fn persisted_epochs(&self) -> Result<Vec<u64>, StoreError> {
        Ok(self.persister()?.with_store(|s| s.epochs()))
    }

    /// A time-travel view of the engine's state as of persisted epoch `E`
    /// (see [`EpochView`] for the query surface and its `ε·m` bounds).
    pub fn view_at(&self, epoch: u64) -> Result<EpochView, StoreError> {
        self.persister()?.with_store(|s| s.view_at(epoch))
    }

    /// The φ-heavy hitters exactly as the live engine reported them at the
    /// moment epoch `E` was cut.
    pub fn heavy_hitters_at(&self, epoch: u64) -> Result<Vec<HeavyHitter>, StoreError> {
        self.persister()?.with_store(|s| s.heavy_hitters_at(epoch))
    }

    /// One-sided point-frequency estimate for `item` as of persisted epoch
    /// `E` (`f − ε·m_E ≤ f̂ ≤ f` over the items reflected in the epoch).
    pub fn estimate_at(&self, item: u64, epoch: u64) -> Result<u64, StoreError> {
        self.persister()?.with_store(|s| s.estimate_at(item, epoch))
    }
}

/// Final state returned by [`Engine::shutdown`].
pub struct EngineReport {
    epsilon: f64,
    /// Per-shard final operator state, in shard order.
    pub shards: Vec<ShardFinal>,
}

impl EngineReport {
    /// Total items processed across shards.
    pub fn total_items(&self) -> u64 {
        self.shards.iter().map(|s| s.items).sum()
    }

    /// Merges the per-shard infinite-window estimators into one global
    /// estimator of the full stream (mergeable-summaries semantics; the
    /// global error stays `ε · m`).
    pub fn merged_estimator(&self) -> ParallelFrequencyEstimator {
        let mut merged = ParallelFrequencyEstimator::new(self.epsilon);
        for shard in &self.shards {
            merged.merge(shard.heavy_hitters.estimator());
        }
        merged
    }

    /// Consumes the report and returns the per-shard heavy-hitter trackers.
    pub fn into_heavy_hitters(self) -> Vec<InfiniteHeavyHitters> {
        self.shards.into_iter().map(|s| s.heavy_hitters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psfa_stream::{StreamGenerator, ZipfGenerator};
    use std::collections::HashMap;
    use std::sync::mpsc::TrySendError;

    fn config() -> EngineConfig {
        EngineConfig::with_shards(4)
            .queue_capacity(8)
            .heavy_hitters(0.05, 0.01)
    }

    #[test]
    fn ingest_drain_query_shutdown_roundtrip() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        let mut generator = ZipfGenerator::new(10_000, 1.3, 11);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut total = 0u64;
        for _ in 0..20 {
            let batch = generator.next_minibatch(2_000);
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            total += batch.len() as u64;
            handle.ingest(&batch).unwrap();
        }
        engine.drain().unwrap();
        assert_eq!(handle.total_items(), total);
        assert_eq!(handle.metrics().items_processed(), total);
        assert_eq!(handle.metrics().queue_depth(), 0);

        // One-sided point estimates.
        let slack = (0.01 * total as f64).ceil() as u64;
        for (&item, &f) in &truth {
            let est = handle.estimate(item);
            assert!(est <= f, "estimate {est} above truth {f}");
            assert!(
                est + slack >= f,
                "estimate {est} under truth {f} by more than εm"
            );
            assert!(
                handle.cm_estimate(item) >= f,
                "count-min must never underestimate"
            );
        }

        // Heavy hitters: no false negatives, no far false positives.
        let reported: Vec<u64> = handle.heavy_hitters().iter().map(|h| h.item).collect();
        for (&item, &f) in &truth {
            if f as f64 >= 0.05 * total as f64 {
                assert!(reported.contains(&item), "missed heavy hitter {item}");
            }
            if (f as f64) < (0.05 - 0.01) * total as f64 {
                assert!(!reported.contains(&item), "false positive {item}");
            }
        }

        let report = engine.shutdown().unwrap();
        assert_eq!(report.total_items(), total);
        // After shutdown the handle still answers queries but refuses
        // ingestion — cleanly, with nothing enqueued.
        assert_eq!(handle.total_items(), total);
        let err = handle.ingest(&[1, 2, 3]).unwrap_err();
        assert!(err.is_clean_rejection());

        // The merged estimator covers the full stream.
        let merged = report.merged_estimator();
        assert_eq!(merged.stream_len(), total);
        for (&item, &f) in &truth {
            assert!(merged.estimate(item) <= f);
        }
    }

    #[test]
    fn epochs_advance_and_snapshots_are_monotone() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        handle.ingest(&(0..1000u64).collect::<Vec<_>>()).unwrap();
        engine.drain().unwrap();
        let before = handle.epochs();
        handle.ingest(&(0..1000u64).collect::<Vec<_>>()).unwrap();
        engine.drain().unwrap();
        let after = handle.epochs();
        for (b, a) in before.iter().zip(&after) {
            assert!(a > b, "epochs must advance: {before:?} -> {after:?}");
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn keys_are_partitioned_not_duplicated() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        let batch: Vec<u64> = (0..10_000u64).flat_map(|k| [k, k]).collect();
        handle.ingest(&batch).unwrap();
        engine.drain().unwrap();
        // Every key lives on exactly one shard; summing shard stream lengths
        // must equal the batch length exactly.
        assert_eq!(handle.total_items(), batch.len() as u64);
        let m = handle.metrics();
        assert!(
            m.shards.iter().all(|s| s.items_processed > 0),
            "all shards used"
        );
        engine.shutdown().unwrap();
    }

    #[test]
    fn merged_count_min_sees_the_whole_stream() {
        let engine = Engine::spawn(config().count_min(0.001, 0.01, 5));
        let handle = engine.handle();
        let batch: Vec<u64> = (0..5_000u64).map(|i| i % 100).collect();
        handle.ingest(&batch).unwrap();
        engine.drain().unwrap();
        let merged = handle.merged_count_min();
        assert_eq!(merged.total(), batch.len() as u64);
        for item in 0..100u64 {
            assert!(merged.query(item) >= 50);
        }
        engine.shutdown().unwrap();
    }

    #[test]
    fn sliding_window_surface_is_exposed_when_configured() {
        // Window 10_000 over 8 panes ⇒ one boundary per 1250 items.
        let engine = Engine::spawn(config().sliding_window(10_000));
        let handle = engine.handle();
        assert_eq!(handle.window(), Some(10_000));
        assert_eq!(handle.window_slide(), Some(1_250));
        // Before the first boundary there is no aligned window yet.
        handle.ingest(&vec![42u64; 1_000]).unwrap();
        engine.drain().unwrap();
        assert!(handle.global_window().is_none());
        assert_eq!(handle.sliding_estimate(42), 0);
        // Crossing the slide cuts a boundary on every shard; the aligned
        // window now covers the whole sealed pane.
        handle.ingest(&vec![42u64; 500]).unwrap();
        engine.drain().unwrap();
        let window = handle.global_window().expect("boundary 1 sealed");
        assert_eq!(window.seq(), 1);
        assert_eq!(window.items(), 1_500);
        assert_eq!(handle.sliding_estimate(42), 1_500);
        assert_eq!(handle.sliding_estimate(43), 0);
        let hh = handle.sliding_heavy_hitters();
        assert_eq!(hh.first().map(|h| (h.item, h.estimate)), Some((42, 1_500)));
        let metrics = handle.metrics();
        let wm = metrics.window.expect("window metrics present");
        assert_eq!((wm.boundaries, wm.max_shard_lag), (1, 0));
        engine.shutdown().unwrap();
    }

    #[test]
    fn window_clock_can_be_advanced_without_traffic() {
        let engine = Engine::spawn(config().sliding_window(8_000).window_panes(4));
        let handle = engine.handle();
        handle.ingest(&vec![9u64; 1_000]).unwrap();
        engine.drain().unwrap();
        assert!(handle.global_window().is_none());
        // An external clock pushes the window forward during a quiet spell:
        // the open pane (the 1000 items) seals at the forced boundary.
        assert!(handle.advance_window_clock(1_000));
        engine.drain().unwrap();
        assert_eq!(handle.sliding_estimate(9), 1_000);
        // Three more boundaries slide the pane out of the 4-pane window.
        for _ in 0..4 {
            assert!(handle.advance_window_clock(2_000));
        }
        engine.drain().unwrap();
        assert_eq!(handle.sliding_estimate(9), 0);
        engine.shutdown().unwrap();
        assert!(!handle.advance_window_clock(1), "closed engine refuses");
    }

    #[test]
    fn every_accepted_ingest_is_processed_even_racing_shutdown() {
        // Producers hammer ingest while the main thread shuts down; every
        // batch for which ingest returned Ok must appear in the final
        // counts — none silently dropped in the shutdown race.
        for round in 0..10u64 {
            let engine = Engine::spawn(
                EngineConfig::with_shards(2)
                    .queue_capacity(2)
                    .heavy_hitters(0.05, 0.01),
            );
            let mut producers = Vec::new();
            for p in 0..3u64 {
                let handle = engine.handle();
                producers.push(std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    let batch: Vec<u64> = (0..200u64).map(|i| i * 3 + p).collect();
                    loop {
                        match handle.ingest(&batch) {
                            Ok(()) => accepted += batch.len() as u64,
                            Err(err) => {
                                // A graceful shutdown must reject the whole
                                // batch, never deliver part of it.
                                assert!(err.is_clean_rejection(), "partial delivery: {err}");
                                return accepted;
                            }
                        }
                    }
                }));
            }
            // Let the race land at varying points.
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            let report = engine.shutdown().unwrap();
            let accepted: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
            assert_eq!(
                report.total_items(),
                accepted,
                "round {round}: accepted batches must never be dropped"
            );
        }
    }

    #[test]
    fn rejected_ingest_leaves_no_phantom_queue_depth() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        handle.ingest(&[1, 2, 3, 4]).unwrap();
        let report = engine.shutdown().unwrap();
        assert_eq!(report.total_items(), 4);
        // Post-shutdown attempts are refused and must not move counters.
        assert_eq!(
            handle.ingest(&[5, 6, 7]),
            Err(IngestError {
                parts_delivered: 0,
                parts_total: 0
            })
        );
        assert!(matches!(
            handle.try_enqueue(0, vec![8]),
            Err(TrySendError::Disconnected(_))
        ));
        let m = handle.metrics();
        assert_eq!(m.items_enqueued(), 4);
        assert_eq!(m.items_processed(), 4);
        assert_eq!(
            m.queue_depth(),
            0,
            "refused batches must not inflate queue depth"
        );
    }

    #[test]
    fn skew_aware_engine_levels_load_and_keeps_one_sided_estimates() {
        // Half of all traffic is one hot key: hash routing pins it to one
        // shard, the skew-aware router spreads it.
        let hot = 42u64;
        let batch: Vec<u64> = (0..2_000u64)
            .map(|i| if i % 2 == 0 { hot } else { i })
            .collect();
        let run = |config: EngineConfig| {
            let engine = Engine::spawn(config);
            let handle = engine.handle();
            for _ in 0..20 {
                handle.ingest(&batch).unwrap();
            }
            engine.drain().unwrap();
            let metrics = handle.metrics();
            let est = handle.estimate(hot);
            let hh = handle.heavy_hitters();
            engine.shutdown().unwrap();
            (metrics, est, hh)
        };

        let (hash_metrics, ..) = run(config());
        let (skew_metrics, est, hh) = run(config().skew_aware_routing());

        // Accuracy: the replicated key's summed estimate stays one-sided.
        let f = 20_000u64; // 20 batches × 1000 occurrences
        let m = 40_000u64;
        assert!(est <= f, "summed estimate {est} above truth {f}");
        assert!(
            est + (0.01 * m as f64).ceil() as u64 >= f,
            "summed estimate {est} under truth {f} by more than εm"
        );
        // The hot key is reported once, not once per shard fragment.
        assert_eq!(hh.iter().filter(|h| h.item == hot).count(), 1);
        // Routing is visible in the metrics.
        assert_eq!(skew_metrics.router, "skew-aware");
        assert!(skew_metrics.hot_keys.contains(&hot));
        assert_eq!(hash_metrics.router, "hash");
        assert!(hash_metrics.hot_keys.is_empty());
        // And it levels the load.
        let hash_imb = hash_metrics.load_imbalance().unwrap();
        let skew_imb = skew_metrics.load_imbalance().unwrap();
        assert!(
            skew_imb < hash_imb,
            "skew imbalance {skew_imb:.3} must beat hash imbalance {hash_imb:.3}"
        );
    }

    fn tmpdir(label: &str) -> std::path::PathBuf {
        psfa_store::testutil::unique_temp_dir(&format!("engine-{label}"))
    }

    /// Manual-snapshot persistence config (interval too large for the
    /// background flusher to fire on its own).
    fn manual_persistence(dir: &std::path::Path) -> psfa_store::PersistenceConfig {
        psfa_store::PersistenceConfig::new(dir).interval_batches(u64::MAX / 2)
    }

    #[test]
    fn snapshot_kill_recover_roundtrip() {
        let dir = tmpdir("recover");
        let config = config().persistence(manual_persistence(&dir));
        let engine = Engine::spawn(config.clone());
        let handle = engine.handle();
        let mut generator = ZipfGenerator::new(5_000, 1.3, 7);
        for _ in 0..12 {
            handle.ingest(&generator.next_minibatch(1_500)).unwrap();
        }
        engine.drain().unwrap();
        let m_snap = handle.total_items();
        let live_hh = handle.heavy_hitters();
        let live_est: Vec<u64> = (0..50).map(|k| handle.estimate(k)).collect();
        let epoch = handle.snapshot_now().unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(handle.persisted_epochs().unwrap(), vec![1]);

        // More traffic after the snapshot, then a crash: the post-snapshot
        // items must be lost, the persisted prefix intact.
        for _ in 0..5 {
            handle.ingest(&generator.next_minibatch(1_500)).unwrap();
        }
        engine.drain().unwrap();
        assert!(handle.total_items() > m_snap);
        engine.kill();

        let recovered = Engine::recover(&dir, config).unwrap();
        let handle2 = recovered.handle();
        assert_eq!(
            handle2.total_items(),
            m_snap,
            "recovered = persisted prefix"
        );
        assert_eq!(handle2.heavy_hitters(), live_hh);
        for (k, &est) in live_est.iter().enumerate() {
            assert_eq!(handle2.estimate(k as u64), est);
        }
        // Time travel reproduces the live answer at the cut exactly.
        assert_eq!(handle2.heavy_hitters_at(1).unwrap(), live_hh);
        // The recovered engine keeps going and persists epoch 2.
        handle2.ingest(&generator.next_minibatch(1_000)).unwrap();
        recovered.drain().unwrap();
        assert_eq!(handle2.snapshot_now().unwrap(), 2);
        assert_eq!(handle2.persisted_epochs().unwrap(), vec![1, 2]);
        // Epoch 1's answer is unchanged by later epochs.
        assert_eq!(handle2.heavy_hitters_at(1).unwrap(), live_hh);
        let metrics = handle2.metrics();
        let store = metrics.store.expect("store metrics present");
        assert_eq!(store.last_epoch, 2);
        assert!(store.bytes_written > 0);
        recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn graceful_shutdown_cuts_a_final_snapshot() {
        let dir = tmpdir("final-cut");
        let config = config().persistence(manual_persistence(&dir));
        let engine = Engine::spawn(config.clone());
        let handle = engine.handle();
        handle.ingest(&(0..3_000u64).collect::<Vec<_>>()).unwrap();
        let report = engine.shutdown().unwrap();
        assert_eq!(report.total_items(), 3_000);
        // No explicit snapshot was taken, but shutdown flushed one.
        let recovered = Engine::recover(&dir, config).unwrap();
        assert_eq!(recovered.handle().total_items(), 3_000);
        recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_flusher_persists_on_interval() {
        let dir = tmpdir("flusher");
        let config = config().persistence(
            psfa_store::PersistenceConfig::new(&dir)
                .interval_batches(2)
                .poll(std::time::Duration::from_millis(1)),
        );
        let engine = Engine::spawn(config);
        let handle = engine.handle();
        for _ in 0..10 {
            handle.ingest(&(0..500u64).collect::<Vec<_>>()).unwrap();
        }
        engine.drain().unwrap();
        // Give the flusher a few polls to notice the interval.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let persisted = handle
                .metrics()
                .store
                .expect("store metrics")
                .epochs_persisted;
            if persisted > 0 || std::time::Instant::now() > deadline {
                assert!(persisted > 0, "flusher never cut an epoch");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_rejects_mismatched_configs() {
        let dir = tmpdir("mismatch");
        let config = config().persistence(manual_persistence(&dir));
        let engine = Engine::spawn(config.clone());
        engine.handle().ingest(&[1, 2, 3]).unwrap();
        engine.handle().snapshot_now().unwrap();
        engine.kill();
        assert!(matches!(
            Engine::recover(&dir, EngineConfig::with_shards(8).heavy_hitters(0.05, 0.01)),
            Err(StoreError::ShardCountMismatch {
                persisted: 4,
                configured: 8
            })
        ));
        assert!(matches!(
            Engine::recover(&dir, config.clone().heavy_hitters(0.2, 0.1)),
            Err(StoreError::ConfigMismatch(_))
        ));
        assert!(matches!(
            Engine::recover(tmpdir("empty"), config),
            Err(StoreError::NoSnapshot)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_rejects_hash_routing_when_the_snapshot_split_keys() {
        // A snapshot whose hot set is non-empty must not recover onto a
        // hash router: placements would report Owner for split keys and
        // point queries would drop most of their mass.
        let dir = tmpdir("hot-hash");
        let config = config()
            .skew_aware_routing()
            .persistence(manual_persistence(&dir));
        let engine = Engine::spawn(config.clone());
        let handle = engine.handle();
        // Half the traffic on one key: guaranteed promotion.
        let batch: Vec<u64> = (0..4_000u64)
            .map(|i| if i % 2 == 0 { 42 } else { i })
            .collect();
        for _ in 0..10 {
            handle.ingest(&batch).unwrap();
        }
        engine.drain().unwrap();
        assert!(!handle.metrics().hot_keys.is_empty());
        handle.snapshot_now().unwrap();
        engine.kill();

        let hash_config = config.clone().routing(psfa_stream::RoutingPolicy::Hash);
        assert!(matches!(
            Engine::recover(&dir, hash_config),
            Err(StoreError::ConfigMismatch(_))
        ));
        // The matching (skew-aware) config still recovers.
        let recovered = Engine::recover(&dir, config).unwrap();
        assert_eq!(recovered.handle().placement(42), Placement::Replicated);
        recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_now_without_persistence_is_disabled() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        assert!(!handle.persistence_enabled());
        assert!(matches!(handle.snapshot_now(), Err(StoreError::Disabled)));
        assert!(matches!(
            handle.persisted_epochs(),
            Err(StoreError::Disabled)
        ));
        engine.shutdown().unwrap();
    }

    #[test]
    fn snapshot_after_shutdown_reports_closed() {
        let dir = tmpdir("closed");
        let engine = Engine::spawn(config().persistence(manual_persistence(&dir)));
        let handle = engine.handle();
        handle.ingest(&[1, 2, 3]).unwrap();
        engine.shutdown().unwrap();
        assert!(matches!(handle.snapshot_now(), Err(StoreError::Closed)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observability_reports_latencies_and_traces() {
        let dir = tmpdir("obs");
        let engine = Engine::spawn(
            config()
                .sliding_window(8_000)
                .persistence(manual_persistence(&dir))
                .observe(),
        );
        let handle = engine.handle();
        assert!(handle.observability_enabled());
        let mut generator = ZipfGenerator::new(5_000, 1.2, 3);
        for _ in 0..8 {
            handle.ingest(&generator.next_minibatch(1_500)).unwrap();
        }
        engine.drain().unwrap();
        let _ = handle.estimate(1);
        let _ = handle.cm_estimate(1);
        let _ = handle.heavy_hitters();
        let _ = handle.sliding_estimate(1);
        let _ = handle.sliding_heavy_hitters();
        handle.snapshot_now().unwrap();

        let report = handle.metrics().obs.expect("obs report present");
        // Every ingest recorded an enqueue wait (one sample per delivered
        // per-shard sub-batch) and every drained batch a service time.
        let waits = report.percentiles("enqueue_wait").unwrap();
        assert!(waits.count >= 8);
        assert!(report.percentiles("batch_service").unwrap().count >= 8);
        // Workers published at least once per shard, tagged with a reason.
        assert!(report.percentiles("publish_staleness").unwrap().count >= 4);
        let republished: u64 = ["membership", "boundary", "drain", "idle", "query_refresh"]
            .iter()
            .map(|r| report.counter(&format!("republish_{r}")).unwrap())
            .sum();
        assert!(republished >= 4);
        // Each exercised query kind has exactly one latency sample.
        for kind in [
            "query_estimate",
            "query_cm_estimate",
            "query_heavy_hitters",
            "query_sliding_estimate",
            "query_sliding_heavy_hitters",
        ] {
            assert_eq!(report.percentiles(kind).unwrap().count, 1, "{kind}");
        }
        // The snapshot cut and append were timed.
        assert!(report.percentiles("fence_exclusive_wait").unwrap().count >= 1);
        assert_eq!(report.percentiles("persist_append").unwrap().count, 1);
        assert!(report.counter("pool_hit").unwrap() + report.counter("pool_miss").unwrap() > 0);
        assert!(report.counter("work_units").unwrap() > 0);

        // The trace ring saw the lifecycle: worker starts, publishes, the
        // window boundary at 2000 items (slide 8000/8 = 1000), the persist.
        let events = handle.trace_events();
        let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::WorkerStart));
        assert!(kinds.contains(&TraceKind::EpochPublish));
        assert!(kinds.contains(&TraceKind::Boundary));
        assert!(kinds.contains(&TraceKind::EpochPersist));
        // Draining consumed them; a second drain starts empty.
        assert!(handle.trace_events().is_empty());

        let text = handle.prometheus_text().expect("exporter present");
        assert!(text.contains("enqueue_wait"));
        assert!(text.contains("quantile=\"0.99\""));

        engine.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observability_off_by_default() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        assert!(!handle.observability_enabled());
        handle.ingest(&[1, 2, 3]).unwrap();
        engine.drain().unwrap();
        assert!(handle.metrics().obs.is_none());
        assert!(handle.trace_events().is_empty());
        assert!(handle.prometheus_text().is_none());
        engine.shutdown().unwrap();
    }

    #[test]
    fn try_enqueue_reports_full_queues() {
        // One shard, capacity 1, and a worker kept busy by a barrier that we
        // never... actually barriers ack immediately; instead saturate with
        // large batches and observe at least one Full result under load.
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .queue_capacity(1)
                .heavy_hitters(0.05, 0.01),
        );
        let handle = engine.handle();
        let mut full_seen = false;
        for _ in 0..200 {
            match handle.try_enqueue(0, vec![1; 50_000]) {
                Ok(()) => {}
                Err(TrySendError::Full(batch)) => {
                    full_seen = true;
                    assert_eq!(batch.len(), 50_000, "full queue returns the batch");
                    break;
                }
                Err(TrySendError::Disconnected(_)) => panic!("engine closed unexpectedly"),
            }
        }
        assert!(full_seen, "a capacity-1 queue must report Full under load");
        engine.shutdown().unwrap();
    }

    #[test]
    fn try_ingest_rejects_cleanly_when_full_and_when_closed() {
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .queue_capacity(1)
                .heavy_hitters(0.05, 0.01),
        );
        let handle = engine.handle();
        let batch: Vec<u64> = vec![1; 50_000];
        let mut accepted = 0u64;
        let mut busy_seen = false;
        for _ in 0..200 {
            match handle.try_ingest(&batch) {
                Ok(()) => accepted += 1,
                Err(TryIngestError::Busy) => {
                    busy_seen = true;
                    break;
                }
                Err(TryIngestError::Closed) => panic!("engine closed unexpectedly"),
            }
        }
        assert!(busy_seen, "a capacity-1 queue must report Busy under load");
        engine.drain().unwrap();
        // Busy was a clean rejection: exactly the accepted batches landed.
        assert_eq!(handle.total_items(), accepted * batch.len() as u64);
        // Room again after the drain.
        handle.try_ingest(&[9, 9, 9]).unwrap();
        engine.shutdown().unwrap();
        assert_eq!(handle.try_ingest(&[1]), Err(TryIngestError::Closed));
        assert_eq!(handle.try_ingest(&[]), Ok(()), "empty batch is a no-op");
    }

    #[test]
    fn membership_publication_rate_limit_suppresses_uniform_churn() {
        // A uniform stream of ever-fresh keys churns MG membership on every
        // batch; with the interval at 64 the worker may publish for
        // membership at most once per 64 epochs.
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .heavy_hitters(0.1, 0.01)
                .membership_publish_interval(64)
                .observe(),
        );
        let handle = engine.handle();
        let batches = 48u64;
        for b in 0..batches {
            let batch: Vec<u64> = (0..200).map(|i| b * 200 + i).collect();
            handle.ingest(&batch).unwrap();
        }
        engine.drain().unwrap();
        let report = handle.metrics().obs.expect("obs report present");
        let membership = report.counter("republish_membership").unwrap();
        let suppressed = report.counter("republish_suppressed").unwrap();
        assert!(
            membership <= 1 + batches / 64,
            "rate limit must cap membership publications, saw {membership}"
        );
        assert!(
            suppressed > 0,
            "uniform churn inside the interval must be counted as suppressed"
        );
        // The lazy paths still publish: after the drain the snapshot is
        // exactly current despite the suppressed membership changes.
        assert_eq!(handle.epochs(), vec![batches]);
        assert_eq!(handle.total_items(), batches * 200);
        engine.shutdown().unwrap();
    }

    #[test]
    fn default_interval_preserves_immediate_membership_publication() {
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .heavy_hitters(0.1, 0.01)
                .observe(),
        );
        let handle = engine.handle();
        // First batch: membership goes empty → nonempty, published at once
        // (no suppression possible at the default interval of 1).
        handle.ingest(&[7, 7, 7]).unwrap();
        engine.drain().unwrap();
        let report = handle.metrics().obs.expect("obs report present");
        assert!(report.counter("republish_membership").unwrap() >= 1);
        assert_eq!(report.counter("republish_suppressed").unwrap(), 0);
        engine.shutdown().unwrap();
    }
}
