//! The engine: shard spawning, routed ingestion, live cross-shard queries,
//! drain and shutdown.

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use psfa_freq::{HeavyHitter, InfiniteHeavyHitters, ParallelFrequencyEstimator};
use psfa_sketch::ParallelCountMin;
use psfa_stream::{MinibatchOperator, Placement, Router};

use crate::config::EngineConfig;
use crate::metrics::EngineMetrics;
use crate::operator::ShardedOperator;
use crate::shard::{ShardCommand, ShardFinal, ShardShared, ShardSnapshot, ShardWorker};

/// Error returned when ingesting into an engine whose workers have exited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineClosed;

impl fmt::Display for EngineClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine is shut down; ingestion channel closed")
    }
}

impl std::error::Error for EngineClosed {}

/// Error returned by [`EngineHandle::ingest`], reporting exactly how much of
/// the minibatch was delivered before the failure.
///
/// `ingest` splits a minibatch into per-shard sub-batches and enqueues them
/// one shard at a time, so a failure is **not** automatically all-or-nothing:
///
/// * A *graceful* shutdown ([`Engine::shutdown`]) serialises behind the whole
///   `ingest` call, so it can only reject a batch up-front —
///   `parts_delivered == 0` and nothing was enqueued (clean rejection).
/// * If a shard *worker died* (panicked) mid-call, the sub-batches sent to
///   other shards before the failure are already enqueued and will be (or
///   were) processed; `parts_delivered` counts them so callers can account
///   for the partially applied batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestError {
    /// Non-empty per-shard sub-batches enqueued before the failure.
    pub parts_delivered: usize,
    /// Non-empty per-shard sub-batches the minibatch was split into
    /// (`0` when the batch was rejected before being split).
    pub parts_total: usize,
}

impl IngestError {
    fn rejected() -> Self {
        Self {
            parts_delivered: 0,
            parts_total: 0,
        }
    }

    /// True if nothing was enqueued: the batch was refused as a whole and
    /// the stream state is exactly as if `ingest` was never called.
    pub fn is_clean_rejection(&self) -> bool {
        self.parts_delivered == 0
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `parts_total == 0` is the up-front rejection path (the batch was
        // never split); a worker death mid-call has `parts_total > 0` even
        // when it struck before the first part was delivered.
        if self.parts_total == 0 {
            write!(
                f,
                "engine is shut down; minibatch rejected (none of it was enqueued)"
            )
        } else {
            write!(
                f,
                "engine worker died mid-ingest: {}/{} per-shard sub-batches were already enqueued",
                self.parts_delivered, self.parts_total
            )
        }
    }
}

impl std::error::Error for IngestError {}

/// Builder collecting lifted operators before the workers start.
pub struct EngineBuilder {
    config: EngineConfig,
    lifted: Vec<Vec<(String, Box<dyn MinibatchOperator + Send>)>>,
}

impl EngineBuilder {
    fn new(config: EngineConfig) -> Self {
        config.validate();
        let lifted = (0..config.shards).map(|_| Vec::new()).collect();
        Self { config, lifted }
    }

    /// Lifts a [`ShardedOperator`] into the engine: one instance is built
    /// per shard and sees exactly the minibatches routed to that shard.
    pub fn lift<S: ShardedOperator>(mut self, mut sharded: S) -> Self {
        let name = sharded.name();
        for (shard, ops) in self.lifted.iter_mut().enumerate() {
            ops.push((name.clone(), Box::new(sharded.build_shard(shard)) as Box<_>));
        }
        self
    }

    /// Spawns the shard workers and returns the running engine.
    pub fn spawn(self) -> Engine {
        let EngineBuilder { config, lifted } = self;
        let router: Arc<dyn Router> = config.routing.build(config.shards);
        let shared: Arc<Vec<Arc<ShardShared>>> = Arc::new(
            (0..config.shards)
                .map(|shard| Arc::new(ShardShared::new(shard, &config)))
                .collect(),
        );
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (shard, ops) in lifted.into_iter().enumerate() {
            let (tx, rx) = sync_channel(config.queue_capacity);
            let worker = ShardWorker::new(shard, &config, ops, shared[shard].clone());
            let join = std::thread::Builder::new()
                .name(format!("psfa-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("failed to spawn shard worker thread");
            senders.push(tx);
            workers.push(join);
        }
        let handle = EngineHandle {
            senders: Arc::new(senders),
            shared,
            router,
            closed: Arc::new(RwLock::new(false)),
            phi: config.phi,
            epsilon: config.epsilon,
            window: config.window,
        };
        Engine { handle, workers }
    }
}

/// A multi-threaded sharded ingestion engine.
///
/// Construction spawns one worker thread per shard; [`Engine::handle`] hands
/// out cloneable [`EngineHandle`]s for concurrent producers and queriers;
/// [`Engine::shutdown`] drains gracefully and returns the final per-shard
/// operator state.
pub struct Engine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<ShardFinal>>,
}

impl Engine {
    /// Spawns an engine with the given configuration and no lifted
    /// operators.
    pub fn spawn(config: EngineConfig) -> Engine {
        Engine::builder(config).spawn()
    }

    /// Starts building an engine (add lifted operators, then `spawn`).
    pub fn builder(config: EngineConfig) -> EngineBuilder {
        EngineBuilder::new(config)
    }

    /// A cloneable handle for ingestion and live queries.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Blocks until every minibatch enqueued *before this call* has been
    /// processed by its shard.
    pub fn drain(&self) {
        self.handle.drain();
    }

    /// Drains, stops every worker, and returns the final per-shard state.
    ///
    /// Outstanding [`EngineHandle`]s stay valid for queries against the last
    /// published snapshots, but further [`EngineHandle::ingest`] calls fail
    /// with a clean-rejection [`IngestError`] — including calls racing this
    /// shutdown: every `ingest` that returned `Ok` is guaranteed to be
    /// processed.
    pub fn shutdown(self) -> EngineReport {
        // Taking the write lock waits for every in-flight enqueue (which
        // holds a read guard across its send) to finish, and flips `closed`
        // so later enqueues fail fast. Everything successfully sent is
        // therefore FIFO-ordered *before* the Shutdown commands below —
        // workers process all of it before exiting.
        *self
            .handle
            .closed
            .write()
            .expect("engine closed flag poisoned") = true;
        for sender in self.handle.senders.iter() {
            // A send error means the worker already exited; shutdown
            // proceeds to join either way.
            let _ = sender.send(ShardCommand::Shutdown);
        }
        let shards: Vec<ShardFinal> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        EngineReport {
            epsilon: self.handle.epsilon,
            shards,
        }
    }
}

/// Cloneable handle for concurrent ingestion and live cross-shard queries.
///
/// ## Consistency model
///
/// Ingestion is split by the configured [`Router`]: under hash routing each
/// key is owned by exactly one shard; under skew-aware routing a hot key's
/// occurrences are spread across all shards and its per-shard counts are
/// *summed* at query time. Queries merge per-shard [`ShardSnapshot`]s
/// published under an epoch discipline: each snapshot is internally
/// consistent at its shard's epoch, and epochs only move forward. A
/// cross-shard query therefore sees, for every shard, *some* recently
/// completed prefix of that shard's substream — exactly the guarantee a
/// minibatch system gives between batches — and the paper's one-sided error
/// bounds hold for the observed prefix: every occurrence lands on exactly
/// one shard, so summed estimates never exceed true frequencies and
/// underestimate by at most `Σ_s ε · m_s = ε · m` (the mergeable-summaries
/// accounting of [`psfa_freq::MgSummary::merge`] applied at query time).
#[derive(Clone)]
pub struct EngineHandle {
    senders: Arc<Vec<SyncSender<ShardCommand>>>,
    shared: Arc<Vec<Arc<ShardShared>>>,
    router: Arc<dyn Router>,
    /// False while the engine accepts ingestion. Enqueues hold a read guard
    /// across their send so [`Engine::shutdown`]'s write acquisition
    /// serialises after every accepted batch.
    closed: Arc<RwLock<bool>>,
    phi: f64,
    epsilon: f64,
    window: Option<u64>,
}

impl EngineHandle {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The engine's heavy-hitter threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The engine's estimation error ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-shard sliding window size, when configured.
    pub fn window(&self) -> Option<u64> {
        self.window
    }

    /// Routes one minibatch through the configured [`Router`] and enqueues
    /// the per-shard sub-batches, blocking while any target queue is full
    /// (backpressure).
    ///
    /// Safe to call from many threads at once; item order per key is
    /// preserved per producer. Atomic with respect to [`Engine::shutdown`]:
    /// `Ok` means the whole minibatch will be processed, and an error from a
    /// graceful shutdown is a *clean rejection* — none of it was enqueued.
    /// Only a shard worker dying mid-call (a panic, never a graceful stop)
    /// can leave the batch partially delivered; the returned [`IngestError`]
    /// reports how many per-shard sub-batches had already been enqueued so
    /// the caller can account for the partial application.
    pub fn ingest(&self, minibatch: &[u64]) -> Result<(), IngestError> {
        if minibatch.is_empty() {
            return Ok(());
        }
        // One read guard across every per-shard send (see `closed`): a
        // racing shutdown either happens entirely before this call (Err,
        // nothing enqueued) or entirely after it (Ok, everything enqueued).
        let closed = self.closed.read().expect("engine closed flag poisoned");
        if *closed {
            return Err(IngestError::rejected());
        }
        let parts = self.router.partition(minibatch);
        let parts_total = parts.iter().filter(|p| !p.is_empty()).count();
        let mut parts_delivered = 0usize;
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            self.send_part(shard, part).map_err(|_| IngestError {
                parts_delivered,
                parts_total,
            })?;
            parts_delivered += 1;
        }
        Ok(())
    }

    /// Enqueues one pre-routed sub-batch onto `shard`'s queue. Useful with
    /// [`psfa_stream::SplitGenerator`] when the caller splits upstream.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn enqueue(&self, shard: usize, part: Vec<u64>) -> Result<(), EngineClosed> {
        // Hold the read guard across the send: Engine::shutdown's write
        // acquisition then serialises after this batch, guaranteeing the
        // worker processes everything accepted here (see shutdown()).
        let closed = self.closed.read().expect("engine closed flag poisoned");
        if *closed {
            return Err(EngineClosed);
        }
        self.send_part(shard, part)
    }

    /// Sends one sub-batch; the caller must hold the `closed` read guard.
    fn send_part(&self, shard: usize, part: Vec<u64>) -> Result<(), EngineClosed> {
        use std::sync::atomic::Ordering;
        let len = part.len() as u64;
        self.senders[shard]
            .send(ShardCommand::Batch(part))
            .map_err(|_| EngineClosed)?;
        // Counters only after a successful send, so a refused batch never
        // leaves phantom queue depth behind.
        let stats = &self.shared[shard].stats;
        stats.items_enqueued.fetch_add(len, Ordering::AcqRel);
        stats.batches_enqueued.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Non-blocking variant of [`EngineHandle::enqueue`]: returns the batch
    /// if the shard's queue is full so the caller can shed or retry.
    pub fn try_enqueue(&self, shard: usize, part: Vec<u64>) -> Result<(), TrySendError<Vec<u64>>> {
        use std::sync::atomic::Ordering;
        let closed = self.closed.read().expect("engine closed flag poisoned");
        if *closed {
            return Err(TrySendError::Disconnected(part));
        }
        let len = part.len() as u64;
        match self.senders[shard].try_send(ShardCommand::Batch(part)) {
            Ok(()) => {
                let stats = &self.shared[shard].stats;
                stats.items_enqueued.fetch_add(len, Ordering::AcqRel);
                stats.batches_enqueued.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            Err(TrySendError::Full(ShardCommand::Batch(part))) => Err(TrySendError::Full(part)),
            Err(TrySendError::Disconnected(ShardCommand::Batch(part))) => {
                Err(TrySendError::Disconnected(part))
            }
            Err(_) => unreachable!("try_send returns the command it was given"),
        }
    }

    /// Blocks until every minibatch enqueued before this call is processed.
    pub fn drain(&self) {
        let mut acks = Vec::with_capacity(self.shards());
        for sender in self.senders.iter() {
            let (ack_tx, ack_rx) = sync_channel(1);
            if sender.send(ShardCommand::Barrier(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            // A receive error means the worker exited after draining its
            // queue — equivalent to an acknowledgement.
            let _ = ack.recv();
        }
    }

    /// Current snapshots of every shard (each at its own epoch).
    pub fn snapshots(&self) -> Vec<Arc<ShardSnapshot>> {
        self.shared.iter().map(|s| s.load_snapshot()).collect()
    }

    /// Where `item`'s count mass may live under the configured routing:
    /// a single owning shard, or replicated across all shards (hot keys
    /// under skew-aware routing).
    pub fn placement(&self, item: u64) -> Placement {
        self.router.placement(item)
    }

    /// The active router (for inspection; e.g. its current hot-key set).
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Total items reflected in the current snapshots (`m` of the observed
    /// prefix).
    pub fn total_items(&self) -> u64 {
        self.snapshots().iter().map(|s| s.stream_len).sum()
    }

    /// Per-shard epochs (minibatches processed) of the current snapshots.
    pub fn epochs(&self) -> Vec<u64> {
        self.snapshots().iter().map(|s| s.epoch).collect()
    }

    /// Live point-frequency estimate for `item`: one-sided,
    /// `f − ε·m ≤ f̂ ≤ f` over the observed prefix.
    ///
    /// Owner-routed keys are answered by the owning shard's snapshot alone;
    /// replicated (hot) keys are summed across every shard's snapshot — each
    /// shard underestimates its substream by at most `ε·m_s`, so the sum
    /// underestimates by at most `ε·m` and never overestimates.
    pub fn estimate(&self, item: u64) -> u64 {
        match self.router.placement(item) {
            Placement::Owner(shard) => self.shared[shard].load_snapshot().estimate(item),
            Placement::Replicated => self
                .shared
                .iter()
                .map(|s| s.load_snapshot().estimate(item))
                .sum(),
        }
    }

    /// Live sliding-window estimate for `item` over the per-shard substream
    /// windows (summed across shards for replicated keys); `0` when the
    /// engine runs without a window.
    ///
    /// **Window semantics differ between routers**: each shard's window
    /// covers the last `n` items *of that shard's substream*, so an
    /// owner-routed key is estimated over one shard-window while a
    /// replicated key's sum spans up to `shards` shard-windows of recent
    /// traffic. In particular, a key's reported value can step up when the
    /// skew-aware router promotes it. Estimates remain one-sided
    /// (never above the key's count in the covered items); a router-independent
    /// *global* window needs cross-shard window alignment — an open
    /// ROADMAP item.
    pub fn sliding_estimate(&self, item: u64) -> u64 {
        match self.router.placement(item) {
            Placement::Owner(shard) => self.shared[shard].load_snapshot().sliding_estimate(item),
            Placement::Replicated => self
                .shared
                .iter()
                .map(|s| s.load_snapshot().sliding_estimate(item))
                .sum(),
        }
    }

    /// Live Count-Min overestimate for `item` (`f ≤ f̂ ≤ f + ε_cm·m`).
    ///
    /// Owner-routed keys query the owning shard's sketch (error `ε_cm·m_s`);
    /// replicated keys sum the per-shard overestimates, which remains an
    /// overestimate with error at most `Σ_s ε_cm·m_s = ε_cm·m`.
    pub fn cm_estimate(&self, item: u64) -> u64 {
        let query_shard = |shard: usize| {
            self.shared[shard]
                .count_min
                .lock()
                .expect("count-min lock poisoned")
                .query(item)
        };
        match self.router.placement(item) {
            Placement::Owner(shard) => query_shard(shard),
            Placement::Replicated => (0..self.shards()).map(query_shard).sum(),
        }
    }

    /// Live φ-heavy hitters of the full stream, merged across shards from
    /// the current snapshots, most frequent first.
    ///
    /// Per-shard summary entries are **summed by key** before thresholding,
    /// so a hot key split across shards by the skew-aware router is judged
    /// by its global estimate, not its largest fragment. Guarantees over the
    /// observed prefix of `m` items: every item with true frequency `≥ φm`
    /// is reported (its summed estimate is at least `f − ε·m ≥ (φ − ε)m`);
    /// no item with true frequency `< (φ − ε)m` is reported (summed
    /// estimates never overestimate).
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let snapshots = self.snapshots();
        let m: u64 = snapshots.iter().map(|s| s.stream_len).sum();
        let threshold = ((self.phi - self.epsilon) * m as f64).max(0.0);
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for snapshot in &snapshots {
            for &(item, est) in &snapshot.hh_entries {
                *sums.entry(item).or_insert(0) += est;
            }
        }
        let mut out: Vec<HeavyHitter> = sums
            .into_iter()
            .filter(|&(_, est)| est as f64 >= threshold)
            .map(|(item, estimate)| HeavyHitter { item, estimate })
            .collect();
        out.sort_unstable_by(|a, b| b.estimate.cmp(&a.estimate).then(a.item.cmp(&b.item)));
        out
    }

    /// Merges every shard's Count-Min sketch into one global sketch of the
    /// full stream (all shards share hash seeds, so the merge is exact).
    /// Locks each shard's sketch briefly, one at a time.
    pub fn merged_count_min(&self) -> ParallelCountMin {
        let mut merged = self.shared[0]
            .count_min
            .lock()
            .expect("count-min lock poisoned")
            .clone();
        for shared in &self.shared[1..] {
            merged.merge(&shared.count_min.lock().expect("count-min lock poisoned"));
        }
        merged
    }

    /// Point-in-time shard and queue metrics, including the active routing
    /// policy and its current hot-key set.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            shards: self
                .shared
                .iter()
                .enumerate()
                .map(|(shard, s)| s.stats.snapshot(shard))
                .collect(),
            router: self.router.name(),
            hot_keys: self.router.hot_keys(),
        }
    }
}

/// Final state returned by [`Engine::shutdown`].
pub struct EngineReport {
    epsilon: f64,
    /// Per-shard final operator state, in shard order.
    pub shards: Vec<ShardFinal>,
}

impl EngineReport {
    /// Total items processed across shards.
    pub fn total_items(&self) -> u64 {
        self.shards.iter().map(|s| s.items).sum()
    }

    /// Merges the per-shard infinite-window estimators into one global
    /// estimator of the full stream (mergeable-summaries semantics; the
    /// global error stays `ε · m`).
    pub fn merged_estimator(&self) -> ParallelFrequencyEstimator {
        let mut merged = ParallelFrequencyEstimator::new(self.epsilon);
        for shard in &self.shards {
            merged.merge(shard.heavy_hitters.estimator());
        }
        merged
    }

    /// Consumes the report and returns the per-shard heavy-hitter trackers.
    pub fn into_heavy_hitters(self) -> Vec<InfiniteHeavyHitters> {
        self.shards.into_iter().map(|s| s.heavy_hitters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psfa_stream::{StreamGenerator, ZipfGenerator};
    use std::collections::HashMap;

    fn config() -> EngineConfig {
        EngineConfig::with_shards(4)
            .queue_capacity(8)
            .heavy_hitters(0.05, 0.01)
    }

    #[test]
    fn ingest_drain_query_shutdown_roundtrip() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        let mut generator = ZipfGenerator::new(10_000, 1.3, 11);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut total = 0u64;
        for _ in 0..20 {
            let batch = generator.next_minibatch(2_000);
            for &x in &batch {
                *truth.entry(x).or_insert(0) += 1;
            }
            total += batch.len() as u64;
            handle.ingest(&batch).unwrap();
        }
        engine.drain();
        assert_eq!(handle.total_items(), total);
        assert_eq!(handle.metrics().items_processed(), total);
        assert_eq!(handle.metrics().queue_depth(), 0);

        // One-sided point estimates.
        let slack = (0.01 * total as f64).ceil() as u64;
        for (&item, &f) in &truth {
            let est = handle.estimate(item);
            assert!(est <= f, "estimate {est} above truth {f}");
            assert!(
                est + slack >= f,
                "estimate {est} under truth {f} by more than εm"
            );
            assert!(
                handle.cm_estimate(item) >= f,
                "count-min must never underestimate"
            );
        }

        // Heavy hitters: no false negatives, no far false positives.
        let reported: Vec<u64> = handle.heavy_hitters().iter().map(|h| h.item).collect();
        for (&item, &f) in &truth {
            if f as f64 >= 0.05 * total as f64 {
                assert!(reported.contains(&item), "missed heavy hitter {item}");
            }
            if (f as f64) < (0.05 - 0.01) * total as f64 {
                assert!(!reported.contains(&item), "false positive {item}");
            }
        }

        let report = engine.shutdown();
        assert_eq!(report.total_items(), total);
        // After shutdown the handle still answers queries but refuses
        // ingestion — cleanly, with nothing enqueued.
        assert_eq!(handle.total_items(), total);
        let err = handle.ingest(&[1, 2, 3]).unwrap_err();
        assert!(err.is_clean_rejection());

        // The merged estimator covers the full stream.
        let merged = report.merged_estimator();
        assert_eq!(merged.stream_len(), total);
        for (&item, &f) in &truth {
            assert!(merged.estimate(item) <= f);
        }
    }

    #[test]
    fn epochs_advance_and_snapshots_are_monotone() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        handle.ingest(&(0..1000u64).collect::<Vec<_>>()).unwrap();
        engine.drain();
        let before = handle.epochs();
        handle.ingest(&(0..1000u64).collect::<Vec<_>>()).unwrap();
        engine.drain();
        let after = handle.epochs();
        for (b, a) in before.iter().zip(&after) {
            assert!(a > b, "epochs must advance: {before:?} -> {after:?}");
        }
        engine.shutdown();
    }

    #[test]
    fn keys_are_partitioned_not_duplicated() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        let batch: Vec<u64> = (0..10_000u64).flat_map(|k| [k, k]).collect();
        handle.ingest(&batch).unwrap();
        engine.drain();
        // Every key lives on exactly one shard; summing shard stream lengths
        // must equal the batch length exactly.
        assert_eq!(handle.total_items(), batch.len() as u64);
        let m = handle.metrics();
        assert!(
            m.shards.iter().all(|s| s.items_processed > 0),
            "all shards used"
        );
        engine.shutdown();
    }

    #[test]
    fn merged_count_min_sees_the_whole_stream() {
        let engine = Engine::spawn(config().count_min(0.001, 0.01, 5));
        let handle = engine.handle();
        let batch: Vec<u64> = (0..5_000u64).map(|i| i % 100).collect();
        handle.ingest(&batch).unwrap();
        engine.drain();
        let merged = handle.merged_count_min();
        assert_eq!(merged.total(), batch.len() as u64);
        for item in 0..100u64 {
            assert!(merged.query(item) >= 50);
        }
        engine.shutdown();
    }

    #[test]
    fn sliding_window_surface_is_exposed_when_configured() {
        let engine = Engine::spawn(config().sliding_window(10_000));
        let handle = engine.handle();
        assert_eq!(handle.window(), Some(10_000));
        let batch = vec![42u64; 1_000];
        handle.ingest(&batch).unwrap();
        engine.drain();
        assert!(handle.sliding_estimate(42) > 0);
        assert_eq!(handle.sliding_estimate(43), 0);
        engine.shutdown();
    }

    #[test]
    fn every_accepted_ingest_is_processed_even_racing_shutdown() {
        // Producers hammer ingest while the main thread shuts down; every
        // batch for which ingest returned Ok must appear in the final
        // counts — none silently dropped in the shutdown race.
        for round in 0..10u64 {
            let engine = Engine::spawn(
                EngineConfig::with_shards(2)
                    .queue_capacity(2)
                    .heavy_hitters(0.05, 0.01),
            );
            let mut producers = Vec::new();
            for p in 0..3u64 {
                let handle = engine.handle();
                producers.push(std::thread::spawn(move || {
                    let mut accepted = 0u64;
                    let batch: Vec<u64> = (0..200u64).map(|i| i * 3 + p).collect();
                    loop {
                        match handle.ingest(&batch) {
                            Ok(()) => accepted += batch.len() as u64,
                            Err(err) => {
                                // A graceful shutdown must reject the whole
                                // batch, never deliver part of it.
                                assert!(err.is_clean_rejection(), "partial delivery: {err}");
                                return accepted;
                            }
                        }
                    }
                }));
            }
            // Let the race land at varying points.
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            let report = engine.shutdown();
            let accepted: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
            assert_eq!(
                report.total_items(),
                accepted,
                "round {round}: accepted batches must never be dropped"
            );
        }
    }

    #[test]
    fn rejected_ingest_leaves_no_phantom_queue_depth() {
        let engine = Engine::spawn(config());
        let handle = engine.handle();
        handle.ingest(&[1, 2, 3, 4]).unwrap();
        let report = engine.shutdown();
        assert_eq!(report.total_items(), 4);
        // Post-shutdown attempts are refused and must not move counters.
        assert_eq!(
            handle.ingest(&[5, 6, 7]),
            Err(IngestError {
                parts_delivered: 0,
                parts_total: 0
            })
        );
        assert!(matches!(
            handle.try_enqueue(0, vec![8]),
            Err(TrySendError::Disconnected(_))
        ));
        let m = handle.metrics();
        assert_eq!(m.items_enqueued(), 4);
        assert_eq!(m.items_processed(), 4);
        assert_eq!(
            m.queue_depth(),
            0,
            "refused batches must not inflate queue depth"
        );
    }

    #[test]
    fn skew_aware_engine_levels_load_and_keeps_one_sided_estimates() {
        // Half of all traffic is one hot key: hash routing pins it to one
        // shard, the skew-aware router spreads it.
        let hot = 42u64;
        let batch: Vec<u64> = (0..2_000u64)
            .map(|i| if i % 2 == 0 { hot } else { i })
            .collect();
        let run = |config: EngineConfig| {
            let engine = Engine::spawn(config);
            let handle = engine.handle();
            for _ in 0..20 {
                handle.ingest(&batch).unwrap();
            }
            engine.drain();
            let metrics = handle.metrics();
            let est = handle.estimate(hot);
            let hh = handle.heavy_hitters();
            engine.shutdown();
            (metrics, est, hh)
        };

        let (hash_metrics, ..) = run(config());
        let (skew_metrics, est, hh) = run(config().skew_aware_routing());

        // Accuracy: the replicated key's summed estimate stays one-sided.
        let f = 20_000u64; // 20 batches × 1000 occurrences
        let m = 40_000u64;
        assert!(est <= f, "summed estimate {est} above truth {f}");
        assert!(
            est + (0.01 * m as f64).ceil() as u64 >= f,
            "summed estimate {est} under truth {f} by more than εm"
        );
        // The hot key is reported once, not once per shard fragment.
        assert_eq!(hh.iter().filter(|h| h.item == hot).count(), 1);
        // Routing is visible in the metrics.
        assert_eq!(skew_metrics.router, "skew-aware");
        assert!(skew_metrics.hot_keys.contains(&hot));
        assert_eq!(hash_metrics.router, "hash");
        assert!(hash_metrics.hot_keys.is_empty());
        // And it levels the load.
        let hash_imb = hash_metrics.load_imbalance().unwrap();
        let skew_imb = skew_metrics.load_imbalance().unwrap();
        assert!(
            skew_imb < hash_imb,
            "skew imbalance {skew_imb:.3} must beat hash imbalance {hash_imb:.3}"
        );
    }

    #[test]
    fn try_enqueue_reports_full_queues() {
        // One shard, capacity 1, and a worker kept busy by a barrier that we
        // never... actually barriers ack immediately; instead saturate with
        // large batches and observe at least one Full result under load.
        let engine = Engine::spawn(
            EngineConfig::with_shards(1)
                .queue_capacity(1)
                .heavy_hitters(0.05, 0.01),
        );
        let handle = engine.handle();
        let mut full_seen = false;
        for _ in 0..200 {
            match handle.try_enqueue(0, vec![1; 50_000]) {
                Ok(()) => {}
                Err(TrySendError::Full(batch)) => {
                    full_seen = true;
                    assert_eq!(batch.len(), 50_000, "full queue returns the batch");
                    break;
                }
                Err(TrySendError::Disconnected(_)) => panic!("engine closed unexpectedly"),
            }
        }
        assert!(full_seen, "a capacity-1 queue must report Full under load");
        engine.shutdown();
    }
}
