//! The engine side of epoch-snapshot persistence: consistent cuts and the
//! background flusher thread.
//!
//! A snapshot is cut in two phases, keeping disk work entirely off the
//! ingest hot path:
//!
//! 1. **Cut** (microseconds, under the [`IngestFence`]'s exclusive side):
//!    enqueue a [`ShardCommand::Persist`] marker onto every shard's FIFO
//!    queue. Because producers hold the fence's shared side across *all* of
//!    a minibatch's per-shard enqueues, the marker lands at the same stream
//!    position on every shard — after every sub-batch of each minibatch
//!    accepted before the cut, before every sub-batch of each later one.
//! 2. **Collect + write** (fence released, producers running): each worker
//!    replies with a clone of its operator state when it reaches the
//!    marker; the flusher thread encodes the clones, appends one
//!    [`EpochRecord`] to the segment log, and compacts.
//!
//! The flusher thread polls the accepted-batch counters and cuts a new
//! epoch every `interval_batches` minibatches; a graceful shutdown performs
//! one final cut so no accepted data is lost, while [`crate::Engine::kill`]
//! skips it (simulating a crash: the disk keeps only what was flushed).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use psfa_obs::{TraceKind, NO_SHARD};
use psfa_primitives::FaultPlan;
use psfa_store::{EpochRecord, ShardState, SnapshotStore, StoreError, WindowState};
use psfa_stream::{IngestFence, Router, WindowFence};

use crate::metrics::StoreMetrics;
use crate::obs::EngineObs;
use crate::shard::{ShardCommand, ShardShared};

/// The window configuration a persisted epoch must capture: the geometry
/// plus the live [`WindowFence`] whose clock is read from inside the
/// snapshot's exclusive cut, so the persisted [`WindowState`] is exactly
/// consistent with the per-shard pane rings collected at the same cut.
pub(crate) struct PersistWindow {
    /// Global window size `n_W`.
    pub size: u64,
    /// Number of panes.
    pub panes: u32,
    /// The engine's window fence.
    pub fence: Arc<WindowFence>,
}

/// Shared snapshot machinery: cuts epochs, appends them to the store, and
/// keeps the store metrics. Shared by the flusher thread and every
/// [`crate::EngineHandle`] (for `snapshot_now` and historical queries).
pub(crate) struct Persister {
    /// Serialises whole snapshots (cut → collect → append) against each
    /// other, so cut order equals epoch order. Distinct from the store
    /// lock: historical queries only need `store`, and must not stall
    /// behind a cut that is still waiting for shard queues to drain.
    cut_lock: Mutex<()>,
    store: Mutex<SnapshotStore>,
    fence: Arc<IngestFence>,
    senders: Arc<Vec<SyncSender<ShardCommand>>>,
    /// Per-shard shared state: the cut stamps lane marks into each shard's
    /// registered ingest lanes so lane traffic obeys the same cut as
    /// channel traffic (see the `shard` module docs).
    shards_shared: Arc<Vec<Arc<ShardShared>>>,
    /// Engine-wide gate id allocator, shared with the engine handles so
    /// gate ids stay unique across *all* cut kinds.
    gates: Arc<AtomicU64>,
    router: Arc<dyn Router>,
    phi: f64,
    epsilon: f64,
    window: Option<PersistWindow>,
    epochs_persisted: AtomicU64,
    bytes_written: AtomicU64,
    last_epoch: AtomicU64,
    segments: AtomicU64,
    flush_failures: AtomicU64,
    /// Observability recorders, when enabled: cut (fence-exclusive) and
    /// append (encode + fsync) durations, persist/flush trace events.
    obs: Option<Arc<EngineObs>>,
    /// Fault-injection plan, when enabled: scheduled store write errors
    /// surface through [`Persister::snapshot_once`] as `StoreError::Io`.
    fault: Option<Arc<FaultPlan>>,
}

impl Persister {
    #[allow(clippy::too_many_arguments)] // internal ctor mirroring the field list
    pub(crate) fn new(
        store: SnapshotStore,
        fence: Arc<IngestFence>,
        senders: Arc<Vec<SyncSender<ShardCommand>>>,
        shards_shared: Arc<Vec<Arc<ShardShared>>>,
        gates: Arc<AtomicU64>,
        router: Arc<dyn Router>,
        phi: f64,
        epsilon: f64,
        window: Option<PersistWindow>,
        obs: Option<Arc<EngineObs>>,
        fault: Option<Arc<FaultPlan>>,
    ) -> Self {
        let last_epoch = store.latest_epoch().unwrap_or(0);
        let segments = store.segments() as u64;
        Self {
            cut_lock: Mutex::new(()),
            store: Mutex::new(store),
            fence,
            senders,
            shards_shared,
            gates,
            router,
            phi,
            epsilon,
            window,
            epochs_persisted: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            last_epoch: AtomicU64::new(last_epoch),
            segments: AtomicU64::new(segments),
            flush_failures: AtomicU64::new(0),
            obs,
            fault,
        }
    }

    /// Cuts one consistent epoch across all shards, appends it durably, and
    /// compacts. Returns the persisted epoch number. Fails with
    /// [`StoreError::Closed`] once the shard workers have exited.
    pub(crate) fn snapshot_once(&self) -> Result<u64, StoreError> {
        // The cut lock is held across cut + collect + append so concurrent
        // snapshots (flusher vs `snapshot_now`) serialise as a whole: cut
        // order equals epoch order, and a later cut's (superset) state can
        // never be appended under an earlier epoch number. The *store*
        // lock is taken only around the append below, so historical
        // queries never stall behind a cut waiting on shard queues.
        // Poison recovery is safe: the cut lock guards no data (`()`),
        // only mutual exclusion, and a cut that panicked mid-flight left
        // at most an unanswered Persist reply channel behind — the next
        // cut allocates fresh gates and channels.
        let _cut = self
            .cut_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        // Phase 1 — the cut: enqueue a Persist marker on every shard while
        // holding the fence exclusively (see the module docs for why this
        // makes the cut consistent), and capture the hot-key set and the
        // window fence's clock at the same instant — a promotion or a
        // window boundary racing phase 2 must not leak into the record's
        // "state at the cut". Send errors mean the workers exited.
        let cut_start = self.obs.as_ref().map(|obs| obs.now_ns());
        let (receivers, hot_keys, window) = self
            .fence
            .cut_with(|_cut| {
                let gate = self.gates.fetch_add(1, Ordering::Relaxed);
                let receivers = self
                    .senders
                    .iter()
                    .zip(self.shards_shared.iter())
                    .map(|(sender, shared)| {
                        // Stamp the lane marks before sending the command:
                        // gated sends serialise under this exclusive cut, so
                        // per-lane mark order equals channel command order.
                        let fanin = shared.mark_lanes(gate);
                        let (tx, rx) = sync_channel(1);
                        sender
                            .send(ShardCommand::Persist {
                                reply: tx,
                                gate,
                                fanin,
                            })
                            .map(|_| rx)
                            .map_err(|_| ())
                    })
                    .collect::<Result<Vec<_>, ()>>()?;
                let mut hot_keys = self.router.hot_keys();
                hot_keys.sort_unstable();
                hot_keys.dedup();
                // Boundary markers are themselves enqueued under exclusive
                // cuts, so from inside this cut every shard's FIFO holds
                // exactly `boundaries` markers before our Persist marker:
                // the collected pane rings will be sealed at precisely
                // this boundary.
                let window = self.window.as_ref().map(|w| {
                    let clock = w.fence.state();
                    WindowState {
                        size: w.size,
                        panes: w.panes,
                        ticket: clock.ticket,
                        boundaries: clock.boundaries,
                    }
                });
                Ok::<_, ()>((receivers, hot_keys, window))
            })
            .map_err(|_: ()| StoreError::Closed)?;
        if let Some(obs) = &self.obs {
            // The exclusive-fence window is the only moment producers are
            // excluded; its duration is the persistence stall budget.
            obs.fence_exclusive_wait
                .record(obs.now_ns().saturating_sub(cut_start.unwrap_or(0)));
        }

        // Phase 2 — collect and write, with ingestion running again.
        let mut shards: Vec<ShardState> = Vec::with_capacity(receivers.len());
        for rx in receivers {
            shards.push(rx.recv().map_err(|_| StoreError::Closed)?);
        }

        // Poison recovery is safe: the log format is checksummed and
        // validated on every read, and a failed append leaves the store
        // at a record boundary — a panic under this lock cannot corrupt
        // what later cuts or historical queries observe.
        let mut store = self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let record = EpochRecord {
            epoch: store.next_epoch(),
            phi: self.phi,
            epsilon: self.epsilon,
            window,
            hot_keys,
            shards,
        };
        let append_start = self.obs.as_ref().map(|obs| obs.now_ns());
        // Fault injection (tests only): a scheduled write error surfaces
        // exactly like a failing volume — typed, counted by the caller,
        // and never wedging the fence (it was released after phase 1).
        if let Some(fault) = &self.fault {
            if let Some(err) = fault.store_write_error() {
                return Err(StoreError::Io(err));
            }
        }
        let bytes = store.append(&record)?;
        store.compact()?;
        let segments = store.segments() as u64;
        drop(store);
        if let Some(obs) = &self.obs {
            let now = obs.now_ns();
            obs.persist_append
                .record(now.saturating_sub(append_start.unwrap_or(0)));
            obs.trace
                .push(now, TraceKind::EpochPersist, NO_SHARD, record.epoch, bytes);
        }

        self.epochs_persisted.fetch_add(1, Ordering::AcqRel);
        self.bytes_written.fetch_add(bytes, Ordering::AcqRel);
        self.last_epoch.store(record.epoch, Ordering::Release);
        self.segments.store(segments, Ordering::Release);
        Ok(record.epoch)
    }

    /// Counts one failed flush and emits a [`TraceKind::FlushFailed`]
    /// event, so injected (or real) write errors are observable without
    /// ever wedging the fence — the flusher skips the interval and
    /// retries on the next one.
    pub(crate) fn note_flush_failure(&self) {
        let failures = self.flush_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(obs) = &self.obs {
            obs.trace
                .push(obs.now_ns(), TraceKind::FlushFailed, NO_SHARD, failures, 0);
        }
    }

    /// Runs `f` with the store locked (historical queries). Poison
    /// recovery is safe for the same reason as in `snapshot_once`: the
    /// log is validated on read, so a panicking holder cannot corrupt
    /// what `f` observes.
    pub(crate) fn with_store<R>(&self, f: impl FnOnce(&SnapshotStore) -> R) -> R {
        f(&self
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Point-in-time store metrics.
    pub(crate) fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            epochs_persisted: self.epochs_persisted.load(Ordering::Acquire),
            bytes_written: self.bytes_written.load(Ordering::Acquire),
            last_epoch: self.last_epoch.load(Ordering::Acquire),
            segments: self.segments.load(Ordering::Acquire),
            flush_failures: self.flush_failures.load(Ordering::Acquire),
        }
    }
}

/// Handle to the background flusher thread.
pub(crate) struct Flusher {
    stop: Arc<AtomicBool>,
    wants_final: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl Flusher {
    /// Spawns the flusher: wakes every `poll`, cuts an epoch once
    /// `interval_batches` minibatches have been accepted (the shared
    /// `accepted` counter, bumped once per accepted `ingest`/`enqueue`
    /// call) since the last cut, and — unless aborted — cuts a final epoch
    /// on the way out.
    pub(crate) fn spawn(
        persister: Arc<Persister>,
        accepted: Arc<AtomicU64>,
        interval_batches: u64,
        poll: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let wants_final = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let final_flag = wants_final.clone();
        let thread = std::thread::Builder::new()
            .name("psfa-flusher".to_string())
            .spawn(move || {
                // Two watermarks: `last_attempt` gates the interval (it
                // advances even on failure, so a broken volume is retried
                // once per interval, not once per poll), while
                // `last_success` tracks what is actually durable — the
                // final cut at shutdown keys off the latter, so a failed
                // interval flush can never trick shutdown into skipping it.
                let mut last_attempt = 0u64;
                let mut last_success = 0u64;
                loop {
                    if stop_flag.load(Ordering::Acquire) {
                        // Graceful shutdown: one final cut captures every
                        // accepted minibatch (workers are still draining).
                        // A failure here must not pass silently — it means
                        // the tail of the stream is not durable; it is
                        // counted and visible in the store metrics.
                        if final_flag.load(Ordering::Acquire)
                            && accepted.load(Ordering::Acquire) != last_success
                            && persister.snapshot_once().is_err()
                        {
                            persister.note_flush_failure();
                        }
                        return;
                    }
                    std::thread::sleep(poll);
                    let batches = accepted.load(Ordering::Acquire);
                    if batches.saturating_sub(last_attempt) < interval_batches {
                        continue;
                    }
                    match persister.snapshot_once() {
                        Ok(_) => {
                            last_attempt = batches;
                            last_success = batches;
                        }
                        Err(StoreError::Closed) => return,
                        Err(_) => {
                            // Disk trouble: count it, skip this interval
                            // instead of hot-looping on a broken volume.
                            persister.note_flush_failure();
                            last_attempt = batches;
                        }
                    }
                }
            })
            .expect("failed to spawn flusher thread");
        Self {
            stop,
            wants_final,
            thread,
        }
    }

    /// Stops the flusher after one final snapshot (graceful shutdown).
    pub(crate) fn finish(self) {
        self.wants_final.store(true, Ordering::Release);
        self.stop.store(true, Ordering::Release);
        let _ = self.thread.join();
    }

    /// Stops the flusher *without* a final snapshot (crash simulation /
    /// abandoned engine): the disk keeps only what was already flushed.
    pub(crate) fn abort(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.thread.join();
    }
}
