//! Lifting operators into — and wrapping the engine as — a
//! [`MinibatchOperator`].
//!
//! Two directions of interop with the single-threaded pipeline layer:
//!
//! * **Lifting** ([`ShardedOperator`]): any existing [`MinibatchOperator`]
//!   can run *inside* the engine, one instance per shard, each seeing only
//!   the keys its shard owns. A factory builds the per-shard instances.
//! * **Wrapping** ([`EngineOperator`]): a whole engine can sit *inside* a
//!   [`psfa_stream::Pipeline`] as a single operator, so existing drivers and
//!   examples gain sharded multi-threaded ingestion without restructuring.

use psfa_stream::MinibatchOperator;

use crate::engine::EngineHandle;

/// Factory lifting an operator family into the engine: one instance per
/// shard, built by [`ShardedOperator::build_shard`].
///
/// Implemented for `(String, F)` closure factories, mirroring the
/// `(String, FnMut)` convenience impl of [`MinibatchOperator`]:
///
/// ```
/// use psfa_engine::{Engine, EngineConfig};
/// use psfa_freq::SlidingFreqWorkEfficient;
/// use psfa_stream::MinibatchOperator;
///
/// struct SlidingOp(SlidingFreqWorkEfficient);
/// impl MinibatchOperator for SlidingOp {
///     fn process(&mut self, minibatch: &[u64]) {
///         self.0.process_minibatch(minibatch);
///     }
///     fn name(&self) -> String {
///         "sliding".into()
///     }
/// }
/// # use psfa_freq::SlidingFrequencyEstimator;
///
/// let engine = Engine::builder(EngineConfig::with_shards(2))
///     .lift(("sliding".to_string(), |_shard: usize| {
///         SlidingOp(SlidingFreqWorkEfficient::new(0.01, 10_000))
///     }))
///     .spawn();
/// let handle = engine.handle();
/// handle.ingest(&[1, 2, 3, 4]).unwrap();
/// let report = engine.shutdown().unwrap();
/// assert_eq!(report.shards[0].lifted[0].0, "sliding");
/// ```
pub trait ShardedOperator {
    /// The per-shard operator type.
    type Shard: MinibatchOperator + Send + 'static;

    /// Builds the instance owned by `shard`.
    fn build_shard(&mut self, shard: usize) -> Self::Shard;

    /// Label under which the per-shard instances are registered.
    fn name(&self) -> String;
}

impl<O, F> ShardedOperator for (String, F)
where
    O: MinibatchOperator + Send + 'static,
    F: FnMut(usize) -> O,
{
    type Shard = O;

    fn build_shard(&mut self, shard: usize) -> O {
        (self.1)(shard)
    }

    fn name(&self) -> String {
        self.0.clone()
    }
}

/// An [`EngineHandle`](crate::EngineHandle) wrapped as a pipeline operator:
/// `process` routes the minibatch into the engine (blocking under
/// backpressure), so a sharded engine can be driven by
/// [`psfa_stream::Pipeline::run`] next to single-threaded operators.
///
/// Note the measured "processing time" of this operator is the *enqueue*
/// time; ingestion itself proceeds on the shard threads. Call
/// [`drain`](crate::EngineHandle::drain) before reading engine-side results.
pub struct EngineOperator {
    label: String,
    handle: EngineHandle,
}

impl EngineOperator {
    /// Wraps `handle` under the given display label.
    pub fn new(label: impl Into<String>, handle: EngineHandle) -> Self {
        Self {
            label: label.into(),
            handle,
        }
    }

    /// Access to the wrapped handle (for queries mid-run).
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }
}

impl MinibatchOperator for EngineOperator {
    fn process(&mut self, minibatch: &[u64]) {
        self.handle
            .ingest(minibatch)
            .expect("engine was shut down while a pipeline was still feeding it");
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use psfa_stream::{Pipeline, ZipfGenerator};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn closure_factory_builds_one_instance_per_shard() {
        let built = Arc::new(AtomicU64::new(0));
        let b = built.clone();
        let engine = Engine::builder(EngineConfig::with_shards(3).heavy_hitters(0.1, 0.01))
            .lift(("probe".to_string(), move |shard: usize| {
                b.fetch_add(1 << (8 * shard), Ordering::Relaxed);
                (format!("probe-{shard}"), move |_batch: &[u64]| {})
            }))
            .spawn();
        // One instance per shard, each with its own shard index.
        assert_eq!(built.load(Ordering::Relaxed), 0x01_01_01);
        let report = engine.shutdown().unwrap();
        for (shard, fin) in report.shards.iter().enumerate() {
            assert_eq!(fin.lifted[0].0, "probe");
            assert_eq!(fin.lifted[0].1.name(), format!("probe-{shard}"));
        }
    }

    #[test]
    fn engine_runs_inside_a_pipeline() {
        let engine = Engine::spawn(EngineConfig::with_shards(2).heavy_hitters(0.05, 0.01));
        let mut pipeline = Pipeline::new();
        pipeline.add_operator(EngineOperator::new("engine", engine.handle()));
        let mut generator = ZipfGenerator::new(5_000, 1.2, 9);
        let report = pipeline.run(&mut generator, 10, 1_000);
        assert_eq!(report.items_drawn, 10_000);
        engine.drain().unwrap();
        let handle = engine.handle();
        assert_eq!(handle.total_items(), 10_000);
        assert!(!handle.heavy_hitters().is_empty());
        engine.shutdown().unwrap();
    }
}
