//! Synthetic workload generators.
//!
//! The paper evaluates nothing empirically and cites network-monitoring
//! workloads only as motivation; these generators provide the corresponding
//! synthetic inputs (documented as a substitution in DESIGN.md §3). All
//! generators are deterministic functions of their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfSampler;

/// A source of minibatches of item identifiers.
pub trait StreamGenerator {
    /// Produces the next minibatch of `size` items.
    fn next_minibatch(&mut self, size: usize) -> Vec<u64>;

    /// A short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Uniformly random items from `0..universe`.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    universe: u64,
    rng: StdRng,
}

impl UniformGenerator {
    /// Creates a uniform generator over `0..universe`.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe >= 1, "universe must be non-empty");
        Self {
            universe,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl StreamGenerator for UniformGenerator {
    fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
        (0..size)
            .map(|_| self.rng.gen_range(0..self.universe))
            .collect()
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Zipf(α)-distributed items — the canonical heavy-hitter workload.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    sampler: ZipfSampler,
}

impl ZipfGenerator {
    /// Creates a Zipf generator over `0..universe` with skew `alpha`.
    pub fn new(universe: u64, alpha: f64, seed: u64) -> Self {
        Self {
            sampler: ZipfSampler::new(universe, alpha, seed),
        }
    }
}

impl StreamGenerator for ZipfGenerator {
    fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
        self.sampler.sample_batch(size)
    }

    fn name(&self) -> &'static str {
        "zipf"
    }
}

/// Bursty traffic: alternates between a "quiet" regime (uniform over the full
/// universe) and "burst" regimes in which a single random item dominates —
/// modelling flash crowds / DDoS-like spikes in network monitoring.
#[derive(Debug, Clone)]
pub struct BurstyGenerator {
    universe: u64,
    burst_len: usize,
    position: usize,
    current_burst_item: Option<u64>,
    rng: StdRng,
}

impl BurstyGenerator {
    /// Creates a bursty generator; every other period of `burst_len` items is
    /// dominated (90%) by one random item.
    pub fn new(universe: u64, burst_len: usize, seed: u64) -> Self {
        assert!(universe >= 1 && burst_len >= 1);
        Self {
            universe,
            burst_len,
            position: 0,
            current_burst_item: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl StreamGenerator for BurstyGenerator {
    fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            let phase = (self.position / self.burst_len) % 2;
            if phase == 1 {
                let item = *self
                    .current_burst_item
                    .get_or_insert_with(|| self.rng.gen_range(0..self.universe));
                if self.rng.gen_bool(0.9) {
                    out.push(item);
                } else {
                    out.push(self.rng.gen_range(0..self.universe));
                }
            } else {
                self.current_burst_item = None;
                out.push(self.rng.gen_range(0..self.universe));
            }
            self.position += 1;
        }
        out
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// Adversarial churn for sliding windows: the heavy-hitter set rotates every
/// `rotation` items, so items that were heavy in the previous window must be
/// evicted/decayed by the algorithms — the hard case for sliding-window
/// summaries.
#[derive(Debug, Clone)]
pub struct AdversarialChurnGenerator {
    heavy_set_size: u64,
    rotation: usize,
    position: usize,
    rng: StdRng,
}

impl AdversarialChurnGenerator {
    /// Creates a churn generator with `heavy_set_size` concurrently heavy
    /// items, rotating to a disjoint heavy set every `rotation` items.
    pub fn new(heavy_set_size: u64, rotation: usize, seed: u64) -> Self {
        assert!(heavy_set_size >= 1 && rotation >= 1);
        Self {
            heavy_set_size,
            rotation,
            position: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl StreamGenerator for AdversarialChurnGenerator {
    fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            let epoch = (self.position / self.rotation) as u64;
            let base = epoch * self.heavy_set_size;
            if self.rng.gen_bool(0.8) {
                out.push(base + self.rng.gen_range(0..self.heavy_set_size));
            } else {
                // Background noise from a large disjoint id range.
                out.push(1_000_000_000 + self.rng.gen_range(0..1_000_000));
            }
            self.position += 1;
        }
        out
    }

    fn name(&self) -> &'static str {
        "adversarial-churn"
    }
}

/// A synthetic packet-flow trace: flow identifiers whose sizes follow a
/// heavy-tailed (Pareto-like) distribution, emitted in interleaved runs —
/// the stand-in for the network traces of \[EV03, CH10\] that motivate the
/// paper (see DESIGN.md §3).
#[derive(Debug, Clone)]
pub struct PacketTraceGenerator {
    active_flows: Vec<(u64, u64)>, // (flow id, remaining packets)
    next_flow_id: u64,
    max_active: usize,
    rng: StdRng,
}

impl PacketTraceGenerator {
    /// Creates a trace generator keeping up to `max_active` concurrently
    /// active flows.
    pub fn new(max_active: usize, seed: u64) -> Self {
        assert!(max_active >= 1);
        Self {
            active_flows: Vec::new(),
            next_flow_id: 0,
            max_active,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a heavy-tailed flow size: Pareto(α = 1.2) truncated to
    /// `[1, 100_000]`.
    fn flow_size(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0f64..1.0).max(1e-9);
        let size = (1.0 / u.powf(1.0 / 1.2)) as u64;
        size.clamp(1, 100_000)
    }
}

impl StreamGenerator for PacketTraceGenerator {
    fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            // Spawn flows until the active set is full.
            while self.active_flows.len() < self.max_active {
                let id = self.next_flow_id;
                self.next_flow_id += 1;
                let packets = self.flow_size();
                self.active_flows.push((id, packets));
            }
            // Emit one packet from a random active flow.
            let idx = self.rng.gen_range(0..self.active_flows.len());
            let (id, remaining) = &mut self.active_flows[idx];
            out.push(*id);
            *remaining -= 1;
            if *remaining == 0 {
                self.active_flows.swap_remove(idx);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "packet-trace"
    }
}

/// Binary streams of configurable 1-density for the basic-counting and sum
/// experiments (E1–E3).
#[derive(Debug, Clone)]
pub struct BinaryStreamGenerator {
    density: f64,
    rng: StdRng,
}

impl BinaryStreamGenerator {
    /// Creates a generator emitting 1 bits with probability `density`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ density ≤ 1`.
    pub fn new(density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        Self {
            density,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces the next minibatch of bits.
    pub fn next_bits(&mut self, size: usize) -> Vec<bool> {
        (0..size).map(|_| self.rng.gen_bool(self.density)).collect()
    }

    /// Produces the next minibatch of bounded integers (for the sum
    /// experiment): zero with probability `1 − density`, otherwise uniform in
    /// `1..=max_value`.
    pub fn next_values(&mut self, size: usize, max_value: u64) -> Vec<u64> {
        (0..size)
            .map(|_| {
                if self.rng.gen_bool(self.density) {
                    self.rng.gen_range(1..=max_value)
                } else {
                    0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn frequencies(items: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &x in items {
            *m.entry(x).or_insert(0u64) += 1;
        }
        m
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = ZipfGenerator::new(1000, 1.1, 5);
        let mut b = ZipfGenerator::new(1000, 1.1, 5);
        assert_eq!(a.next_minibatch(500), b.next_minibatch(500));
        let mut c = UniformGenerator::new(1000, 5);
        let mut d = UniformGenerator::new(1000, 5);
        assert_eq!(c.next_minibatch(500), d.next_minibatch(500));
    }

    #[test]
    fn zipf_generator_is_skewed() {
        let mut g = ZipfGenerator::new(10_000, 1.3, 1);
        let batch = g.next_minibatch(50_000);
        let freq = frequencies(&batch);
        let top: u64 = (0..10).map(|i| freq.get(&i).copied().unwrap_or(0)).sum();
        assert!(
            top as f64 > 0.5 * batch.len() as f64,
            "top-10 mass too small: {top}"
        );
    }

    #[test]
    fn bursty_generator_produces_dominant_items_in_bursts() {
        let mut g = BurstyGenerator::new(100_000, 1000, 3);
        let _quiet = g.next_minibatch(1000);
        let burst = g.next_minibatch(1000);
        let freq = frequencies(&burst);
        let max = freq.values().copied().max().unwrap_or(0);
        assert!(
            max > 700,
            "burst phase should be dominated by one item, max = {max}"
        );
    }

    #[test]
    fn churn_generator_rotates_heavy_sets() {
        let mut g = AdversarialChurnGenerator::new(4, 2000, 7);
        let epoch0 = g.next_minibatch(2000);
        let epoch1 = g.next_minibatch(2000);
        let f0 = frequencies(&epoch0);
        let f1 = frequencies(&epoch1);
        // Items 0..4 are heavy in epoch 0 and absent (as heavy) in epoch 1.
        let heavy0: u64 = (0..4).map(|i| f0.get(&i).copied().unwrap_or(0)).sum();
        let heavy0_later: u64 = (0..4).map(|i| f1.get(&i).copied().unwrap_or(0)).sum();
        assert!(heavy0 > 1000);
        assert!(heavy0_later < 100);
    }

    #[test]
    fn packet_trace_has_heavy_and_light_flows() {
        let mut g = PacketTraceGenerator::new(64, 9);
        let batch = g.next_minibatch(100_000);
        let freq = frequencies(&batch);
        let max = freq.values().copied().max().unwrap();
        let singletons = freq.values().filter(|&&c| c <= 2).count();
        assert!(
            max > 1000,
            "expected at least one elephant flow, max = {max}"
        );
        assert!(
            singletons > 100,
            "expected many mice flows, got {singletons}"
        );
    }

    #[test]
    fn binary_generator_density() {
        let mut g = BinaryStreamGenerator::new(0.25, 11);
        let bits = g.next_bits(40_000);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((8_000..12_000).contains(&ones), "ones = {ones}");
        let values = g.next_values(10_000, 100);
        assert!(values.iter().all(|&v| v <= 100));
        assert!(values.iter().any(|&v| v > 0));
    }
}
