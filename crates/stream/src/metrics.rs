//! Throughput and latency accounting for pipeline runs and experiments.

use std::time::{Duration, Instant};

/// Accumulates per-minibatch processing times and item counts.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    items: u64,
    batches: u64,
    busy: Duration,
    max_batch_latency: Duration,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` processing a minibatch of `items` elements and records it.
    pub fn record<R>(&mut self, items: u64, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        self.items += items;
        self.batches += 1;
        self.busy += elapsed;
        self.max_batch_latency = self.max_batch_latency.max(elapsed);
        out
    }

    /// Total items processed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Total minibatches processed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Total busy time.
    pub fn busy(&self) -> Duration {
        self.busy
    }

    /// The largest single-minibatch latency observed.
    pub fn max_batch_latency(&self) -> Duration {
        self.max_batch_latency
    }

    /// Items per second over the busy time (0 if nothing was recorded).
    pub fn items_per_second(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / secs
        }
    }

    /// Average nanoseconds spent per item (0 if nothing was recorded).
    pub fn nanos_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.busy.as_nanos() as f64 / self.items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = ThroughputMeter::new();
        let r = m.record(100, || 42);
        assert_eq!(r, 42);
        m.record(200, || ());
        assert_eq!(m.items(), 300);
        assert_eq!(m.batches(), 2);
        assert!(m.busy() > Duration::ZERO || m.items_per_second() >= 0.0);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let m = ThroughputMeter::new();
        assert_eq!(m.items_per_second(), 0.0);
        assert_eq!(m.nanos_per_item(), 0.0);
    }
}
