//! Minibatch buffer recycling between producers and shard workers.
//!
//! Routed ingestion moves one `Vec<u64>` per non-empty per-shard sub-batch
//! from a producer into a shard worker's queue; without recycling, every
//! minibatch costs a fresh allocation per sub-batch on the producer and a
//! deallocation on the worker — per batch, forever. A [`BufferPool`] closes
//! the loop:
//!
//! * producers [`BufferPool::checkout`] a *parts container* (`shards`
//!   buffers, one per shard), route into it, send the non-empty buffers to
//!   the workers, and [`BufferPool::checkin`] the container;
//! * each worker, after ingesting a sub-batch, clears the buffer and
//!   [`BufferPool::give_back`]s it to its shard's **return lane**; the next
//!   `checkout` refills container slots from the lanes, so buffer capacity
//!   circulates producer → worker → producer instead of allocator → heap.
//!
//! Every pool operation uses `try_lock` and **never blocks**: under
//! momentary contention a checkout simply hands out a fresh (empty) buffer
//! and a give-back drops the buffer — recycling is an optimisation, never a
//! synchronisation point, so the pool cannot deadlock or stall the ingest
//! path. Lanes are bounded, so a burst of in-flight batches cannot pin
//! unbounded memory in the pool.
//!
//! ```
//! use psfa_stream::BufferPool;
//!
//! let pool = BufferPool::new(2, 4);
//! let mut parts = pool.checkout();
//! parts[0].extend([1, 2, 3]);
//! let routed = std::mem::take(&mut parts[0]); // sent to shard 0's worker
//! pool.checkin(parts);
//! // ... the worker finishes the batch:
//! let mut done = routed;
//! done.clear();
//! pool.give_back(0, done); // capacity returns to shard 0's lane
//! assert!(pool.checkout()[0].capacity() >= 3);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A relaxed snapshot of the pool's recycling effectiveness.
///
/// `misses` is the observability hook for the zero-alloc claim: after
/// warm-up (the first `shards × lane_capacity` checkouts necessarily
/// allocate), a steady-state miss means a fresh `Vec` allocation escaped
/// the recycling loop — exactly the silent allocation the bench shim used
/// to be the only way to see.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Checkout slots refilled from a return lane (recycled capacity).
    pub hits: u64,
    /// Checkout slots left empty (the router grows them — a fresh
    /// allocation downstream). Includes unavoidable warm-up misses.
    pub misses: u64,
    /// Give-backs dropped because the lane was full or contended.
    pub drops: u64,
}

/// Recycles routed sub-batch buffers between producers and shard workers
/// (see the module docs).
#[derive(Debug)]
pub struct BufferPool {
    /// Per-shard return lanes of cleared buffers, filled by workers.
    lanes: Vec<Mutex<Vec<Vec<u64>>>>,
    /// Recycled parts containers (the outer `Vec` of per-shard buffers).
    containers: Mutex<Vec<Vec<Vec<u64>>>>,
    /// Maximum buffers retained per lane; give-backs beyond it are dropped.
    lane_capacity: usize,
    /// Checkout slots refilled with recycled capacity (relaxed telemetry).
    hits: AtomicU64,
    /// Checkout slots handed out with no capacity (a fresh allocation will
    /// happen downstream when the router grows the buffer).
    misses: AtomicU64,
    /// Give-backs dropped on lane contention or a full lane.
    drops: AtomicU64,
}

impl BufferPool {
    /// Creates a pool for `shards` shards retaining at most `lane_capacity`
    /// buffers per shard lane (a sensible value is the engine's per-shard
    /// queue capacity plus a small slack — more buffers than that can never
    /// be in flight at once).
    ///
    /// # Panics
    /// Panics if `shards == 0` or `lane_capacity == 0`.
    pub fn new(shards: usize, lane_capacity: usize) -> Self {
        assert!(shards > 0, "BufferPool: shards must be non-zero");
        assert!(
            lane_capacity > 0,
            "BufferPool: lane capacity must be non-zero"
        );
        Self {
            lanes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            containers: Mutex::new(Vec::new()),
            lane_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            drops: AtomicU64::new(0),
        }
    }

    /// Number of shards the pool recycles for.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Hands out a parts container of `shards` empty buffers, refilling
    /// capacity-less slots from the shard return lanes. Never blocks; on
    /// lane contention the slot simply stays empty and the router grows it.
    pub fn checkout(&self) -> Vec<Vec<u64>> {
        let mut parts = match self.containers.try_lock() {
            Ok(mut containers) => containers.pop().unwrap_or_default(),
            Err(_) => Vec::new(),
        };
        parts.resize_with(self.lanes.len(), Vec::new);
        for (shard, part) in parts.iter_mut().enumerate() {
            debug_assert!(part.is_empty(), "checked-in container held items");
            if part.capacity() == 0 {
                if let Ok(mut lane) = self.lanes[shard].try_lock() {
                    if let Some(buf) = lane.pop() {
                        *part = buf;
                    }
                }
            }
            // Relaxed telemetry: a capacity-less slot is a (future) fresh
            // allocation the recycling loop failed to prevent.
            if part.capacity() == 0 {
                self.misses.fetch_add(1, Ordering::Relaxed);
            } else {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        parts
    }

    /// Returns a parts container after its non-empty buffers were sent off
    /// (their slots left behind as empty `Vec`s by `std::mem::take`).
    /// Leftover capacity in unsent slots stays with the container for the
    /// next checkout.
    pub fn checkin(&self, mut parts: Vec<Vec<u64>>) {
        for part in &mut parts {
            part.clear();
        }
        if let Ok(mut containers) = self.containers.try_lock() {
            if containers.len() < self.lane_capacity {
                containers.push(parts);
            }
        }
    }

    /// Takes one recycled buffer from `shard`'s return lane, or `None`
    /// when the lane is empty or momentarily contended. This is the
    /// per-producer scratch refill path: a producer that owns its parts
    /// container outright (instead of checking containers in and out)
    /// replaces each slot it sent to a worker with a buffer the worker
    /// previously gave back — the same capacity loop as
    /// [`BufferPool::checkout`], without sharing the container stack
    /// across producers. Counts a hit or miss like a checkout slot.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn take(&self, shard: usize) -> Option<Vec<u64>> {
        let recycled = self.lanes[shard]
            .try_lock()
            .ok()
            .and_then(|mut lane| lane.pop());
        match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(buf)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns one finished sub-batch buffer to `shard`'s lane (worker
    /// side). The buffer's contents are discarded; its capacity is what
    /// circulates. Never blocks — on contention or a full lane the buffer
    /// is simply dropped.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn give_back(&self, shard: usize, mut buffer: Vec<u64>) {
        buffer.clear();
        if buffer.capacity() == 0 {
            return;
        }
        if let Ok(mut lane) = self.lanes[shard].try_lock() {
            if lane.len() < self.lane_capacity {
                lane.push(buffer);
                return;
            }
        }
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Buffers currently parked in `shard`'s return lane (tests, metrics).
    pub fn lane_depth(&self, shard: usize) -> usize {
        self.lanes[shard].try_lock().map_or(0, |lane| lane.len())
    }

    /// Snapshot of the hit/miss/drop counters (relaxed reads; exact for
    /// operations that happened-before the call).
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_circulates_through_the_lanes() {
        let pool = BufferPool::new(2, 4);
        let mut parts = pool.checkout();
        assert_eq!(parts.len(), 2);
        parts[1].extend(0..100u64);
        let sent = std::mem::take(&mut parts[1]);
        pool.checkin(parts);
        pool.give_back(1, sent);
        assert_eq!(pool.lane_depth(1), 1);
        let refreshed = pool.checkout();
        assert!(refreshed[1].capacity() >= 100, "lane buffer was reused");
        assert!(refreshed[1].is_empty());
        assert_eq!(pool.lane_depth(1), 0);
    }

    #[test]
    fn lanes_are_bounded() {
        let pool = BufferPool::new(1, 2);
        for _ in 0..5 {
            pool.give_back(0, Vec::with_capacity(8));
        }
        assert_eq!(pool.lane_depth(0), 2);
        assert_eq!(pool.counters().drops, 3);
        // Capacity-less buffers are not worth parking (and not a "drop" —
        // there was no capacity to lose).
        let pool = BufferPool::new(1, 2);
        pool.give_back(0, Vec::new());
        assert_eq!(pool.lane_depth(0), 0);
        assert_eq!(pool.counters().drops, 0);
    }

    #[test]
    fn counters_expose_the_recycling_loop() {
        let pool = BufferPool::new(2, 4);
        // Cold checkout: every slot is a (warm-up) miss.
        let mut parts = pool.checkout();
        assert_eq!(
            pool.counters(),
            PoolCounters {
                hits: 0,
                misses: 2,
                drops: 0
            }
        );
        parts[0].extend(0..64u64);
        let sent = std::mem::take(&mut parts[0]);
        pool.checkin(parts);
        pool.give_back(0, sent);
        // Warm checkout: shard 0 recycles, shard 1 still misses.
        let parts = pool.checkout();
        let counters = pool.counters();
        assert_eq!((counters.hits, counters.misses), (1, 3));
        drop(parts);
    }

    #[test]
    fn take_refills_producer_owned_scratch() {
        let pool = BufferPool::new(2, 4);
        assert_eq!(pool.take(0), None); // cold lane: a miss
        pool.give_back(0, Vec::with_capacity(64));
        let buf = pool.take(0).expect("lane buffer was reused");
        assert!(buf.capacity() >= 64);
        assert_eq!(pool.lane_depth(0), 0);
        let counters = pool.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn checkin_scrubs_leftover_items() {
        let pool = BufferPool::new(2, 4);
        let mut parts = pool.checkout();
        parts[0].extend([9, 9, 9]);
        // Slot 0 was never sent (e.g. the routed sub-batch stayed empty
        // elsewhere); checkin must clear it before the container recycles.
        pool.checkin(parts);
        let parts = pool.checkout();
        assert!(parts.iter().all(Vec::is_empty));
    }

    #[test]
    fn concurrent_producers_and_workers_never_block() {
        let pool = std::sync::Arc::new(BufferPool::new(4, 8));
        let mut threads = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            threads.push(std::thread::spawn(move || {
                for round in 0..500usize {
                    let mut parts = pool.checkout();
                    let shard = (t + round) % 4;
                    parts[shard].extend(0..32u64);
                    let sent = std::mem::take(&mut parts[shard]);
                    pool.checkin(parts);
                    pool.give_back(shard, sent);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
    }
}
