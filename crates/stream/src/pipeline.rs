//! Minibatch pipeline driver.
//!
//! Realises the processing model of Figure 1 (right-hand side): a stream is
//! discretized into minibatches and each minibatch is handed to one or more
//! operators that update **shared** data structures. The driver records
//! per-operator throughput so the examples and experiments can compare
//! operator variants side by side on the same input.

use crate::generators::StreamGenerator;
use crate::metrics::ThroughputMeter;

/// An operator that consumes minibatches of item identifiers.
///
/// All PSFA aggregates (heavy hitters, frequency estimation, Count-Min, …)
/// are wrapped as `MinibatchOperator`s by the umbrella crate.
pub trait MinibatchOperator {
    /// Incorporates one minibatch.
    fn process(&mut self, minibatch: &[u64]);

    /// Short name used in reports.
    fn name(&self) -> String;
}

impl<F: FnMut(&[u64])> MinibatchOperator for (String, F) {
    fn process(&mut self, minibatch: &[u64]) {
        (self.1)(minibatch)
    }

    fn name(&self) -> String {
        self.0.clone()
    }
}

/// Per-operator result of a pipeline run.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Operator name.
    pub name: String,
    /// Items processed.
    pub items: u64,
    /// Items per second of operator busy time.
    pub items_per_second: f64,
    /// Average nanoseconds per item.
    pub nanos_per_item: f64,
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Number of minibatches actually drawn from the generator (may be less
    /// than requested if the generator ran dry).
    pub batches: u64,
    /// Minibatch size *requested* per batch; generators may return fewer.
    pub batch_size: usize,
    /// Total items actually drawn from the generator — the authoritative
    /// count, never inferred from `batches * batch_size`.
    pub items_drawn: u64,
    /// One report per operator, in registration order.
    pub operators: Vec<OperatorReport>,
}

impl PipelineReport {
    /// Renders the report as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>16} {:>12}\n",
            "operator", "items", "items/s", "ns/item"
        ));
        for op in &self.operators {
            out.push_str(&format!(
                "{:<28} {:>12} {:>16.0} {:>12.1}\n",
                op.name, op.items, op.items_per_second, op.nanos_per_item
            ));
        }
        out
    }
}

/// Drives minibatches from a generator through a set of operators.
pub struct Pipeline<'a> {
    operators: Vec<Box<dyn MinibatchOperator + 'a>>,
}

impl<'a> Default for Pipeline<'a> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Pipeline<'a> {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self {
            operators: Vec::new(),
        }
    }

    /// Registers an operator; every operator sees every minibatch.
    pub fn add_operator(&mut self, op: impl MinibatchOperator + 'a) -> &mut Self {
        self.operators.push(Box::new(op));
        self
    }

    /// Runs up to `batches` minibatches of `batch_size` items from
    /// `generator` through every registered operator and reports per-operator
    /// throughput.
    ///
    /// Generators are allowed to return short minibatches; an *empty*
    /// minibatch signals end-of-stream and stops the run early. The report
    /// records the number of batches and items actually drawn — item counts
    /// are never inferred from `batches * batch_size`.
    pub fn run(
        &mut self,
        generator: &mut dyn StreamGenerator,
        batches: u64,
        batch_size: usize,
    ) -> PipelineReport {
        let mut meters: Vec<ThroughputMeter> = (0..self.operators.len())
            .map(|_| ThroughputMeter::new())
            .collect();
        let mut batches_drawn = 0u64;
        let mut items_drawn = 0u64;
        for _ in 0..batches {
            let minibatch = generator.next_minibatch(batch_size);
            if minibatch.is_empty() {
                break;
            }
            batches_drawn += 1;
            items_drawn += minibatch.len() as u64;
            for (op, meter) in self.operators.iter_mut().zip(meters.iter_mut()) {
                meter.record(minibatch.len() as u64, || op.process(&minibatch));
            }
        }
        PipelineReport {
            batches: batches_drawn,
            batch_size,
            items_drawn,
            operators: self
                .operators
                .iter()
                .zip(meters.iter())
                .map(|(op, meter)| OperatorReport {
                    name: op.name(),
                    items: meter.items(),
                    items_per_second: meter.items_per_second(),
                    nanos_per_item: meter.nanos_per_item(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::UniformGenerator;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn pipeline_feeds_every_operator_every_batch() {
        let count_a = Rc::new(Cell::new(0u64));
        let count_b = Rc::new(Cell::new(0u64));
        let (ca, cb) = (count_a.clone(), count_b.clone());
        let mut pipeline = Pipeline::new();
        pipeline.add_operator(("a".to_string(), move |b: &[u64]| {
            ca.set(ca.get() + b.len() as u64)
        }));
        pipeline.add_operator(("b".to_string(), move |b: &[u64]| {
            cb.set(cb.get() + b.len() as u64)
        }));
        let mut generator = UniformGenerator::new(100, 1);
        let report = pipeline.run(&mut generator, 10, 250);
        assert_eq!(count_a.get(), 2500);
        assert_eq!(count_b.get(), 2500);
        assert_eq!(report.operators.len(), 2);
        assert_eq!(report.operators[0].items, 2500);
        assert!(report.to_table().contains("items/s"));
    }

    /// A generator with a finite supply: returns short batches near the end
    /// and empty batches once exhausted.
    struct FiniteGenerator {
        remaining: usize,
    }

    impl StreamGenerator for FiniteGenerator {
        fn next_minibatch(&mut self, size: usize) -> Vec<u64> {
            let take = size.min(self.remaining);
            self.remaining -= take;
            (0..take as u64).collect()
        }

        fn name(&self) -> &'static str {
            "finite"
        }
    }

    #[test]
    fn short_and_empty_minibatches_are_reported_accurately() {
        // 10 batches of 250 requested, but only 600 items exist: the run must
        // report 3 batches (250 + 250 + 100) and 600 items, not 2500.
        let seen = Rc::new(Cell::new(0u64));
        let s = seen.clone();
        let mut pipeline = Pipeline::new();
        pipeline.add_operator(("op".to_string(), move |b: &[u64]| {
            s.set(s.get() + b.len() as u64)
        }));
        let mut generator = FiniteGenerator { remaining: 600 };
        let report = pipeline.run(&mut generator, 10, 250);
        assert_eq!(report.batches, 3, "empty minibatch must end the run");
        assert_eq!(report.items_drawn, 600);
        assert_eq!(report.operators[0].items, 600);
        assert_eq!(seen.get(), 600);
    }

    #[test]
    fn full_run_reports_requested_batches() {
        let mut pipeline = Pipeline::new();
        pipeline.add_operator(("noop".to_string(), |_: &[u64]| {}));
        let mut generator = UniformGenerator::new(100, 3);
        let report = pipeline.run(&mut generator, 4, 50);
        assert_eq!(report.batches, 4);
        assert_eq!(report.items_drawn, 200);
    }

    #[test]
    fn empty_pipeline_is_fine() {
        let mut pipeline = Pipeline::new();
        let mut generator = UniformGenerator::new(10, 2);
        let report = pipeline.run(&mut generator, 5, 100);
        assert!(report.operators.is_empty());
        assert_eq!(report.batches, 5);
    }
}
