//! Pluggable minibatch routing: how item occurrences are assigned to shards.
//!
//! PR 1's engine hard-coded hash routing ([`crate::split::shard_of`]), which
//! partitions the *key space* evenly but not the *traffic*: under Zipf-skewed
//! streams every occurrence of a hot key lands on one shard, and worst-case
//! shard load — not the hardware — bounds throughput. This module makes
//! routing a first-class abstraction:
//!
//! * [`Router`] — the trait: split a minibatch into per-shard sub-batches and
//!   answer, for any key, *where its count mass may live* ([`Placement`]).
//! * [`HashRouter`] — stateless hash partitioning; every key is owned by
//!   exactly one shard (PR 1's behaviour, still the default).
//! * [`SkewAwareRouter`] — detects hot keys online with a Space-Saving
//!   tracker (as in QPOPSS and Parallel Space Saving) and spreads each hot
//!   key's occurrences round-robin across *all* shards; queries must then sum
//!   the key's per-shard counts ([`Placement::Replicated`]).
//! * [`RoutingPolicy`] — plain-data configuration that builds a router, so
//!   engine configs stay `Clone`/`Debug` while handles share one
//!   `Arc<dyn Router>`.
//!
//! ## Why splitting preserves the paper's one-sided bounds
//!
//! Each occurrence still lands on exactly one shard, so per-shard substreams
//! partition the input stream: `Σ_s m_s = m`. A shard's Misra–Gries summary
//! underestimates its substream frequency `f_s` by at most `ε·m_s`, hence the
//! *sum* of a replicated key's per-shard estimates underestimates
//! `f = Σ_s f_s` by at most `Σ_s ε·m_s = ε·m` and never overestimates —
//! exactly the single-summary guarantee. Count-Min sketches overestimate
//! per shard by at most `ε_cm·m_s`, so the summed overestimate stays within
//! `ε_cm·m`. This is the mergeable-summaries argument of
//! `psfa_freq::MgSummary::merge` applied at query time.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use psfa_baselines::SpaceSaving;

use crate::split::{partition_by_key, shard_of};

/// Process-unique ids for [`SkewAwareRouter`] instances, keying the
/// per-thread hot-set cache below.
static NEXT_ROUTER_ID: AtomicU64 = AtomicU64::new(0);

/// Per-thread cache slots are capped so a thread that churns through many
/// routers (tests, benches) cannot grow its cache without bound.
const HOT_CACHE_SLOTS: usize = 32;

struct HotCacheSlot {
    router: u64,
    epoch: u64,
    hot: Arc<Vec<u64>>,
}

thread_local! {
    /// Per-producer cache of each router's hot set, validated against the
    /// router's promotion epoch: the per-batch routing path reads the hot
    /// set with **zero shared-memory writes** (no `RwLock` read, no `Arc`
    /// refcount bump) until a promotion actually happens.
    static HOT_CACHE: RefCell<Vec<HotCacheSlot>> = const { RefCell::new(Vec::new()) };
}

/// Where a key's count mass may reside under a router's policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All of the key's occurrences were routed to this single shard; a
    /// point query is answered by the owner alone.
    Owner(usize),
    /// The key's occurrences may be spread across every shard; a point
    /// query must sum the per-shard estimates (one-sided error `ε·m`, see
    /// the module docs).
    Replicated,
}

/// A routing policy: splits minibatches across shards and reports where each
/// key's counts live.
///
/// Implementations are shared between concurrent producers and queriers
/// behind an `Arc<dyn Router>`, so all methods take `&self`; stateful
/// routers (hot-key detection) use interior mutability.
pub trait Router: Send + Sync {
    /// Short policy name for metrics and experiment tables.
    fn name(&self) -> &'static str;

    /// The number of shards this router routes across.
    fn shards(&self) -> usize;

    /// Splits one minibatch into `shards()` per-shard sub-batches. Every
    /// item occurrence lands in exactly one sub-batch, and item order within
    /// a sub-batch preserves stream order. May update internal skew state.
    fn partition(&self, minibatch: &[u64]) -> Vec<Vec<u64>>;

    /// Allocation-free variant of [`Router::partition`]: routes into
    /// caller-provided buffers (one per shard, cleared first) instead of
    /// allocating fresh `Vec`s. The ingest hot path draws `parts` from a
    /// [`crate::BufferPool`], so steady-state routing performs no heap
    /// allocation at all. The default implementation delegates to
    /// `partition` (allocating); both built-in routers override it.
    ///
    /// # Panics
    /// Implementations may panic if `parts.len() != self.shards()`.
    fn partition_into(&self, minibatch: &[u64], parts: &mut [Vec<u64>]) {
        for (slot, part) in parts.iter_mut().zip(self.partition(minibatch)) {
            *slot = part;
        }
    }

    /// The shards on which `key`'s count mass may reside. Queries use this
    /// to decide between an owner-only read and a cross-shard sum.
    fn placement(&self, key: u64) -> Placement;

    /// Keys currently split across shards (empty for static routing).
    fn hot_keys(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Monotone count of hot-set changes (promotion events) so far; `0`
    /// forever for static routers. Observability layers poll this cheaply
    /// (one atomic load) to detect promotions without hooking the routing
    /// path.
    fn promotions(&self) -> u64 {
        0
    }

    /// Pre-promotes `keys` to the split (replicated) set, if the policy
    /// supports splitting. Used by crash recovery to restore a persisted hot
    /// set, so replicated-key placements — and therefore query-time summing —
    /// survive a restart. A no-op for static routers.
    fn promote(&self, _keys: &[u64]) {}
}

/// Stateless hash routing: each key is owned by exactly one shard, the pure
/// function [`shard_of`] of the key. PR 1's behaviour and the default.
#[derive(Debug, Clone)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// Creates a hash router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "HashRouter: shards must be non-zero");
        Self { shards }
    }
}

impl Router for HashRouter {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn shards(&self) -> usize {
        self.shards
    }

    fn partition(&self, minibatch: &[u64]) -> Vec<Vec<u64>> {
        partition_by_key(minibatch, self.shards)
    }

    fn partition_into(&self, minibatch: &[u64], parts: &mut [Vec<u64>]) {
        assert_eq!(parts.len(), self.shards, "partition_into: wrong part count");
        for part in parts.iter_mut() {
            part.clear();
        }
        for &item in minibatch {
            parts[shard_of(item, self.shards)].push(item);
        }
    }

    fn placement(&self, key: u64) -> Placement {
        Placement::Owner(shard_of(key, self.shards))
    }
}

/// Skew-aware routing: hot keys are detected online and split round-robin
/// across all shards; everything else routes by hash.
///
/// A Space-Saving tracker observes every partitioned minibatch. Once a key's
/// estimated traffic share reaches `hot_fraction` (of all items observed so
/// far), it is *promoted*: subsequent occurrences are dealt round-robin to
/// all shards, levelling the per-shard load that hash routing concentrates
/// on the key's home shard. Promotion is **sticky** — a promoted key is
/// never demoted, so [`Router::placement`] can always answer from the
/// current hot set without per-key routing history (dynamic demotion needs
/// exactly that history and is left as a follow-on; see ROADMAP.md).
///
/// Promotion is a load-balancing decision, not a correctness one: whichever
/// keys are (or are not) promoted, every occurrence lands on exactly one
/// shard, and replicated keys are summed at query time (module docs). A
/// query racing a promotion may briefly read `Placement::Owner` for a key
/// whose newest occurrences were already spread — the summed/owner estimate
/// remains one-sided (it never overestimates) and catches up on the next
/// read.
pub struct SkewAwareRouter {
    /// Process-unique id keying the per-thread hot-set cache.
    id: u64,
    shards: usize,
    hot_capacity: usize,
    hot_fraction: f64,
    min_items: u64,
    /// Every `sample_stride`-th item is fed to the tracker: a key with
    /// traffic share `p` has share `p` in the stride sample too, so
    /// detection is unaffected while the per-batch tracking cost (including
    /// Space-Saving's `O(capacity)` eviction scans) shrinks by the stride.
    sample_stride: usize,
    tracker: Mutex<SpaceSaving>,
    /// Sticky, monotonically growing hot set, kept sorted: with at most
    /// `hot_capacity` (tens of) entries, a binary search beats hashing on
    /// the per-item routing path. Readers clone the `Arc` so the routing
    /// loop never holds the lock.
    hot: RwLock<Arc<Vec<u64>>>,
    /// Bumped after every hot-set change; per-producer caches revalidate
    /// against it with one atomic load per batch (see [`HOT_CACHE`]).
    promotion_epoch: AtomicU64,
    /// Per-producer thread-local caching of the hot set (on by default);
    /// disable to measure the uncached `RwLock` + `Arc`-clone path.
    cache_hot_set: bool,
    /// Round-robin cursor shared by all producers for hot-key occurrences.
    cursor: AtomicUsize,
    /// Rotates the sampling offset so periodic streams cannot hide from the
    /// stride.
    batches: AtomicUsize,
}

impl SkewAwareRouter {
    /// Fraction of observed traffic at which a key is promoted, when not set
    /// explicitly: a quarter of a shard's fair share `1/shards`, so keys are
    /// split well before they can dominate one shard.
    pub fn default_hot_fraction(shards: usize) -> f64 {
        0.25 / shards as f64
    }

    /// Hot-key budget when not set explicitly: `4·shards`, comfortably more
    /// keys than can each hold [`Self::default_hot_fraction`] of the traffic.
    pub fn default_hot_capacity(shards: usize) -> usize {
        4 * shards
    }

    /// Creates a skew-aware router with default parameters:
    /// [`Self::default_hot_capacity`] hot keys at most, promotion at
    /// [`Self::default_hot_fraction`].
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        Self::with_params(
            shards,
            Self::default_hot_capacity(shards),
            Self::default_hot_fraction(shards),
        )
    }

    /// Creates a skew-aware router with an explicit hot-key budget and
    /// promotion threshold.
    ///
    /// # Panics
    /// Panics unless `shards > 0`, `hot_capacity > 0` and
    /// `0 < hot_fraction < 1`.
    pub fn with_params(shards: usize, hot_capacity: usize, hot_fraction: f64) -> Self {
        assert!(shards > 0, "SkewAwareRouter: shards must be non-zero");
        assert!(
            hot_capacity > 0,
            "SkewAwareRouter: hot capacity must be non-zero"
        );
        assert!(
            hot_fraction > 0.0 && hot_fraction < 1.0,
            "SkewAwareRouter: hot fraction must be in (0, 1)"
        );
        // Tracker error one quarter of the promotion threshold, so the
        // overestimate of a Space-Saving entry cannot promote a key whose
        // true share is far below `hot_fraction`.
        let tracker_epsilon = (hot_fraction / 4.0).max(1e-6);
        Self {
            id: NEXT_ROUTER_ID.fetch_add(1, Ordering::Relaxed),
            shards,
            hot_capacity,
            hot_fraction,
            min_items: 512,
            sample_stride: 8,
            tracker: Mutex::new(SpaceSaving::new(tracker_epsilon)),
            hot: RwLock::new(Arc::new(Vec::new())),
            promotion_epoch: AtomicU64::new(0),
            cache_hot_set: true,
            cursor: AtomicUsize::new(0),
            batches: AtomicUsize::new(0),
        }
    }

    /// Enables or disables the per-producer thread-local hot-set cache
    /// (enabled by default). Disabling restores the PR 2 behaviour — one
    /// `RwLock` read plus one `Arc` clone per partitioned batch — and exists
    /// so `benches/routing.rs` can measure exactly what the cache removes.
    pub fn hot_set_caching(mut self, enabled: bool) -> Self {
        self.cache_hot_set = enabled;
        self
    }

    /// Runs `f` with the current hot set, served from the per-thread cache
    /// when it is still at this router's promotion epoch. On the hit path
    /// (every batch between promotions — i.e. almost all of them, since the
    /// hot set is sticky and bounded) this performs a single relaxed-ish
    /// atomic *load* and no shared-memory writes; only a promotion, or the
    /// thread's first batch through this router, touches the `RwLock`.
    fn with_hot<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        if !self.cache_hot_set {
            let hot = self.hot_set();
            return f(&hot);
        }
        let epoch = self.promotion_epoch.load(Ordering::Acquire);
        HOT_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(at) = cache.iter().position(|s| s.router == self.id) {
                if cache[at].epoch != epoch {
                    // A promotion happened: refresh from the shared set.
                    // (Reading the epoch *before* the lock means a racing
                    // promotion can only make the cached copy newer than its
                    // recorded epoch — the next batch refreshes again, which
                    // is safe; the hot set only ever grows.)
                    cache[at].hot = self.hot_set();
                    cache[at].epoch = epoch;
                }
                f(&cache[at].hot)
            } else {
                if cache.len() >= HOT_CACHE_SLOTS {
                    // Evict the oldest slot; its router will simply re-cache.
                    cache.remove(0);
                }
                cache.push(HotCacheSlot {
                    router: self.id,
                    epoch,
                    hot: self.hot_set(),
                });
                let slot = cache.last().expect("just pushed");
                f(&slot.hot)
            }
        })
    }

    /// Feeds a stride sample of one minibatch to the tracker and promotes
    /// any key whose estimated traffic share reached `hot_fraction`.
    fn observe(&self, minibatch: &[u64], hot: &[u64]) {
        // Promotion is sticky, so once the hot set is full no observation
        // can ever matter again — stop paying the tracker lock and the
        // sampling work for the rest of the process lifetime.
        if hot.len() >= self.hot_capacity {
            return;
        }
        let offset = self.batches.fetch_add(1, Ordering::Relaxed) % self.sample_stride;
        let mut tracker = self.tracker.lock().expect("skew tracker lock poisoned");
        for &item in minibatch.iter().skip(offset).step_by(self.sample_stride) {
            tracker.update(item);
        }
        let m = tracker.stream_len();
        if m < self.min_items {
            return;
        }
        let threshold = self.hot_fraction * m as f64;
        let promoted: Vec<u64> = tracker
            .entries()
            .into_iter()
            .filter(|&(key, est)| est as f64 >= threshold && hot.binary_search(&key).is_err())
            .map(|(key, _)| key)
            .collect();
        drop(tracker);
        if promoted.is_empty() {
            return;
        }
        self.insert_hot(&promoted);
    }

    /// Inserts `keys` into the sorted hot set (up to `hot_capacity`) and
    /// bumps the promotion epoch so per-producer caches refresh.
    fn insert_hot(&self, keys: &[u64]) {
        let mut guard = self.hot.write().expect("hot set lock poisoned");
        let mut next: Vec<u64> = (**guard).clone();
        let mut changed = false;
        for &key in keys {
            if next.len() >= self.hot_capacity {
                break;
            }
            if let Err(at) = next.binary_search(&key) {
                next.insert(at, key);
                changed = true;
            }
        }
        if changed {
            *guard = Arc::new(next);
            // Release-publish after the set is visible behind the lock; a
            // cache that loads the new epoch will read the new set (or a
            // newer one — the set only grows).
            self.promotion_epoch.fetch_add(1, Ordering::Release);
        }
    }

    fn hot_set(&self) -> Arc<Vec<u64>> {
        self.hot.read().expect("hot set lock poisoned").clone()
    }
}

impl Router for SkewAwareRouter {
    fn name(&self) -> &'static str {
        "skew-aware"
    }

    fn shards(&self) -> usize {
        self.shards
    }

    fn partition(&self, minibatch: &[u64]) -> Vec<Vec<u64>> {
        let mut parts: Vec<Vec<u64>> = (0..self.shards)
            .map(|_| Vec::with_capacity(minibatch.len() / self.shards + 1))
            .collect();
        self.partition_into(minibatch, &mut parts);
        parts
    }

    fn partition_into(&self, minibatch: &[u64], parts: &mut [Vec<u64>]) {
        assert_eq!(parts.len(), self.shards, "partition_into: wrong part count");
        self.with_hot(|hot| {
            for part in parts.iter_mut() {
                part.clear();
            }
            // One shared-cursor RMW per *batch*, not per hot occurrence: under
            // heavy skew a per-item fetch_add would ping-pong one cache line
            // between all producers. Reserving `len` slots up front over-counts
            // (cold items burn no slot), which only shifts the next batch's
            // round-robin phase — the deal within a batch stays exact.
            let mut cursor = self.cursor.fetch_add(minibatch.len(), Ordering::Relaxed);
            for &item in minibatch {
                let shard = if hot.binary_search(&item).is_ok() {
                    cursor += 1;
                    cursor % self.shards
                } else {
                    shard_of(item, self.shards)
                };
                parts[shard].push(item);
            }
            self.observe(minibatch, hot);
        })
    }

    fn placement(&self, key: u64) -> Placement {
        let replicated = self.with_hot(|hot| hot.binary_search(&key).is_ok());
        if replicated {
            Placement::Replicated
        } else {
            Placement::Owner(shard_of(key, self.shards))
        }
    }

    fn hot_keys(&self) -> Vec<u64> {
        (*self.hot_set()).clone()
    }

    fn promotions(&self) -> u64 {
        // The promotion epoch is bumped exactly once per hot-set change.
        self.promotion_epoch.load(Ordering::Acquire)
    }

    fn promote(&self, keys: &[u64]) {
        if keys.is_empty() {
            return;
        }
        self.insert_hot(keys);
    }
}

/// Plain-data routing configuration: which [`Router`] an engine builds at
/// spawn time. Keeps `EngineConfig` `Clone` + `Debug` while the running
/// engine shares a single `Arc<dyn Router>` across handles.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RoutingPolicy {
    /// Hash partitioning: each key owned by exactly one shard (default).
    #[default]
    Hash,
    /// Online hot-key detection with round-robin splitting of hot keys.
    SkewAware {
        /// Maximum number of keys ever promoted to hot; `None` picks
        /// [`SkewAwareRouter::default_hot_capacity`] for the shard count.
        hot_capacity: Option<usize>,
        /// Traffic share at which a key is promoted; `None` picks
        /// [`SkewAwareRouter::default_hot_fraction`] for the shard count.
        hot_fraction: Option<f64>,
    },
}

impl RoutingPolicy {
    /// Skew-aware routing with default parameters.
    pub fn skew_aware() -> Self {
        RoutingPolicy::SkewAware {
            hot_capacity: None,
            hot_fraction: None,
        }
    }

    /// Short policy name for display.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::Hash => "hash",
            RoutingPolicy::SkewAware { .. } => "skew-aware",
        }
    }

    /// Checks parameter ranges for the given shard count.
    ///
    /// # Panics
    /// Panics on invalid parameters (a `hot_fraction` outside `(0, 1)`).
    pub fn validate(&self, shards: usize) {
        assert!(shards > 0, "routing requires at least one shard");
        if let RoutingPolicy::SkewAware {
            hot_capacity,
            hot_fraction,
        } = self
        {
            if let Some(capacity) = hot_capacity {
                assert!(
                    *capacity > 0,
                    "skew-aware routing requires a non-zero hot_capacity"
                );
            }
            if let Some(f) = hot_fraction {
                assert!(
                    *f > 0.0 && *f < 1.0,
                    "skew-aware routing requires 0 < hot_fraction < 1"
                );
            }
        }
    }

    /// Builds the router this policy describes.
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`RoutingPolicy::validate`]).
    pub fn build(&self, shards: usize) -> Arc<dyn Router> {
        self.validate(shards);
        match *self {
            RoutingPolicy::Hash => Arc::new(HashRouter::new(shards)),
            RoutingPolicy::SkewAware {
                hot_capacity,
                hot_fraction,
            } => Arc::new(SkewAwareRouter::with_params(
                shards,
                hot_capacity.unwrap_or_else(|| SkewAwareRouter::default_hot_capacity(shards)),
                hot_fraction.unwrap_or_else(|| SkewAwareRouter::default_hot_fraction(shards)),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{StreamGenerator, ZipfGenerator};
    use std::collections::HashMap;

    fn shard_loads(parts: &[Vec<u64>]) -> Vec<usize> {
        parts.iter().map(Vec::len).collect()
    }

    fn imbalance(loads: &[usize]) -> f64 {
        let total: usize = loads.iter().sum();
        let mean = total as f64 / loads.len() as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / mean
    }

    #[test]
    fn hash_router_matches_partition_by_key() {
        let router = HashRouter::new(8);
        let mut generator = ZipfGenerator::new(10_000, 1.2, 5);
        let batch = generator.next_minibatch(10_000);
        assert_eq!(router.partition(&batch), partition_by_key(&batch, 8));
        assert_eq!(router.shards(), 8);
        assert_eq!(router.name(), "hash");
        assert!(router.hot_keys().is_empty());
        for key in 0..100u64 {
            assert_eq!(router.placement(key), Placement::Owner(shard_of(key, 8)));
        }
    }

    #[test]
    fn skew_router_promotes_hot_keys_and_levels_load() {
        let shards = 8;
        let router = SkewAwareRouter::new(shards);
        let hash = HashRouter::new(shards);
        let mut generator = ZipfGenerator::new(100_000, 1.5, 13);
        let mut skew_loads = vec![0usize; shards];
        let mut hash_loads = vec![0usize; shards];
        for _ in 0..20 {
            let batch = generator.next_minibatch(5_000);
            for (s, part) in router.partition(&batch).iter().enumerate() {
                skew_loads[s] += part.len();
            }
            for (s, part) in hash.partition(&batch).iter().enumerate() {
                hash_loads[s] += part.len();
            }
        }
        // Zipf(1.5)'s head key carries ~38% of traffic; hash routing pins it
        // to one shard while the skew router spreads it.
        let hot = router.hot_keys();
        assert!(!hot.is_empty(), "head keys must be promoted");
        assert!(hot.contains(&0), "rank-0 key is the hottest");
        assert_eq!(router.placement(0), Placement::Replicated);
        assert!(
            imbalance(&skew_loads) < imbalance(&hash_loads),
            "skew-aware imbalance {:.3} must beat hash imbalance {:.3}",
            imbalance(&skew_loads),
            imbalance(&hash_loads)
        );
    }

    #[test]
    fn skew_router_partition_loses_no_items() {
        let router = SkewAwareRouter::with_params(4, 8, 0.05);
        let mut generator = ZipfGenerator::new(1_000, 1.4, 3);
        let mut sent: HashMap<u64, u64> = HashMap::new();
        let mut received: HashMap<u64, u64> = HashMap::new();
        for _ in 0..10 {
            let batch = generator.next_minibatch(2_000);
            for &x in &batch {
                *sent.entry(x).or_insert(0) += 1;
            }
            let parts = router.partition(&batch);
            assert_eq!(shard_loads(&parts).iter().sum::<usize>(), batch.len());
            for part in parts {
                for x in part {
                    *received.entry(x).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(
            sent, received,
            "every occurrence lands on exactly one shard"
        );
    }

    #[test]
    fn cold_keys_stay_on_their_home_shard() {
        let router = SkewAwareRouter::new(4);
        // Feed a hot-key-dominated stream so promotion happens.
        let batch: Vec<u64> = (0..4_000u64)
            .map(|i| if i % 2 == 0 { 7 } else { i })
            .collect();
        router.partition(&batch);
        router.partition(&batch);
        // Cold keys still map to their hash home.
        for key in [1u64, 3, 5, 9, 1001] {
            assert_eq!(router.placement(key), Placement::Owner(shard_of(key, 4)));
        }
        assert_eq!(router.placement(7), Placement::Replicated);
    }

    #[test]
    fn hot_capacity_bounds_the_hot_set() {
        let router = SkewAwareRouter::with_params(2, 3, 0.01);
        // Ten equally hot keys; only three may be promoted.
        let batch: Vec<u64> = (0..10_000u64).map(|i| i % 10).collect();
        for _ in 0..5 {
            router.partition(&batch);
        }
        assert!(router.hot_keys().len() <= 3);
    }

    #[test]
    fn promote_warm_starts_the_hot_set() {
        let router = SkewAwareRouter::new(4);
        assert!(router.hot_keys().is_empty());
        router.promote(&[42, 7, 7, 99]);
        assert_eq!(router.hot_keys(), vec![7, 42, 99]);
        assert_eq!(router.placement(42), Placement::Replicated);
        assert_eq!(router.placement(7), Placement::Replicated);
        // Hash routers ignore promotion.
        let hash = HashRouter::new(4);
        hash.promote(&[42]);
        assert!(hash.hot_keys().is_empty());
    }

    #[test]
    fn promote_respects_hot_capacity() {
        let router = SkewAwareRouter::with_params(2, 3, 0.1);
        router.promote(&(0..10u64).collect::<Vec<_>>());
        assert_eq!(router.hot_keys().len(), 3);
    }

    #[test]
    fn cached_and_uncached_routing_agree() {
        // Same stream through a cached and an uncached router: identical
        // partitions (both start from the same cursor phase), identical hot
        // sets, identical placements.
        let cached = SkewAwareRouter::new(4);
        let uncached = SkewAwareRouter::new(4).hot_set_caching(false);
        let mut generator = ZipfGenerator::new(50_000, 1.5, 17);
        for _ in 0..15 {
            let batch = generator.next_minibatch(3_000);
            assert_eq!(cached.partition(&batch), uncached.partition(&batch));
        }
        assert_eq!(cached.hot_keys(), uncached.hot_keys());
        assert!(
            !cached.hot_keys().is_empty(),
            "promotion must have happened"
        );
        for key in cached.hot_keys() {
            assert_eq!(cached.placement(key), Placement::Replicated);
            assert_eq!(uncached.placement(key), Placement::Replicated);
        }
    }

    #[test]
    fn cache_sees_promotions_made_by_other_threads() {
        // Warm this thread's cache with the empty hot set, promote from
        // another thread, and check this thread's next placement reflects it.
        let router = Arc::new(SkewAwareRouter::new(4));
        assert_eq!(router.placement(1234), Placement::Owner(shard_of(1234, 4)));
        let other = router.clone();
        std::thread::spawn(move || other.promote(&[1234]))
            .join()
            .unwrap();
        assert_eq!(router.placement(1234), Placement::Replicated);
    }

    #[test]
    fn routing_policy_builds_the_right_router() {
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::Hash);
        assert_eq!(RoutingPolicy::Hash.build(4).name(), "hash");
        let skew = RoutingPolicy::skew_aware().build(4);
        assert_eq!(skew.name(), "skew-aware");
        assert_eq!(skew.shards(), 4);
        let explicit = RoutingPolicy::SkewAware {
            hot_capacity: Some(2),
            hot_fraction: Some(0.2),
        }
        .build(2);
        assert_eq!(explicit.shards(), 2);
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn invalid_hot_fraction_rejected() {
        RoutingPolicy::SkewAware {
            hot_capacity: Some(4),
            hot_fraction: Some(1.5),
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "hot_capacity")]
    fn zero_hot_capacity_rejected() {
        RoutingPolicy::SkewAware {
            hot_capacity: Some(0),
            hot_fraction: None,
        }
        .validate(2);
    }
}
