//! Key-space splitting of minibatch streams across shards.
//!
//! [`shard_of`] and [`partition_by_key`] are the *hash* assignment: each key
//! owned by exactly one shard, a pure function of the key. They remain the
//! default policy, but routing is now pluggable — see [`crate::router`] for
//! the [`Router`] trait and the skew-aware hot-key-splitting implementation;
//! [`SplitGenerator`] routes through any `Arc<dyn Router>`.
//!
//! The routing hash is deliberately *independent* of the seeded hash
//! families in `psfa-primitives`: operators inside a shard must not see a
//! key distribution correlated with their own hash functions.

use std::sync::Arc;

use crate::generators::StreamGenerator;
use crate::router::{HashRouter, Router};

/// Multiplier of the SplitMix64/Fibonacci mixing step used for routing.
const ROUTE_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// The shard in `0..shards` that owns `key`.
///
/// Stable across processes and handle clones: routing is a pure function of
/// `(key, shards)`.
///
/// # Panics
/// Panics if `shards == 0`.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_of: shards must be non-zero");
    // Finalizer of SplitMix64: full-avalanche mixing, then a multiply-shift
    // reduction onto the shard range (unbiased enough for load balancing).
    let mut z = key.wrapping_add(ROUTE_MULTIPLIER);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (((z as u128) * (shards as u128)) >> 64) as usize
}

/// Splits one minibatch into `shards` per-shard sub-batches by key
/// ownership. Item order within each sub-batch preserves stream order.
pub fn partition_by_key(minibatch: &[u64], shards: usize) -> Vec<Vec<u64>> {
    assert!(shards > 0, "partition_by_key: shards must be non-zero");
    let mut parts: Vec<Vec<u64>> = (0..shards)
        .map(|_| Vec::with_capacity(minibatch.len() / shards + 1))
        .collect();
    for &item in minibatch {
        parts[shard_of(item, shards)].push(item);
    }
    parts
}

/// Adapts one generator into a per-shard view: every call to
/// [`SplitGenerator::next_minibatches`] draws one minibatch from the
/// underlying generator and splits it through a [`Router`], so `shards`
/// downstream consumers each see exactly the sub-stream routed to them.
pub struct SplitGenerator<'a> {
    inner: &'a mut dyn StreamGenerator,
    router: Arc<dyn Router>,
}

impl<'a> SplitGenerator<'a> {
    /// Wraps `inner`, splitting its output across `shards` shards by key
    /// ownership (hash routing — the historical behaviour).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(inner: &'a mut dyn StreamGenerator, shards: usize) -> Self {
        Self::with_router(inner, Arc::new(HashRouter::new(shards)))
    }

    /// Wraps `inner`, splitting its output through an explicit router (e.g.
    /// a [`crate::router::SkewAwareRouter`] shared with the consumer side).
    pub fn with_router(inner: &'a mut dyn StreamGenerator, router: Arc<dyn Router>) -> Self {
        Self { inner, router }
    }

    /// The number of shards the stream is split into.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The router splitting the stream.
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Draws one minibatch of `size` items and returns its per-shard split.
    pub fn next_minibatches(&mut self, size: usize) -> Vec<Vec<u64>> {
        self.router.partition(&self.inner.next_minibatch(size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{StreamGenerator, ZipfGenerator};

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8, 13] {
            for key in 0..10_000u64 {
                let s = shard_of(key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(key, shards), "routing must be stable");
            }
        }
    }

    #[test]
    fn partition_preserves_all_items_and_ownership() {
        let mut generator = ZipfGenerator::new(50_000, 1.1, 7);
        let batch = generator.next_minibatch(20_000);
        let parts = partition_by_key(&batch, 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), batch.len());
        for (shard, part) in parts.iter().enumerate() {
            for &item in part {
                assert_eq!(shard_of(item, 8), shard);
            }
        }
    }

    #[test]
    fn partition_is_reasonably_balanced_on_uniform_keys() {
        // Distinct keys (not occurrences) should spread evenly.
        let keys: Vec<u64> = (0..64_000u64).collect();
        let parts = partition_by_key(&keys, 8);
        for part in &parts {
            let share = part.len() as f64 / keys.len() as f64;
            assert!((0.10..0.15).contains(&share), "unbalanced shard: {share}");
        }
    }

    #[test]
    fn split_generator_matches_manual_partition() {
        let mut a = ZipfGenerator::new(1000, 1.2, 3);
        let mut b = ZipfGenerator::new(1000, 1.2, 3);
        let batch = a.next_minibatch(5000);
        let want = partition_by_key(&batch, 4);
        let mut split = SplitGenerator::new(&mut b, 4);
        assert_eq!(split.next_minibatches(5000), want);
        assert_eq!(split.shards(), 4);
    }

    #[test]
    fn split_generator_accepts_a_custom_router() {
        use crate::router::{Router, SkewAwareRouter};
        let router: Arc<dyn Router> = Arc::new(SkewAwareRouter::new(4));
        let mut generator = ZipfGenerator::new(1000, 1.2, 3);
        let mut split = SplitGenerator::with_router(&mut generator, router.clone());
        let parts = split.next_minibatches(5000);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 5000);
        assert_eq!(split.shards(), 4);
        assert_eq!(split.router().name(), "skew-aware");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_rejected() {
        let _ = shard_of(1, 0);
    }
}
