//! Per-producer → per-shard SPSC ingest lanes.
//!
//! The engine's original front end funnels every producer through one
//! bounded MPSC channel per shard; with many producers the channel's
//! internal lock and the shared head/tail cache lines serialise exactly
//! the traffic that sharding was supposed to spread out. An
//! [`IngestLane`] removes that contention point: each producer owns one
//! lane **per shard** (mirroring [`crate::BufferPool`]'s per-shard return
//! lanes, in the opposite direction), so the steady-state transfer is
//! single-producer/single-consumer — a ring of recycled sub-batch buffers
//! whose endpoints each touch their own cursor and never compete.
//!
//! ## Cut marks
//!
//! Lanes would break the engine's consistent-cut machinery if they were
//! plain queues: a snapshot or window-boundary cut must order *exactly*
//! the batches accepted before it on every shard, but a worker draining
//! lanes opportunistically could race past the cut position before the
//! control-channel command reaches it. Lanes therefore carry an ordered
//! side-queue of **cut marks**. The cutter — which holds the exclusive
//! side of the [`crate::IngestFence`], so no producer is mid-push — stamps
//! every lane with a mark at its current push position
//! ([`IngestLane::push_mark`]). The consumer sees each mark *in position*:
//! [`IngestLane::pop_batch`] refuses to hand out a batch past an
//! unconsumed mark, and [`IngestLane::pop_mark_if_due`] yields the mark
//! exactly when every earlier batch has been popped. A worker that drains
//! each lane to its mark for gate `g` before executing `g`'s command has
//! processed *exactly* the pre-cut stream — the same guarantee the shared
//! channel gave for free by total order, recovered with one atomic load
//! per pop on the fast path.
//!
//! ## Ordering contract
//!
//! * **Producer side** (`push`/`try_push`/`close`): one thread at a time,
//!   while holding an [`crate::IngestGuard`]. The slot write happens
//!   before the `Release` bump of the push cursor, so a consumer (or an
//!   exclusive cutter) that observes the cursor observes the batch.
//! * **Cutter side** (`push_mark`): any thread, but only under the
//!   exclusive side of the fence the producers enter — the `RwLock`
//!   handoff orders it against every completed push.
//! * **Consumer side** (`pop_batch`/`pop_mark_if_due`): one thread (the
//!   shard worker). The slot take happens before the `Release` bump of
//!   the pop cursor, which is what lets a blocked producer reuse the slot.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A cut mark stamped into a lane at an exact stream position (see the
/// module docs): all batches pushed before `at` are ordered before the
/// cut identified by `gate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMark {
    /// Push-cursor position of the cut: the number of batches this lane
    /// had accepted when the mark was stamped.
    pub at: u64,
    /// Engine-wide gate id tying this mark to its control command.
    pub gate: u64,
}

/// A bounded single-producer/single-consumer ring of minibatch
/// sub-batches with in-position cut marks (see the module docs).
#[derive(Debug)]
pub struct IngestLane {
    slots: Box<[Mutex<Option<Vec<u64>>>]>,
    /// Batches fully written: bumped with `Release` *after* the slot
    /// write, only by the producer.
    pushed: AtomicU64,
    /// Batches fully taken: bumped with `Release` *after* the slot take,
    /// only by the consumer.
    popped: AtomicU64,
    /// Position of the oldest unconsumed mark (`u64::MAX` when none):
    /// lets the consumer skip the mark mutex on the fast path.
    next_mark_at: AtomicU64,
    marks: Mutex<VecDeque<LaneMark>>,
    closed: AtomicBool,
}

impl IngestLane {
    /// Creates a lane holding at most `capacity` in-flight batches.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "lane capacity must be at least 1");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            next_mark_at: AtomicU64::new(u64::MAX),
            marks: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
        }
    }

    /// Maximum number of in-flight batches.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Batches accepted so far (the push cursor). `Acquire`: a reader
    /// that sees count `n` sees the first `n` batches.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Acquire)
    }

    /// Batches consumed so far (the pop cursor).
    pub fn popped(&self) -> u64 {
        self.popped.load(Ordering::Acquire)
    }

    /// Batches currently in flight.
    pub fn len(&self) -> u64 {
        self.pushed()
            .saturating_sub(self.popped.load(Ordering::Acquire))
    }

    /// True when no batch is in flight (marks may still be pending).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: enqueues one sub-batch, or returns it when the ring
    /// is full (clean backpressure for `try_ingest`). Never blocks.
    pub fn try_push(&self, batch: Vec<u64>) -> Result<(), Vec<u64>> {
        let pushed = self.pushed.load(Ordering::Relaxed);
        if pushed - self.popped.load(Ordering::Acquire) >= self.slots.len() as u64 {
            return Err(batch);
        }
        let slot = &self.slots[(pushed % self.slots.len() as u64) as usize];
        *slot.lock().expect("lane slot poisoned") = Some(batch);
        self.pushed.store(pushed + 1, Ordering::Release);
        Ok(())
    }

    /// Producer side: enqueues one sub-batch, spinning (with yields) while
    /// the ring is full. The consumer drains without taking the ingest
    /// fence, so this wait is bounded by worker progress even while the
    /// producer holds its guard — the same liveness argument as the
    /// blocking channel send it replaces.
    pub fn push(&self, batch: Vec<u64>) {
        let mut batch = batch;
        loop {
            match self.try_push(batch) {
                Ok(()) => return,
                Err(back) => {
                    batch = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Cutter side: stamps a mark for `gate` at the current push position.
    /// Must be called under the **exclusive** side of the fence the lane's
    /// producer enters, so the position is stable and covers exactly the
    /// fully pushed batches.
    pub fn push_mark(&self, gate: u64) {
        let at = self.pushed.load(Ordering::Acquire);
        let mut marks = self.marks.lock().expect("lane marks poisoned");
        marks.push_back(LaneMark { at, gate });
        if marks.len() == 1 {
            self.next_mark_at.store(at, Ordering::Release);
        }
    }

    /// Consumer side: takes the front mark if every batch before it has
    /// been popped. Marks for back-to-back cuts at the same position are
    /// yielded one call at a time, in cut order.
    pub fn pop_mark_if_due(&self) -> Option<LaneMark> {
        let popped = self.popped.load(Ordering::Relaxed);
        if self.next_mark_at.load(Ordering::Acquire) > popped {
            return None;
        }
        let mut marks = self.marks.lock().expect("lane marks poisoned");
        // Re-check under the lock: the fast-path load raced a pop_mark.
        if marks.front().is_some_and(|m| m.at <= popped) {
            let mark = marks.pop_front().expect("front mark vanished");
            self.next_mark_at
                .store(marks.front().map_or(u64::MAX, |m| m.at), Ordering::Release);
            Some(mark)
        } else {
            None
        }
    }

    /// Consumer side: takes the front mark if it is due **and** belongs to
    /// `gate`. A gated drain uses this instead of
    /// [`IngestLane::pop_mark_if_due`] so it can never consume a *later*
    /// gate's mark early — a lane registered after gate `g`'s cut carries no
    /// `g` mark, and draining it for `g` must leave its `g+1` mark (and the
    /// batches it fences) untouched.
    pub fn pop_mark_for(&self, gate: u64) -> bool {
        let popped = self.popped.load(Ordering::Relaxed);
        if self.next_mark_at.load(Ordering::Acquire) > popped {
            return false;
        }
        let mut marks = self.marks.lock().expect("lane marks poisoned");
        if marks
            .front()
            .is_some_and(|m| m.at <= popped && m.gate == gate)
        {
            marks.pop_front();
            self.next_mark_at
                .store(marks.front().map_or(u64::MAX, |m| m.at), Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Consumer side: takes the next batch, or `None` when the ring is
    /// empty **or a due mark is in front** — a batch past an unconsumed
    /// mark is never handed out, which is what keeps cuts exact (consume
    /// the mark via [`IngestLane::pop_mark_if_due`] first).
    pub fn pop_batch(&self) -> Option<Vec<u64>> {
        let popped = self.popped.load(Ordering::Relaxed);
        if self.next_mark_at.load(Ordering::Acquire) <= popped {
            return None;
        }
        if popped >= self.pushed.load(Ordering::Acquire) {
            return None;
        }
        let slot = &self.slots[(popped % self.slots.len() as u64) as usize];
        let batch = slot
            .lock()
            .expect("lane slot poisoned")
            .take()
            .expect("published lane slot was empty");
        self.popped.store(popped + 1, Ordering::Release);
        Some(batch)
    }

    /// Producer side: marks the lane closed (the producer is gone). The
    /// consumer drains whatever is in flight and may then drop the lane.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True once the producer closed the lane.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_backpressure() {
        let lane = IngestLane::new(2);
        assert!(lane.try_push(vec![1]).is_ok());
        assert!(lane.try_push(vec![2]).is_ok());
        let back = lane.try_push(vec![3]).unwrap_err();
        assert_eq!(back, vec![3]);
        assert_eq!(lane.pop_batch(), Some(vec![1]));
        assert!(lane.try_push(vec![3]).is_ok());
        assert_eq!(lane.pop_batch(), Some(vec![2]));
        assert_eq!(lane.pop_batch(), Some(vec![3]));
        assert_eq!(lane.pop_batch(), None);
        assert!(lane.is_empty());
    }

    #[test]
    fn marks_gate_batches_at_exact_positions() {
        let lane = IngestLane::new(8);
        lane.push(vec![1]);
        lane.push(vec![2]);
        lane.push_mark(7); // cut after 2 batches
        lane.push(vec![3]);
        lane.push_mark(8); // cut after 3 batches
        lane.push_mark(9); // back-to-back cut at the same position

        // The mark is not due until both pre-cut batches are popped, and
        // batches never jump a due mark.
        assert_eq!(lane.pop_mark_if_due(), None);
        assert_eq!(lane.pop_batch(), Some(vec![1]));
        assert_eq!(lane.pop_mark_if_due(), None);
        assert_eq!(lane.pop_batch(), Some(vec![2]));
        assert_eq!(lane.pop_batch(), None, "batch past a due mark");
        assert_eq!(lane.pop_mark_if_due(), Some(LaneMark { at: 2, gate: 7 }));
        assert_eq!(lane.pop_batch(), Some(vec![3]));
        assert_eq!(lane.pop_mark_if_due(), Some(LaneMark { at: 3, gate: 8 }));
        assert_eq!(lane.pop_mark_if_due(), Some(LaneMark { at: 3, gate: 9 }));
        assert_eq!(lane.pop_mark_if_due(), None);
    }

    #[test]
    fn pop_mark_for_refuses_a_later_gate() {
        // A lane that carries only gate 5's mark (registered after gate
        // 4's cut) must not yield it to a drain looking for gate 4.
        let lane = IngestLane::new(4);
        lane.push(vec![1]);
        lane.push_mark(5);
        assert_eq!(lane.pop_batch(), Some(vec![1]));
        assert!(!lane.pop_mark_for(4), "gate 5's mark must survive");
        assert_eq!(lane.pop_batch(), None, "and keep fencing batches");
        assert!(lane.pop_mark_for(5));
        assert!(!lane.pop_mark_for(5));
    }

    #[test]
    fn spsc_transfer_preserves_every_batch_in_order() {
        let lane = Arc::new(IngestLane::new(4));
        let producer = {
            let lane = lane.clone();
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    lane.push(vec![i]);
                }
                lane.close();
            })
        };
        let mut expect = 0u64;
        loop {
            if let Some(batch) = lane.pop_batch() {
                assert_eq!(batch, vec![expect]);
                expect += 1;
            } else if lane.is_closed() && lane.is_empty() {
                break;
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(expect, 10_000);
        producer.join().unwrap();
    }

    #[test]
    fn close_is_visible_after_drain() {
        let lane = IngestLane::new(1);
        lane.push(vec![9]);
        lane.close();
        assert!(lane.is_closed());
        assert!(!lane.is_empty());
        assert_eq!(lane.pop_batch(), Some(vec![9]));
        assert!(lane.is_empty());
    }
}
