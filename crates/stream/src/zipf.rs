//! Seeded Zipf(α) sampling over a finite universe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf(α) sampler over the universe `{0, 1, …, universe − 1}`, where item
/// `i` has probability proportional to `1/(i+1)^α`.
///
/// Sampling uses a precomputed cumulative table and binary search, so each
/// draw costs `O(log |universe|)`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Creates a sampler for the given universe size, skew `alpha ≥ 0`, and
    /// seed.
    ///
    /// # Panics
    /// Panics if `universe == 0` or `alpha < 0`.
    pub fn new(universe: u64, alpha: f64, seed: u64) -> Self {
        assert!(universe >= 1, "universe must be non-empty");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(universe as usize);
        let mut acc = 0.0f64;
        for i in 0..universe {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws one item.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        // Binary search for the first CDF entry >= u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap())
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.universe() - 1),
        }
    }

    /// Draws `n` items.
    pub fn sample_batch(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_universe() {
        let mut z = ZipfSampler::new(100, 1.2, 42);
        for _ in 0..10_000 {
            assert!(z.sample() < 100);
        }
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let mut z = ZipfSampler::new(10, 0.0, 7);
        let mut counts = vec![0u64; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample() as usize] += 1;
        }
        for &c in &counts {
            assert!(
                c > n / 10 / 2 && c < n / 10 * 2,
                "counts not roughly uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn high_alpha_concentrates_on_small_items() {
        let mut z = ZipfSampler::new(1000, 1.5, 11);
        let n = 50_000;
        let head = (0..n).filter(|_| z.sample() < 10).count();
        assert!(
            head as f64 > 0.6 * n as f64,
            "Zipf(1.5): expected >60% of mass on the top-10 items, got {head}/{n}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ZipfSampler::new(50, 1.0, 3);
        let mut b = ZipfSampler::new(50, 1.0, 3);
        assert_eq!(a.sample_batch(100), b.sample_batch(100));
    }
}
