//! # psfa-stream
//!
//! Discretized-stream substrate and workload generation for the PSFA
//! reproduction.
//!
//! The paper adopts the minibatch ("discretized stream") processing model of
//! systems like Spark Streaming: the input is chopped into minibatches, each
//! minibatch is processed — possibly in parallel — as a unit, and queries
//! reflect all minibatches processed so far. This crate provides:
//!
//! * [`generators`] — synthetic workload generators (uniform, Zipf, bursty,
//!   adversarial churn, synthetic packet-flow traces, and binary streams of
//!   configurable density). The paper has no published dataset; these
//!   generators stand in for the network-monitoring workloads its
//!   introduction motivates (see DESIGN.md §3).
//! * [`zipf`] — a seeded Zipf(α) sampler used by the generators.
//! * [`pipeline`] — a small driver that feeds minibatches from a generator
//!   into one or more operators and records per-operator throughput, the
//!   harness used by the examples and the experiment binaries.
//! * [`split`] — key-space splitting of minibatch streams across shards,
//!   the routing layer under the sharded ingestion engine (`psfa-engine`).
//! * [`pool`] — recycling of routed sub-batch buffers between producers and
//!   shard workers ([`BufferPool`]), so the steady-state ingest path
//!   allocates nothing.
//! * [`router`] — pluggable routing policies over the split layer: hash
//!   partitioning and skew-aware hot-key splitting.
//! * [`fence`] — epoch fencing: consistent cuts of a concurrently ingested
//!   stream, the ordering primitive under snapshot persistence, plus the
//!   [`WindowFence`] logical item clock that turns cuts into window-aligned
//!   barriers for cross-shard sliding windows.
//! * [`lane`] — per-producer → per-shard SPSC ingest lanes with
//!   in-position cut marks, the contention-free multi-producer front end
//!   over the fence's ordering guarantees.
//! * [`metrics`] — throughput/latency accounting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fence;
pub mod generators;
pub mod lane;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod router;
pub mod split;
pub mod zipf;

pub use fence::{BatchClaim, IngestFence, IngestGuard, WindowFence, WindowFenceState};
pub use generators::{
    AdversarialChurnGenerator, BinaryStreamGenerator, BurstyGenerator, PacketTraceGenerator,
    StreamGenerator, UniformGenerator, ZipfGenerator,
};
pub use lane::{IngestLane, LaneMark};
pub use metrics::ThroughputMeter;
pub use pipeline::{MinibatchOperator, Pipeline, PipelineReport};
pub use pool::{BufferPool, PoolCounters};
pub use router::{HashRouter, Placement, Router, RoutingPolicy, SkewAwareRouter};
pub use split::{partition_by_key, shard_of, SplitGenerator};
pub use zipf::ZipfSampler;
