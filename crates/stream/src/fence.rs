//! Epoch fencing: consistent cuts of a concurrently ingested stream.
//!
//! A sharded engine accepts minibatches from many producer threads at once,
//! and each accepted minibatch is split into per-shard sub-batches that are
//! enqueued one shard at a time. For persistence, a snapshot must be **cut
//! consistently across shards**: the set of minibatches reflected in the
//! persisted epoch must be exactly the set accepted before some single
//! point in time — never "shard 0 saw batch B but shard 1 did not".
//!
//! [`IngestFence`] provides that point. Every producer holds a shared
//! [`IngestGuard`] across *all* of a minibatch's per-shard enqueues; a cut
//! ([`IngestFence::cut_with`]) takes the exclusive side of the same lock, so
//! it serialises strictly between whole minibatches. Work performed inside
//! the cut closure (such as enqueueing snapshot markers onto every shard's
//! FIFO queue) therefore lands at the *same stream position on every shard*:
//! after every sub-batch of each previously accepted minibatch and before
//! every sub-batch of each later one.
//!
//! The fence also carries the engine's closed flag, giving graceful
//! shutdown the same all-or-nothing guarantee with respect to in-flight
//! ingests (a batch is either fully accepted before the close or cleanly
//! rejected after it).

use std::sync::{RwLock, RwLockReadGuard};

#[derive(Debug, Default)]
struct FenceState {
    /// Number of cuts performed so far.
    cuts: u64,
    /// True once the stream is closed; `enter` then refuses new work.
    closed: bool,
}

/// A reader–writer fence ordering whole minibatches against snapshot cuts
/// and shutdown (see the module docs).
#[derive(Debug, Default)]
pub struct IngestFence {
    state: RwLock<FenceState>,
}

/// Proof that the holder may enqueue one minibatch: cuts and close wait for
/// every outstanding guard, and no new guard is issued during a cut.
#[derive(Debug)]
pub struct IngestGuard<'a> {
    _guard: RwLockReadGuard<'a, FenceState>,
}

impl IngestFence {
    /// Creates an open fence with no cuts performed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the fenced region for one minibatch, or returns `None` if the
    /// stream is closed. Hold the guard across every per-shard enqueue of
    /// the minibatch.
    pub fn enter(&self) -> Option<IngestGuard<'_>> {
        let guard = self.state.read().expect("ingest fence poisoned");
        if guard.closed {
            return None;
        }
        Some(IngestGuard { _guard: guard })
    }

    /// Performs one consistent cut: waits for every in-flight minibatch,
    /// excludes new ones, then runs `f` with the (1-based) cut number.
    /// Whatever `f` enqueues is ordered after all previously accepted
    /// minibatches and before all later ones, on every shard.
    ///
    /// The cut itself does not care whether the stream is closed — a final
    /// snapshot after [`IngestFence::close`] is legitimate (the engine's
    /// workers are still draining their queues at that point).
    pub fn cut_with<R>(&self, f: impl FnOnce(u64) -> R) -> R {
        let mut state = self.state.write().expect("ingest fence poisoned");
        state.cuts += 1;
        f(state.cuts)
    }

    /// Number of cuts performed so far.
    pub fn cuts(&self) -> u64 {
        self.state.read().expect("ingest fence poisoned").cuts
    }

    /// Closes the stream: waits for every in-flight minibatch, then makes
    /// every later [`IngestFence::enter`] return `None`.
    pub fn close(&self) {
        self.state.write().expect("ingest fence poisoned").closed = true;
    }

    /// True once [`IngestFence::close`] has completed.
    pub fn is_closed(&self) -> bool {
        self.state.read().expect("ingest fence poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn enter_refused_after_close() {
        let fence = IngestFence::new();
        assert!(fence.enter().is_some());
        assert!(!fence.is_closed());
        fence.close();
        assert!(fence.enter().is_none());
        assert!(fence.is_closed());
    }

    #[test]
    fn cuts_are_numbered_and_counted() {
        let fence = IngestFence::new();
        assert_eq!(fence.cut_with(|n| n), 1);
        assert_eq!(fence.cut_with(|n| n), 2);
        assert_eq!(fence.cuts(), 2);
        // Cutting a closed fence still works (final snapshot at shutdown).
        fence.close();
        assert_eq!(fence.cut_with(|n| n), 3);
    }

    #[test]
    fn cut_excludes_concurrent_enters() {
        // Producers spin entering the fence and bumping a counter twice per
        // guard; a cut must never observe an odd counter (i.e. a half-done
        // "minibatch").
        let fence = Arc::new(IngestFence::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for _ in 0..4 {
            let fence = fence.clone();
            let counter = counter.clone();
            producers.push(std::thread::spawn(move || {
                while let Some(_guard) = fence.enter() {
                    counter.fetch_add(1, Ordering::SeqCst);
                    std::thread::yield_now();
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..50 {
            let seen = fence.cut_with(|_| counter.load(Ordering::SeqCst));
            assert_eq!(seen % 2, 0, "cut observed a half-ingested minibatch");
        }
        fence.close();
        for p in producers {
            p.join().unwrap();
        }
    }
}
