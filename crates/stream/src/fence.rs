//! Epoch fencing: consistent cuts of a concurrently ingested stream.
//!
//! A sharded engine accepts minibatches from many producer threads at once,
//! and each accepted minibatch is split into per-shard sub-batches that are
//! enqueued one shard at a time. For persistence — and for window
//! alignment — a marker must be **cut consistently across shards**: the set
//! of minibatches ordered before the marker must be exactly the set
//! accepted before some single point in time — never "shard 0 saw batch B
//! but shard 1 did not".
//!
//! [`IngestFence`] provides that point. Every producer holds a shared
//! [`IngestGuard`] across *all* of a minibatch's per-shard enqueues; a cut
//! ([`IngestFence::cut_with`]) takes the exclusive side of the same lock, so
//! it serialises strictly between whole minibatches. Work performed inside
//! the cut closure (such as enqueueing snapshot markers onto every shard's
//! FIFO queue) therefore lands at the *same stream position on every shard*:
//! after every sub-batch of each previously accepted minibatch and before
//! every sub-batch of each later one.
//!
//! The fence also carries the engine's closed flag, giving graceful
//! shutdown the same all-or-nothing guarantee with respect to in-flight
//! ingests (a batch is either fully accepted before the close or cleanly
//! rejected after it).
//!
//! ## Window alignment
//!
//! [`WindowFence`] layers a **logical item clock** on the same ordering
//! primitive, turning the cut mechanism into *window-aligned barriers*: the
//! foundation of cross-shard sliding windows. Every accepted item draws a
//! position from a shared atomic ticket ([`WindowFence::record`], called
//! while the [`IngestGuard`] is held, so positions and queue order agree);
//! whenever the ticket crosses a multiple of the configured `slide`,
//! [`WindowFence::poll_cut`] takes one exclusive cut and invokes the caller
//! per crossed boundary. Because the boundary work runs inside
//! [`IngestFence::cut_with`], a boundary marker enqueued there lands at the
//! same stream position on every shard — so the items between two
//! consecutive boundaries (one *pane*) partition the global stream
//! identically from every shard's point of view, which is exactly what a
//! globally consistent sliding window needs.
//!
//! ```
//! use std::sync::Arc;
//! use psfa_stream::{IngestFence, WindowFence};
//!
//! let fence = Arc::new(IngestFence::new());
//! // One pane boundary every 1000 logical items.
//! let windows = WindowFence::new(fence.clone(), 1000);
//!
//! let mut boundaries = Vec::new();
//! for _ in 0..5 {
//!     let guard = fence.enter().expect("open");
//!     // ... enqueue the minibatch's per-shard sub-batches here ...
//!     windows.record(&guard, 600); // 600 items accepted under this guard
//!     drop(guard);
//!     windows.poll_cut(|seq| boundaries.push(seq));
//! }
//! // 3000 items ⇒ boundaries 1, 2 and 3 were cut, in order.
//! assert_eq!(boundaries, vec![1, 2, 3]);
//! assert_eq!(windows.boundaries(), 3);
//! assert_eq!(windows.ticket(), 3000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

#[derive(Debug, Default)]
struct FenceState {
    /// Number of cuts performed so far.
    cuts: u64,
    /// True once the stream is closed; `enter` then refuses new work.
    closed: bool,
}

/// A reader–writer fence ordering whole minibatches against snapshot cuts
/// and shutdown (see the module docs).
#[derive(Debug, Default)]
pub struct IngestFence {
    state: RwLock<FenceState>,
}

/// Proof that the holder may enqueue one minibatch: cuts and close wait for
/// every outstanding guard, and no new guard is issued during a cut.
#[derive(Debug)]
pub struct IngestGuard<'a> {
    _guard: RwLockReadGuard<'a, FenceState>,
}

impl IngestFence {
    /// Creates an open fence with no cuts performed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the fenced region for one minibatch, or returns `None` if the
    /// stream is closed. Hold the guard across every per-shard enqueue of
    /// the minibatch.
    pub fn enter(&self) -> Option<IngestGuard<'_>> {
        let guard = self.state.read().expect("ingest fence poisoned");
        if guard.closed {
            return None;
        }
        Some(IngestGuard { _guard: guard })
    }

    /// Performs one consistent cut: waits for every in-flight minibatch,
    /// excludes new ones, then runs `f` with the (1-based) cut number.
    /// Whatever `f` enqueues is ordered after all previously accepted
    /// minibatches and before all later ones, on every shard.
    ///
    /// The cut itself does not care whether the stream is closed — a final
    /// snapshot after [`IngestFence::close`] is legitimate (the engine's
    /// workers are still draining their queues at that point).
    pub fn cut_with<R>(&self, f: impl FnOnce(u64) -> R) -> R {
        let mut state = self.state.write().expect("ingest fence poisoned");
        state.cuts += 1;
        f(state.cuts)
    }

    /// Number of cuts performed so far.
    pub fn cuts(&self) -> u64 {
        self.state.read().expect("ingest fence poisoned").cuts
    }

    /// Closes the stream: waits for every in-flight minibatch, then makes
    /// every later [`IngestFence::enter`] return `None`.
    pub fn close(&self) {
        self.state.write().expect("ingest fence poisoned").closed = true;
    }

    /// True once [`IngestFence::close`] has completed.
    pub fn is_closed(&self) -> bool {
        self.state.read().expect("ingest fence poisoned").closed
    }
}

/// The state of a [`WindowFence`] at one instant: the logical clock and the
/// boundary bookkeeping needed to resume it exactly (crash recovery).
///
/// A consistent reading requires the fence's exclusive side — take it via
/// [`IngestFence::cut_with`] (see [`WindowFence::state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowFenceState {
    /// Logical items accepted so far (the ticket).
    pub ticket: u64,
    /// Window boundaries cut so far (the sequence number of the latest).
    /// Boundaries land at consecutive multiples of the slide, so the next
    /// boundary's position is always `(boundaries + 1) · slide` — no
    /// separate field to keep consistent.
    pub boundaries: u64,
}

/// One producer's batched claim of logical stream positions
/// (see [`WindowFence::claim`]): the half-open range
/// `[first, first + items)` plus the boundary-crossing hint.
///
/// Claims made under the fence partition the stream exactly: over any set
/// of claims totalling `n` items, the ranges tile `0..n` with no gap or
/// overlap, regardless of interleaving (the fetch-add hands out each
/// position exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchClaim {
    /// First logical position claimed (0-based).
    pub first: u64,
    /// Number of positions claimed.
    pub items: u64,
    /// True when the claimant must call [`WindowFence::poll_cut`] after
    /// releasing its guard: a boundary at or below `first + items` may not
    /// have been sealed yet. False guarantees no boundary is stranded.
    pub due: bool,
}

impl BatchClaim {
    /// One past the last position claimed (`first + items`).
    pub fn end(&self) -> u64 {
        self.first + self.items
    }
}

/// A logical item clock that cuts shard-consistent *window boundaries*
/// every `slide` items, built on an [`IngestFence`] (see the module docs).
///
/// Producers call [`WindowFence::record`] with the number of items they
/// accepted **while holding their [`IngestGuard`]**, then
/// [`WindowFence::poll_cut`] after releasing it. The fast path of
/// `poll_cut` is two atomic loads; only the producer that observes the
/// clock crossing a boundary pays for the exclusive cut.
#[derive(Debug)]
pub struct WindowFence {
    fence: Arc<IngestFence>,
    slide: u64,
    /// Logical positions handed out: the number of items accepted so far.
    ticket: AtomicU64,
    /// Ticket position of the next boundary. Only mutated under the
    /// fence's exclusive side.
    next_boundary: AtomicU64,
    /// Boundaries cut so far. Only mutated under the exclusive side.
    boundaries: AtomicU64,
}

impl WindowFence {
    /// Creates a window fence cutting a boundary every `slide` items,
    /// sharing `fence` with the ingest path it orders against.
    ///
    /// # Panics
    /// Panics if `slide == 0`.
    pub fn new(fence: Arc<IngestFence>, slide: u64) -> Self {
        assert!(slide >= 1, "window slide must be at least 1");
        Self {
            fence,
            slide,
            ticket: AtomicU64::new(0),
            next_boundary: AtomicU64::new(slide),
            boundaries: AtomicU64::new(0),
        }
    }

    /// Rebuilds a window fence from a persisted [`WindowFenceState`]
    /// (crash recovery): the clock resumes exactly where the snapshot cut
    /// it, so pane boundaries keep landing at the same logical positions.
    ///
    /// # Panics
    /// Panics if `slide == 0` or the next boundary position
    /// (`(boundaries + 1) · slide`) overflows. The ticket may legitimately
    /// sit past the next boundary: a crossing that was recorded but not
    /// yet polled when the state was captured is simply cut on the first
    /// poll after resuming.
    pub fn resume(fence: Arc<IngestFence>, slide: u64, state: WindowFenceState) -> Self {
        assert!(slide >= 1, "window slide must be at least 1");
        let next_boundary = state
            .boundaries
            .checked_add(1)
            .and_then(|b| b.checked_mul(slide))
            .expect("window fence state: next boundary position overflows");
        Self {
            fence,
            slide,
            ticket: AtomicU64::new(state.ticket),
            next_boundary: AtomicU64::new(next_boundary),
            boundaries: AtomicU64::new(state.boundaries),
        }
    }

    /// The boundary spacing in logical items (the window *slide*).
    pub fn slide(&self) -> u64 {
        self.slide
    }

    /// Logical items accepted so far. Racy by nature; for a consistent
    /// reading use [`WindowFence::state`] under an exclusive cut.
    pub fn ticket(&self) -> u64 {
        self.ticket.load(Ordering::Acquire)
    }

    /// Window boundaries cut so far (the latest boundary's sequence
    /// number; `0` before the first boundary).
    pub fn boundaries(&self) -> u64 {
        self.boundaries.load(Ordering::Acquire)
    }

    /// Advances the logical clock by `items` positions. The caller must
    /// hold the [`IngestGuard`] it used for the enqueues being counted —
    /// passing it in is the proof — so that a concurrent cut orders either
    /// strictly before both the enqueues and the clock advance, or
    /// strictly after both.
    pub fn record(&self, proof: &IngestGuard<'_>, items: u64) {
        let _ = self.claim(proof, items);
    }

    /// Claims `items` consecutive logical positions in **one** fetch-add —
    /// the batched-ticket fast path. Returns the claimed range and whether
    /// the claimant *may* have crossed a pane boundary and must call
    /// [`WindowFence::poll_cut`] after dropping its guard.
    ///
    /// Compared with [`WindowFence::record`] + an unconditional poll, a
    /// non-crossing producer touches the shared ticket cache line exactly
    /// once (the fetch-add it must pay anyway) plus one load of the
    /// read-mostly `next_boundary` line — it never re-reads the contended
    /// ticket line the way `poll_cut`'s fast path does. With many producers
    /// claiming concurrently that re-read is the serialising traffic.
    ///
    /// Correctness of the `due` hint: `due` is computed as
    /// `first + items ≥ next_boundary`, with `next_boundary` loaded *after*
    /// the fetch-add. If it returns `false`, then at load time every
    /// boundary at or below `first + items` had already been sealed
    /// (`next_boundary` only advances past a boundary after sealing it
    /// under the exclusive cut), so skipping the poll never strands a
    /// boundary. If it returns `true` the poll may still find nothing to
    /// cut — a racing claimant got there first — which `poll_cut` resolves
    /// under the exclusive side, cutting each boundary exactly once. The
    /// comparison uses the claim's *end* position, so a boundary left
    /// pending by [`WindowFence::resume`] (ticket already past
    /// `next_boundary`) is also reported due.
    pub fn claim(&self, _proof: &IngestGuard<'_>, items: u64) -> BatchClaim {
        let first = self.ticket.fetch_add(items, Ordering::AcqRel);
        let due = first + items >= self.next_boundary.load(Ordering::Acquire);
        BatchClaim { first, items, due }
    }

    /// Cuts every boundary the clock has crossed, invoking `seal` with each
    /// boundary's (1-based) sequence number from inside the exclusive cut —
    /// whatever `seal` enqueues lands at the same stream position on every
    /// shard. Returns the number of boundaries cut (usually 0: the fast
    /// path is two atomic loads and no locking).
    ///
    /// Call *after* releasing the guard passed to [`WindowFence::record`];
    /// polling while holding it would deadlock (the cut waits for every
    /// outstanding guard). Racing producers may both observe the crossing —
    /// the re-check under the exclusive side cuts each boundary exactly
    /// once, whichever producer gets there first. `seal` runs under the
    /// exclusive side, so if it waits (e.g. for space on a bounded marker
    /// queue), producers wait with it; consumers that drain those queues
    /// without taking the fence keep such waits bounded by their own
    /// progress — never a deadlock.
    pub fn poll_cut(&self, mut seal: impl FnMut(u64)) -> u64 {
        if self.ticket.load(Ordering::Acquire) < self.next_boundary.load(Ordering::Acquire) {
            return 0;
        }
        self.fence.cut_with(|_| {
            // Exclusive: every in-flight minibatch (and its ticket
            // increment) has completed, and no new one can start.
            let ticket = self.ticket.load(Ordering::Acquire);
            let mut next = self.next_boundary.load(Ordering::Acquire);
            let mut seq = self.boundaries.load(Ordering::Acquire);
            let mut cut = 0u64;
            while ticket >= next {
                seq += 1;
                cut += 1;
                seal(seq);
                next += self.slide;
            }
            self.boundaries.store(seq, Ordering::Release);
            self.next_boundary.store(next, Ordering::Release);
            cut
        })
    }

    /// Reads the full clock state. Consistent only from inside the
    /// exclusive side of the underlying [`IngestFence`] (e.g. within the
    /// same [`IngestFence::cut_with`] closure that snapshots the shards);
    /// from anywhere else the two fields may be mutually torn.
    pub fn state(&self) -> WindowFenceState {
        WindowFenceState {
            ticket: self.ticket.load(Ordering::Acquire),
            boundaries: self.boundaries.load(Ordering::Acquire),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_refused_after_close() {
        let fence = IngestFence::new();
        assert!(fence.enter().is_some());
        assert!(!fence.is_closed());
        fence.close();
        assert!(fence.enter().is_none());
        assert!(fence.is_closed());
    }

    #[test]
    fn cuts_are_numbered_and_counted() {
        let fence = IngestFence::new();
        assert_eq!(fence.cut_with(|n| n), 1);
        assert_eq!(fence.cut_with(|n| n), 2);
        assert_eq!(fence.cuts(), 2);
        // Cutting a closed fence still works (final snapshot at shutdown).
        fence.close();
        assert_eq!(fence.cut_with(|n| n), 3);
    }

    #[test]
    fn cut_excludes_concurrent_enters() {
        // Producers spin entering the fence and bumping a counter twice per
        // guard; a cut must never observe an odd counter (i.e. a half-done
        // "minibatch").
        let fence = Arc::new(IngestFence::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for _ in 0..4 {
            let fence = fence.clone();
            let counter = counter.clone();
            producers.push(std::thread::spawn(move || {
                while let Some(_guard) = fence.enter() {
                    counter.fetch_add(1, Ordering::SeqCst);
                    std::thread::yield_now();
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for _ in 0..50 {
            let seen = fence.cut_with(|_| counter.load(Ordering::SeqCst));
            assert_eq!(seen % 2, 0, "cut observed a half-ingested minibatch");
        }
        fence.close();
        for p in producers {
            p.join().unwrap();
        }
    }

    #[test]
    fn window_fence_cuts_every_crossed_boundary_in_order() {
        let fence = Arc::new(IngestFence::new());
        let windows = WindowFence::new(fence.clone(), 100);
        let mut seqs = Vec::new();
        // 70 items: no boundary yet.
        let guard = fence.enter().unwrap();
        windows.record(&guard, 70);
        drop(guard);
        assert_eq!(windows.poll_cut(|s| seqs.push(s)), 0);
        // A giant batch crosses three boundaries at once.
        let guard = fence.enter().unwrap();
        windows.record(&guard, 290);
        drop(guard);
        assert_eq!(windows.poll_cut(|s| seqs.push(s)), 3);
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(windows.boundaries(), 3);
        assert_eq!(windows.ticket(), 360);
        // Polling again without new items is free and cuts nothing.
        assert_eq!(windows.poll_cut(|_| panic!("no boundary due")), 0);
    }

    #[test]
    fn window_fence_boundaries_are_cut_exactly_once_under_contention() {
        let fence = Arc::new(IngestFence::new());
        let windows = Arc::new(WindowFence::new(fence.clone(), 64));
        let cuts = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for _ in 0..4 {
            let fence = fence.clone();
            let windows = windows.clone();
            let cuts = cuts.clone();
            producers.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    let guard = fence.enter().expect("open");
                    windows.record(&guard, 16);
                    drop(guard);
                    windows.poll_cut(|_| {
                        cuts.fetch_add(1, Ordering::SeqCst);
                    });
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        // 4 × 500 × 16 = 32000 items at slide 64 ⇒ exactly 500 boundaries,
        // no matter how the producers raced.
        assert_eq!(cuts.load(Ordering::SeqCst), 500);
        assert_eq!(windows.boundaries(), 500);
    }

    #[test]
    fn batched_claims_partition_the_stream_and_flag_crossings() {
        let fence = Arc::new(IngestFence::new());
        let windows = WindowFence::new(fence.clone(), 100);
        let guard = fence.enter().unwrap();
        let a = windows.claim(&guard, 60);
        assert_eq!((a.first, a.end(), a.due), (0, 60, false));
        let b = windows.claim(&guard, 60);
        // Crosses position 100: the claimant must poll.
        assert_eq!((b.first, b.end(), b.due), (60, 120, true));
        drop(guard);
        assert_eq!(windows.poll_cut(|_| {}), 1);
        // After the seal, a non-crossing claim is not due.
        let guard = fence.enter().unwrap();
        let c = windows.claim(&guard, 10);
        assert_eq!((c.first, c.due), (120, false));
        // A claim that lands exactly on a boundary is due.
        let d = windows.claim(&guard, 70);
        assert_eq!((d.end(), d.due), (200, true));
        drop(guard);
        assert_eq!(windows.poll_cut(|_| {}), 1);
    }

    #[test]
    fn skipping_not_due_claims_never_strands_a_boundary() {
        // Producers poll ONLY when their claim says due; every boundary
        // must still be sealed exactly once.
        let fence = Arc::new(IngestFence::new());
        let windows = Arc::new(WindowFence::new(fence.clone(), 64));
        let cuts = Arc::new(AtomicU64::new(0));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let fence = fence.clone();
            let windows = windows.clone();
            let cuts = cuts.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let items = 1 + (p * 500 + i) % 31; // uneven batches
                    let guard = fence.enter().expect("open");
                    let claim = windows.claim(&guard, items);
                    drop(guard);
                    if claim.due {
                        windows.poll_cut(|_| {
                            cuts.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let total = windows.ticket();
        assert_eq!(windows.boundaries(), total / 64);
        assert_eq!(cuts.load(Ordering::SeqCst), total / 64);
    }

    #[test]
    fn resumed_fence_reports_pending_boundary_due() {
        // A crossing recorded but not polled before the snapshot: after
        // resume, the very next claim (even of 1 item) must say due.
        let state = WindowFenceState {
            ticket: 130,
            boundaries: 1, // boundary 2 at position 100 is pending
        };
        let fence = Arc::new(IngestFence::new());
        let resumed = WindowFence::resume(fence.clone(), 50, state);
        let guard = fence.enter().unwrap();
        let claim = resumed.claim(&guard, 1);
        assert!(claim.due, "pending pre-resume boundary must be reported");
        drop(guard);
        let mut seqs = Vec::new();
        resumed.poll_cut(|s| seqs.push(s));
        assert_eq!(seqs, vec![2]);
    }

    #[test]
    fn window_fence_resumes_from_persisted_state() {
        let fence = Arc::new(IngestFence::new());
        let windows = WindowFence::new(fence.clone(), 50);
        let guard = fence.enter().unwrap();
        windows.record(&guard, 120);
        drop(guard);
        windows.poll_cut(|_| {});
        let state = windows.state();
        assert_eq!(
            state,
            WindowFenceState {
                ticket: 120,
                boundaries: 2,
            }
        );
        // Resume on a fresh fence: the next boundary lands where the
        // original clock would have put it.
        let fence2 = Arc::new(IngestFence::new());
        let resumed = WindowFence::resume(fence2.clone(), 50, state);
        let guard = fence2.enter().unwrap();
        resumed.record(&guard, 30);
        drop(guard);
        let mut seqs = Vec::new();
        resumed.poll_cut(|s| seqs.push(s));
        assert_eq!(seqs, vec![3]);
        assert_eq!(resumed.ticket(), 150);
    }
}
