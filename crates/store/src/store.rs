//! The append-only segment log of persisted epochs.
//!
//! ## Layout
//!
//! A store is a directory of segment files `seg-NNNNNNNNNN.psfalog`. Each
//! segment starts with a 12-byte header (`PSFALOG\0` magic + `u32` format
//! version) followed by frames:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload = EpochRecord::encode()]
//! ```
//!
//! Appends go to the newest segment until it holds `segment_max_records`
//! records, then a new segment is started. Each append is flushed and
//! fsynced before it is indexed, so an epoch the store reports as retained
//! is durable.
//!
//! ## Crash consistency
//!
//! A crash can tear at most the *tail* of the newest segment (frames are
//! written append-only and fsynced in order). On open, the newest segment
//! tolerates a trailing damaged frame — the scan stops at the last valid
//! frame and the next append truncates the torn tail — while damage in any
//! older segment, or before the tail of the newest, is reported as a typed
//! [`StoreError::Corrupt`]. Recovery therefore always lands on the latest
//! *consistent* epoch: every frame before the tear was checksum-verified.
//!
//! ## Compaction
//!
//! The store retains at most `retain_epochs` epochs (the `K` of the
//! engine's `PersistenceConfig`); [`SnapshotStore::compact`] drops older
//! epochs from the index and deletes segment files whose records are all
//! dead. Records are never rewritten in place — a segment is reclaimed as a
//! whole once every epoch in it has expired, which rotation guarantees
//! happens after at most `⌈K / segment_max_records⌉ + 1` live segments.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use psfa_freq::HeavyHitter;

use crate::crc::crc32;
use crate::error::StoreError;
use crate::record::EpochRecord;
use crate::view::EpochView;

const MAGIC: &[u8; 8] = b"PSFALOG\0";
const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 12;
const FRAME_HEADER_LEN: u64 = 8;
/// Hard upper bound on one frame payload (1 GiB) — guards the scanner
/// against a corrupted length field demanding an absurd read.
const MAX_PAYLOAD: u64 = 1 << 30;

#[derive(Debug, Clone, Copy)]
struct RecordLocation {
    segment: u64,
    offset: u64,
}

#[derive(Debug)]
struct SegmentMeta {
    /// Records indexed (still live) in this segment.
    live: usize,
    /// Records ever appended to this segment (live + compacted away).
    records: usize,
    /// Bytes of verified content; appends truncate the file to this length
    /// first, discarding any torn tail.
    valid_len: u64,
}

/// An on-disk store of epoch snapshots with historical (time-travel)
/// queries. See the module docs for the format and guarantees.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    retain_epochs: usize,
    segment_max_records: usize,
    index: BTreeMap<u64, RecordLocation>,
    segments: BTreeMap<u64, SegmentMeta>,
}

impl SnapshotStore {
    /// Opens (or creates) the store at `dir`, scanning and checksum-
    /// verifying every retained segment. A torn tail on the newest segment
    /// is tolerated (see the module docs); any other damage is a typed
    /// error.
    pub fn open(
        dir: impl AsRef<Path>,
        retain_epochs: usize,
        segment_max_records: usize,
    ) -> Result<Self, StoreError> {
        assert!(retain_epochs >= 1, "must retain at least one epoch");
        assert!(segment_max_records >= 1, "segments must hold records");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".psfalog"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut store = Self {
            dir,
            retain_epochs,
            segment_max_records,
            index: BTreeMap::new(),
            segments: BTreeMap::new(),
        };
        for (i, &id) in ids.iter().enumerate() {
            let newest = i + 1 == ids.len();
            store.scan_segment(id, newest)?;
        }
        // Re-apply retention to the *index*: the scan sees every valid
        // frame still on disk, which may include epochs a previous process
        // had compacted out of its index while their segment stayed live —
        // without this, dropped epochs would resurrect on reopen. Files are
        // deliberately NOT deleted here: merely opening a store (e.g.
        // recovery with default knobs smaller than the writer's retention)
        // must never destroy history; reclamation happens only in
        // [`SnapshotStore::compact`] once the owner appends new epochs
        // under its own policy.
        while store.index.len() > retain_epochs {
            let (_, location) = store.index.pop_first().expect("index non-empty");
            if let Some(meta) = store.segments.get_mut(&location.segment) {
                meta.live = meta.live.saturating_sub(1);
            }
        }
        Ok(store)
    }

    fn segment_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("seg-{id:010}.psfalog"))
    }

    /// Scans one segment, indexing every checksum-valid frame. `tolerant`
    /// (newest segment only) stops at the first damaged frame instead of
    /// erroring, treating it as a torn tail.
    fn scan_segment(&mut self, id: u64, tolerant: bool) -> Result<(), StoreError> {
        let path = self.segment_path(id);
        let data = fs::read(&path)?;
        let corrupt = |offset: u64, detail: &str| StoreError::Corrupt {
            path: path.clone(),
            offset,
            detail: detail.to_string(),
        };
        if data.len() < HEADER_LEN as usize {
            if tolerant {
                // Crash between segment creation and the header landing:
                // nothing of value; the next append rewrites the file.
                self.segments.insert(
                    id,
                    SegmentMeta {
                        live: 0,
                        records: 0,
                        valid_len: 0,
                    },
                );
                return Ok(());
            }
            return Err(corrupt(0, "segment shorter than its header"));
        }
        if &data[..8] != MAGIC {
            return Err(corrupt(0, "bad magic"));
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(corrupt(8, "unsupported segment format version"));
        }
        let mut offset = HEADER_LEN;
        let mut meta = SegmentMeta {
            live: 0,
            records: 0,
            valid_len: HEADER_LEN,
        };
        let mut pending: Vec<(u64, u64)> = Vec::new(); // (epoch, offset)
        let total = data.len() as u64;
        'scan: loop {
            if offset == total {
                break;
            }
            let damage: &str = 'frame: {
                if total - offset < FRAME_HEADER_LEN {
                    break 'frame "truncated frame header";
                }
                let at = offset as usize;
                let len = u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes")) as u64;
                let crc = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("4 bytes"));
                if len > MAX_PAYLOAD || len > total - offset - FRAME_HEADER_LEN {
                    break 'frame "frame length exceeds segment";
                }
                let payload = &data[at + 8..at + 8 + len as usize];
                if crc32(payload) != crc {
                    break 'frame "checksum mismatch";
                }
                match EpochRecord::peek_epoch(payload) {
                    Ok(epoch) => {
                        pending.push((epoch, offset));
                        meta.records += 1;
                        offset += FRAME_HEADER_LEN + len;
                        meta.valid_len = offset;
                        continue 'scan;
                    }
                    Err(_) => break 'frame "frame payload is not an epoch record",
                }
            };
            if tolerant {
                // Torn tail: keep everything verified so far; the next
                // append truncates the garbage.
                break;
            }
            return Err(corrupt(offset, damage));
        }
        for (epoch, at) in pending {
            if self.index.contains_key(&epoch) {
                return Err(corrupt(at, "duplicate epoch across segments"));
            }
            self.index.insert(
                epoch,
                RecordLocation {
                    segment: id,
                    offset: at,
                },
            );
            meta.live += 1;
        }
        self.segments.insert(id, meta);
        Ok(())
    }

    /// Epochs currently retained, ascending.
    pub fn epochs(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// The newest retained epoch, if any.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.index.keys().next_back().copied()
    }

    /// The epoch number the next append must carry.
    pub fn next_epoch(&self) -> u64 {
        self.latest_epoch().map_or(1, |e| e + 1)
    }

    /// Number of segment files currently on disk.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Appends one epoch record, durably (flushed and fsynced before
    /// returning). Returns the number of bytes written. The record's epoch
    /// must advance past [`SnapshotStore::latest_epoch`].
    pub fn append(&mut self, record: &EpochRecord) -> Result<u64, StoreError> {
        if let Some(latest) = self.latest_epoch() {
            if record.epoch <= latest {
                return Err(StoreError::EpochOrder {
                    appended: record.epoch,
                    latest,
                });
            }
        }
        let payload = record.encode();
        // A frame the scanner would refuse must never be written "durably":
        // it would read back as a torn tail (newest segment) or corruption
        // (older segment) on every reopen.
        if payload.len() as u64 > MAX_PAYLOAD {
            return Err(StoreError::Codec(psfa_primitives::CodecError::Invalid(
                "epoch record exceeds the maximum frame size",
            )));
        }
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        // Pick (or start) the active segment.
        let active = match self.segments.iter().next_back() {
            Some((&id, meta)) if meta.records < self.segment_max_records => id,
            newest => {
                let id = newest.map_or(0, |(&id, _)| id + 1);
                self.segments.insert(
                    id,
                    SegmentMeta {
                        live: 0,
                        records: 0,
                        valid_len: 0,
                    },
                );
                id
            }
        };
        let path = self.segment_path(active);
        let meta = self.segments.get_mut(&active).expect("just ensured");
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        if meta.valid_len < HEADER_LEN {
            // Fresh segment (or one whose header was torn): write the header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&FORMAT_VERSION.to_le_bytes())?;
            meta.valid_len = HEADER_LEN;
        } else {
            // Discard any torn tail beyond the verified content.
            file.set_len(meta.valid_len)?;
            file.seek(SeekFrom::Start(meta.valid_len))?;
        }
        let offset = meta.valid_len;
        file.write_all(&frame)?;
        file.flush()?;
        file.sync_data()?;
        meta.valid_len += frame.len() as u64;
        meta.records += 1;
        meta.live += 1;
        self.index.insert(
            record.epoch,
            RecordLocation {
                segment: active,
                offset,
            },
        );
        Ok(frame.len() as u64)
    }

    /// Drops epochs beyond the retention bound `K` (oldest first) and
    /// deletes segment files whose records are all dead. Returns the number
    /// of segment files deleted.
    pub fn compact(&mut self) -> Result<usize, StoreError> {
        while self.index.len() > self.retain_epochs {
            let (_, location) = self.index.pop_first().expect("index non-empty");
            if let Some(meta) = self.segments.get_mut(&location.segment) {
                meta.live = meta.live.saturating_sub(1);
            }
        }
        let newest = self.segments.keys().next_back().copied();
        let dead: Vec<u64> = self
            .segments
            .iter()
            .filter(|(&id, meta)| Some(id) != newest && meta.live == 0)
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            fs::remove_file(self.segment_path(*id))?;
            self.segments.remove(id);
        }
        Ok(dead.len())
    }

    /// Loads and fully decodes one retained epoch, re-verifying its
    /// checksum against the bytes on disk. Reads only the record's own
    /// frame (seek + exact read), not the whole segment.
    pub fn load(&self, epoch: u64) -> Result<EpochRecord, StoreError> {
        use std::io::Read;
        let location = self
            .index
            .get(&epoch)
            .copied()
            .ok_or(StoreError::NoSuchEpoch(epoch))?;
        let path = self.segment_path(location.segment);
        let corrupt = |detail: &str| StoreError::Corrupt {
            path: path.clone(),
            offset: location.offset,
            detail: detail.to_string(),
        };
        let mut file = fs::File::open(&path)?;
        file.seek(SeekFrom::Start(location.offset))?;
        let mut header = [0u8; FRAME_HEADER_LEN as usize];
        if file.read_exact(&mut header).is_err() {
            return Err(corrupt("record offset beyond segment"));
        }
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as u64;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(corrupt("frame length exceeds the maximum payload"));
        }
        let mut payload = vec![0u8; len as usize];
        if file.read_exact(&mut payload).is_err() {
            return Err(corrupt("record truncated"));
        }
        if crc32(&payload) != crc {
            return Err(corrupt("checksum mismatch"));
        }
        let record = EpochRecord::decode(&payload)?;
        if record.epoch != epoch {
            return Err(corrupt("record epoch does not match index"));
        }
        Ok(record)
    }

    /// A time-travel view as of `epoch`.
    pub fn view_at(&self, epoch: u64) -> Result<EpochView, StoreError> {
        Ok(EpochView::new(self.load(epoch)?))
    }

    /// A view of the newest retained epoch.
    pub fn latest_view(&self) -> Result<EpochView, StoreError> {
        self.view_at(self.latest_epoch().ok_or(StoreError::NoSnapshot)?)
    }

    /// The φ-heavy hitters as the live engine reported them at `epoch`.
    pub fn heavy_hitters_at(&self, epoch: u64) -> Result<Vec<HeavyHitter>, StoreError> {
        Ok(self.view_at(epoch)?.heavy_hitters())
    }

    /// One-sided point-frequency estimate for `key` as of `epoch`.
    pub fn estimate_at(&self, key: u64, epoch: u64) -> Result<u64, StoreError> {
        Ok(self.view_at(epoch)?.estimate(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ShardState;
    use psfa_freq::InfiniteHeavyHitters;
    use psfa_sketch::ParallelCountMin;

    fn tmpdir(label: &str) -> PathBuf {
        crate::testutil::unique_temp_dir(&format!("store-{label}"))
    }

    fn record(epoch: u64, items_per_shard: u64) -> EpochRecord {
        let shards = (0..2u32)
            .map(|shard| {
                let mut hh = InfiniteHeavyHitters::new(0.1, 0.01);
                // Item 0 takes half the traffic, the rest spreads thin.
                let batch: Vec<u64> = (0..items_per_shard)
                    .map(|i| if i % 2 == 0 { 0 } else { 1 + i % 13 })
                    .collect();
                hh.process_minibatch(&batch);
                let mut cm = ParallelCountMin::new(0.05, 0.05, 3);
                cm.process_minibatch(&batch);
                ShardState {
                    shard,
                    epoch,
                    items: items_per_shard,
                    heavy_hitters: hh,
                    window: None,
                    count_min: cm,
                }
            })
            .collect();
        EpochRecord {
            epoch,
            phi: 0.1,
            epsilon: 0.01,
            window: None,
            hot_keys: Vec::new(),
            shards,
        }
    }

    #[test]
    fn append_reopen_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let mut store = SnapshotStore::open(&dir, 8, 2).unwrap();
        assert_eq!(store.next_epoch(), 1);
        for epoch in 1..=5u64 {
            store.append(&record(epoch, 100 * epoch)).unwrap();
        }
        assert_eq!(store.epochs(), vec![1, 2, 3, 4, 5]);
        // 2 records per segment ⇒ 3 segments.
        assert_eq!(store.segments(), 3);
        drop(store);

        let store = SnapshotStore::open(&dir, 8, 2).unwrap();
        assert_eq!(store.latest_epoch(), Some(5));
        let loaded = store.load(3).unwrap();
        assert_eq!(loaded, record(3, 300));
        assert!(matches!(store.load(99), Err(StoreError::NoSuchEpoch(99))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_order_is_enforced() {
        let dir = tmpdir("order");
        let mut store = SnapshotStore::open(&dir, 8, 4).unwrap();
        store.append(&record(2, 10)).unwrap();
        assert!(matches!(
            store.append(&record(2, 10)),
            Err(StoreError::EpochOrder {
                appended: 2,
                latest: 2
            })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_retains_k_epochs_and_deletes_dead_segments() {
        let dir = tmpdir("compact");
        let mut store = SnapshotStore::open(&dir, 3, 2).unwrap();
        for epoch in 1..=9u64 {
            store.append(&record(epoch, 50)).unwrap();
            store.compact().unwrap();
            assert!(store.epochs().len() <= 3);
        }
        assert_eq!(store.epochs(), vec![7, 8, 9]);
        // Segments 0–2 (epochs 1–6) must be gone from disk.
        let files = fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, store.segments());
        assert!(store.segments() <= 3);
        // Reopening sees exactly the retained epochs.
        drop(store);
        let store = SnapshotStore::open(&dir, 3, 2).unwrap();
        assert_eq!(store.epochs(), vec![7, 8, 9]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_reapplies_retention_instead_of_resurrecting_epochs() {
        let dir = tmpdir("resurrect");
        let mut store = SnapshotStore::open(&dir, 3, 4).unwrap();
        // Four epochs land in one segment; compaction drops epoch 1 from
        // the index but the segment stays (it still holds 2–4).
        for epoch in 1..=4u64 {
            store.append(&record(epoch, 40)).unwrap();
        }
        store.compact().unwrap();
        assert_eq!(store.epochs(), vec![2, 3, 4]);
        drop(store);
        // A reopen scans the whole segment — epoch 1 must not come back.
        let store = SnapshotStore::open(&dir, 3, 4).unwrap();
        assert_eq!(store.epochs(), vec![2, 3, 4]);
        assert!(matches!(store.load(1), Err(StoreError::NoSuchEpoch(1))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let dir = tmpdir("torn");
        let mut store = SnapshotStore::open(&dir, 8, 10).unwrap();
        store.append(&record(1, 60)).unwrap();
        store.append(&record(2, 60)).unwrap();
        let path = store.segment_path(0);
        drop(store);
        // Simulate a crash mid-append: garbage frame header at the tail.
        let mut data = fs::read(&path).unwrap();
        let intact = data.len();
        data.extend_from_slice(&[0xAB; 13]);
        fs::write(&path, &data).unwrap();

        let mut store = SnapshotStore::open(&dir, 8, 10).unwrap();
        assert_eq!(store.epochs(), vec![1, 2], "verified prefix survives");
        store.append(&record(3, 60)).unwrap();
        // The torn bytes were truncated before the new frame landed.
        drop(store);
        let reopened = SnapshotStore::open(&dir, 8, 10).unwrap();
        assert_eq!(reopened.epochs(), vec![1, 2, 3]);
        assert!(fs::read(&path).unwrap().len() > intact);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_a_typed_error_never_a_panic() {
        let dir = tmpdir("corrupt");
        let mut store = SnapshotStore::open(&dir, 8, 1).unwrap();
        store.append(&record(1, 80)).unwrap();
        store.append(&record(2, 80)).unwrap();
        let victim = store.segment_path(0); // non-newest segment
        drop(store);
        let mut data = fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(&victim, &data).unwrap();
        match SnapshotStore::open(&dir, 8, 1) {
            Err(StoreError::Corrupt { path, .. }) => assert_eq!(path, victim),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_reverifies_bytes_on_disk() {
        let dir = tmpdir("reverify");
        let mut store = SnapshotStore::open(&dir, 8, 4).unwrap();
        store.append(&record(1, 80)).unwrap();
        let path = store.segment_path(0);
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() - 20;
        data[mid] ^= 0x55;
        fs::write(&path, &data).unwrap();
        assert!(matches!(store.load(1), Err(StoreError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn historical_queries_answer_from_the_right_epoch() {
        let dir = tmpdir("history");
        let mut store = SnapshotStore::open(&dir, 8, 4).unwrap();
        store.append(&record(1, 100)).unwrap();
        store.append(&record(2, 500)).unwrap();
        let v1 = store.view_at(1).unwrap();
        let v2 = store.latest_view().unwrap();
        assert_eq!(v1.total_items(), 200);
        assert_eq!(v2.total_items(), 1000);
        assert!(store.estimate_at(0, 1).unwrap() < store.estimate_at(0, 2).unwrap());
        assert!(!store.heavy_hitters_at(2).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
