//! Persistence configuration, consumed by `EngineConfig::persistence` in
//! `psfa-engine` and by [`crate::SnapshotStore`] directly.

use std::path::{Path, PathBuf};
use std::time::Duration;

/// How (and how aggressively) an engine spills epoch snapshots to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Directory holding the segment log (created if missing).
    pub dir: PathBuf,
    /// The background flusher cuts a new epoch once this many minibatches
    /// have been accepted since the previous one.
    pub interval_batches: u64,
    /// How often the flusher thread wakes to check the interval. Flushing
    /// happens off the ingest hot path either way; this only bounds the
    /// latency between crossing the interval and the snapshot being cut.
    pub poll: Duration,
    /// Maximum historical epochs retained per shard (the `K` of
    /// compaction); older epochs are dropped and fully dead segment files
    /// deleted.
    pub retain_epochs: usize,
    /// Epoch records per segment file before rotating to a new segment.
    /// Smaller segments let compaction reclaim space sooner; larger ones
    /// mean fewer files.
    pub segment_max_records: usize,
}

impl PersistenceConfig {
    /// Persistence into `dir` with default knobs: snapshot every 64
    /// accepted minibatches, retain 8 epochs, rotate segments every 4
    /// records, poll every 2 ms.
    pub fn new(dir: impl AsRef<Path>) -> Self {
        Self {
            dir: dir.as_ref().to_path_buf(),
            interval_batches: 64,
            poll: Duration::from_millis(2),
            retain_epochs: 8,
            segment_max_records: 4,
        }
    }

    /// Sets the flush interval in accepted minibatches.
    pub fn interval_batches(mut self, batches: u64) -> Self {
        self.interval_batches = batches;
        self
    }

    /// Sets the flusher poll period.
    pub fn poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// Sets the number of historical epochs compaction retains (`K`).
    pub fn retain_epochs(mut self, epochs: usize) -> Self {
        self.retain_epochs = epochs;
        self
    }

    /// Sets the number of epoch records per segment file.
    pub fn segment_max_records(mut self, records: usize) -> Self {
        self.segment_max_records = records;
        self
    }

    /// Checks parameter ranges.
    ///
    /// # Panics
    /// Panics on invalid parameters; called by the engine at spawn.
    pub fn validate(&self) {
        assert!(
            self.interval_batches >= 1,
            "persistence interval must be at least one minibatch"
        );
        assert!(
            self.retain_epochs >= 1,
            "compaction must retain at least one epoch"
        );
        assert!(
            self.segment_max_records >= 1,
            "segments must hold at least one record"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let config = PersistenceConfig::new("/tmp/x")
            .interval_batches(16)
            .retain_epochs(3)
            .segment_max_records(2)
            .poll(Duration::from_millis(1));
        config.validate();
        assert_eq!(config.dir, PathBuf::from("/tmp/x"));
        assert_eq!(config.interval_batches, 16);
        assert_eq!(config.retain_epochs, 3);
        assert_eq!(config.segment_max_records, 2);
    }

    #[test]
    #[should_panic(expected = "retain")]
    fn zero_retention_rejected() {
        PersistenceConfig::new("/tmp/x").retain_epochs(0).validate();
    }
}
