//! The on-disk record types: one persisted epoch and its per-shard states.

use psfa_freq::{InfiniteHeavyHitters, PaneWindow};
use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_sketch::ParallelCountMin;

const EPOCH_TAG: u8 = 0x10;
const EPOCH_VERSION: u8 = 2;
const SHARD_TAG: u8 = 0x11;
const SHARD_VERSION: u8 = 2;

/// Upper bound accepted for the persisted shard count — a sanity limit far
/// above any real deployment, guarding decode against corrupted counts.
const MAX_SHARDS: usize = 1 << 16;

/// The full operator state of one shard at the moment of an epoch cut.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard index.
    pub shard: u32,
    /// Minibatches the shard had processed at the cut (its local epoch).
    pub epoch: u64,
    /// Items the shard had processed at the cut (its `m_s`).
    pub items: u64,
    /// The shard's infinite-window heavy-hitter tracker.
    pub heavy_hitters: InfiniteHeavyHitters,
    /// The shard's boundary-aligned sliding-window state, when the engine
    /// runs a global window.
    pub window: Option<PaneWindow>,
    /// The shard's Count-Min sketch.
    pub count_min: ParallelCountMin,
}

impl ShardState {
    fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, SHARD_TAG, SHARD_VERSION);
        w.put_u32(self.shard);
        w.put_u64(self.epoch);
        w.put_u64(self.items);
        self.heavy_hitters.encode_into(w);
        match &self.window {
            Some(window) => {
                w.put_u8(1);
                window.encode_into(w);
            }
            None => w.put_u8(0),
        }
        self.count_min.encode_into(w);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(SHARD_TAG, SHARD_VERSION)?;
        let shard = r.get_u32()?;
        let epoch = r.get_u64()?;
        let items = r.get_u64()?;
        let heavy_hitters = InfiniteHeavyHitters::decode_from(r)?;
        let window = match r.get_u8()? {
            0 => None,
            1 => Some(PaneWindow::decode_from(r)?),
            _ => return Err(CodecError::Invalid("shard state: bad window flag")),
        };
        let count_min = ParallelCountMin::decode_from(r)?;
        Ok(Self {
            shard,
            epoch,
            items,
            heavy_hitters,
            window,
            count_min,
        })
    }
}

/// The global sliding-window configuration and clock at an epoch cut: what
/// recovery needs to resume the `WindowFence` so pane boundaries keep
/// landing at the same logical positions, and what ties the persisted
/// per-shard [`PaneWindow`]s to one aligned boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowState {
    /// Global window size `n_W` in items.
    pub size: u64,
    /// Number of panes the window is divided into (`k`; the slide is
    /// `size / panes`).
    pub panes: u32,
    /// Logical items accepted when the epoch was cut (the ticket).
    pub ticket: u64,
    /// Window boundaries cut so far; every shard's sealed pane ring is at
    /// exactly this boundary (the cut is consistent). Boundaries land at
    /// consecutive multiples of the slide, so the next boundary's position
    /// is derived, never stored.
    pub boundaries: u64,
}

impl WindowState {
    /// The window slide in items (`size / panes`).
    pub fn slide(&self) -> u64 {
        self.size / self.panes as u64
    }

    fn encode_into(&self, w: &mut ByteWriter) {
        w.put_u64(self.size);
        w.put_u32(self.panes);
        w.put_u64(self.ticket);
        w.put_u64(self.boundaries);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let size = r.get_u64()?;
        let panes = r.get_u32()?;
        let ticket = r.get_u64()?;
        let boundaries = r.get_u64()?;
        if panes == 0 || size < panes as u64 || size % panes as u64 != 0 {
            return Err(CodecError::Invalid(
                "window state: size must be a positive multiple of panes",
            ));
        }
        Ok(Self {
            size,
            panes,
            ticket,
            boundaries,
        })
    }
}

/// One persisted epoch: a consistent cut of every shard's summaries plus
/// the routing state needed to interpret them (the hot-key set — a key split
/// across shards must be *summed* at query time, live or historical).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Store epoch number `E`, strictly increasing across the log.
    pub epoch: u64,
    /// Heavy-hitter threshold φ the engine ran with.
    pub phi: f64,
    /// Estimation error ε the engine ran with.
    pub epsilon: f64,
    /// The global sliding-window configuration and clock at the cut, when
    /// the engine ran a window.
    pub window: Option<WindowState>,
    /// Keys the router was splitting across shards at the cut, sorted.
    pub hot_keys: Vec<u64>,
    /// Per-shard states, in shard order (`shards[i].shard == i`).
    pub shards: Vec<ShardState>,
}

impl EpochRecord {
    /// Canonical binary encoding of the whole record (the payload of one
    /// segment-log frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w, EPOCH_TAG, EPOCH_VERSION);
        w.put_u64(self.epoch);
        w.put_f64(self.phi);
        w.put_f64(self.epsilon);
        match &self.window {
            Some(state) => {
                w.put_u8(1);
                state.encode_into(&mut w);
            }
            None => w.put_u8(0),
        }
        w.put_u32(self.hot_keys.len() as u32);
        for &key in &self.hot_keys {
            w.put_u64(key);
        }
        w.put_u32(self.shards.len() as u32);
        for shard in &self.shards {
            shard.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes a record from one frame payload, validating every structural
    /// invariant (never panics on corrupted input).
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(EPOCH_TAG, EPOCH_VERSION)?;
        let epoch = r.get_u64()?;
        let phi = r.get_f64()?;
        let epsilon = r.get_f64()?;
        if !(epsilon > 0.0 && epsilon < phi && phi < 1.0) {
            return Err(CodecError::Invalid(
                "epoch record: need 0 < epsilon < phi < 1",
            ));
        }
        let window = match r.get_u8()? {
            0 => None,
            1 => Some(WindowState::decode_from(&mut r)?),
            _ => return Err(CodecError::Invalid("epoch record: bad window flag")),
        };
        let hot_len = r.get_len(8)?;
        let mut hot_keys = Vec::with_capacity(hot_len);
        for _ in 0..hot_len {
            let key = r.get_u64()?;
            if hot_keys.last().is_some_and(|&p| p >= key) {
                return Err(CodecError::Invalid(
                    "epoch record: hot keys must be strictly ascending",
                ));
            }
            hot_keys.push(key);
        }
        let shard_count = r.get_len(1)?;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(CodecError::Invalid("epoch record: implausible shard count"));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for expected in 0..shard_count {
            let shard = ShardState::decode_from(&mut r)?;
            if shard.shard as usize != expected {
                return Err(CodecError::Invalid("epoch record: shards out of order"));
            }
            // The window invariants that make time travel and recovery
            // sound: every shard carries a window iff the record does, its
            // geometry matches, and — because the cut is consistent — every
            // shard's pane ring is sealed at exactly the record's boundary.
            match (&window, &shard.window) {
                (None, None) => {}
                (Some(ws), Some(pw)) => {
                    if pw.panes() != ws.panes as usize {
                        return Err(CodecError::Invalid(
                            "epoch record: shard pane count differs from the window state",
                        ));
                    }
                    if pw.epsilon().to_bits() != epsilon.to_bits() {
                        return Err(CodecError::Invalid(
                            "epoch record: shard window epsilon differs from the engine's",
                        ));
                    }
                    if pw.sealed_seq() != ws.boundaries {
                        return Err(CodecError::Invalid(
                            "epoch record: shard window not aligned to the cut boundary",
                        ));
                    }
                }
                _ => {
                    return Err(CodecError::Invalid(
                        "epoch record: window presence differs between record and shard",
                    ));
                }
            }
            shards.push(shard);
        }
        r.expect_end()?;
        Ok(Self {
            epoch,
            phi,
            epsilon,
            window,
            hot_keys,
            shards,
        })
    }

    /// Reads only the epoch number from an encoded record (used to index a
    /// segment without decoding megabytes of summaries).
    pub fn peek_epoch(bytes: &[u8]) -> Result<u64, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(EPOCH_TAG, EPOCH_VERSION)?;
        r.get_u64()
    }

    /// Total items reflected in this epoch across all shards (`m`).
    pub fn total_items(&self) -> u64 {
        self.shards.iter().map(|s| s.items).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> EpochRecord {
        let mut shards = Vec::new();
        for shard in 0..3u32 {
            let mut hh = InfiniteHeavyHitters::new(0.05, 0.01);
            let mut window = PaneWindow::new(0.01, 4);
            let mut cm = ParallelCountMin::new(0.01, 0.01, 42);
            let batch: Vec<u64> = (0..500u64).map(|i| i % (7 + shard as u64)).collect();
            hh.process_minibatch(&batch);
            window.process_minibatch(&batch);
            // Two boundaries processed on every shard (a consistent cut).
            window.seal();
            window.process_minibatch(&batch[..100]);
            window.seal();
            cm.process_minibatch(&batch);
            shards.push(ShardState {
                shard,
                epoch: 1 + shard as u64,
                items: batch.len() as u64,
                heavy_hitters: hh,
                window: Some(window),
                count_min: cm,
            });
        }
        EpochRecord {
            epoch: 9,
            phi: 0.05,
            epsilon: 0.01,
            window: Some(WindowState {
                size: 10_000,
                panes: 4,
                ticket: 5_500,
                boundaries: 2,
            }),
            hot_keys: vec![0, 3, 11],
            shards,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let record = sample_record();
        let bytes = record.encode();
        assert_eq!(EpochRecord::peek_epoch(&bytes).unwrap(), 9);
        let decoded = EpochRecord::decode(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.total_items(), record.total_items());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_record().encode();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(EpochRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn misaligned_shard_windows_are_rejected() {
        // A shard whose pane ring is sealed at a different boundary than
        // the record's window state cannot come from a consistent cut.
        let mut record = sample_record();
        record.shards[1].window.as_mut().unwrap().seal();
        assert!(matches!(
            EpochRecord::decode(&record.encode()),
            Err(CodecError::Invalid(msg)) if msg.contains("aligned")
        ));
        // Window presence must agree between the record and every shard.
        let mut record = sample_record();
        record.shards[2].window = None;
        assert!(EpochRecord::decode(&record.encode()).is_err());
    }

    #[test]
    fn corruption_never_panics() {
        let bytes = sample_record().encode();
        for i in (0..bytes.len()).step_by(3) {
            let mut copy = bytes.clone();
            copy[i] ^= 0xA5;
            let _ = EpochRecord::decode(&copy); // Err or a different record — never a panic
        }
    }
}
