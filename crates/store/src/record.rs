//! The on-disk record types: one persisted epoch and its per-shard states.

use psfa_freq::{InfiniteHeavyHitters, SlidingFreqWorkEfficient};
use psfa_primitives::codec::{put_header, ByteReader, ByteWriter, CodecError};
use psfa_sketch::ParallelCountMin;

const EPOCH_TAG: u8 = 0x10;
const EPOCH_VERSION: u8 = 1;
const SHARD_TAG: u8 = 0x11;
const SHARD_VERSION: u8 = 1;

/// Upper bound accepted for the persisted shard count — a sanity limit far
/// above any real deployment, guarding decode against corrupted counts.
const MAX_SHARDS: usize = 1 << 16;

/// The full operator state of one shard at the moment of an epoch cut.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Shard index.
    pub shard: u32,
    /// Minibatches the shard had processed at the cut (its local epoch).
    pub epoch: u64,
    /// Items the shard had processed at the cut (its `m_s`).
    pub items: u64,
    /// The shard's infinite-window heavy-hitter tracker.
    pub heavy_hitters: InfiniteHeavyHitters,
    /// The shard's sliding-window estimator, when the engine runs one.
    pub sliding: Option<SlidingFreqWorkEfficient>,
    /// The shard's Count-Min sketch.
    pub count_min: ParallelCountMin,
}

impl ShardState {
    fn encode_into(&self, w: &mut ByteWriter) {
        put_header(w, SHARD_TAG, SHARD_VERSION);
        w.put_u32(self.shard);
        w.put_u64(self.epoch);
        w.put_u64(self.items);
        self.heavy_hitters.encode_into(w);
        match &self.sliding {
            Some(sliding) => {
                w.put_u8(1);
                sliding.encode_into(w);
            }
            None => w.put_u8(0),
        }
        self.count_min.encode_into(w);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.expect_header(SHARD_TAG, SHARD_VERSION)?;
        let shard = r.get_u32()?;
        let epoch = r.get_u64()?;
        let items = r.get_u64()?;
        let heavy_hitters = InfiniteHeavyHitters::decode_from(r)?;
        let sliding = match r.get_u8()? {
            0 => None,
            1 => Some(SlidingFreqWorkEfficient::decode_from(r)?),
            _ => return Err(CodecError::Invalid("shard state: bad sliding flag")),
        };
        let count_min = ParallelCountMin::decode_from(r)?;
        Ok(Self {
            shard,
            epoch,
            items,
            heavy_hitters,
            sliding,
            count_min,
        })
    }
}

/// One persisted epoch: a consistent cut of every shard's summaries plus
/// the routing state needed to interpret them (the hot-key set — a key split
/// across shards must be *summed* at query time, live or historical).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Store epoch number `E`, strictly increasing across the log.
    pub epoch: u64,
    /// Heavy-hitter threshold φ the engine ran with.
    pub phi: f64,
    /// Estimation error ε the engine ran with.
    pub epsilon: f64,
    /// Per-shard sliding-window size, when configured.
    pub window: Option<u64>,
    /// Keys the router was splitting across shards at the cut, sorted.
    pub hot_keys: Vec<u64>,
    /// Per-shard states, in shard order (`shards[i].shard == i`).
    pub shards: Vec<ShardState>,
}

impl EpochRecord {
    /// Canonical binary encoding of the whole record (the payload of one
    /// segment-log frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w, EPOCH_TAG, EPOCH_VERSION);
        w.put_u64(self.epoch);
        w.put_f64(self.phi);
        w.put_f64(self.epsilon);
        match self.window {
            Some(n) => {
                w.put_u8(1);
                w.put_u64(n);
            }
            None => w.put_u8(0),
        }
        w.put_u32(self.hot_keys.len() as u32);
        for &key in &self.hot_keys {
            w.put_u64(key);
        }
        w.put_u32(self.shards.len() as u32);
        for shard in &self.shards {
            shard.encode_into(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes a record from one frame payload, validating every structural
    /// invariant (never panics on corrupted input).
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(EPOCH_TAG, EPOCH_VERSION)?;
        let epoch = r.get_u64()?;
        let phi = r.get_f64()?;
        let epsilon = r.get_f64()?;
        if !(epsilon > 0.0 && epsilon < phi && phi < 1.0) {
            return Err(CodecError::Invalid(
                "epoch record: need 0 < epsilon < phi < 1",
            ));
        }
        let window = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()?),
            _ => return Err(CodecError::Invalid("epoch record: bad window flag")),
        };
        let hot_len = r.get_len(8)?;
        let mut hot_keys = Vec::with_capacity(hot_len);
        for _ in 0..hot_len {
            let key = r.get_u64()?;
            if hot_keys.last().is_some_and(|&p| p >= key) {
                return Err(CodecError::Invalid(
                    "epoch record: hot keys must be strictly ascending",
                ));
            }
            hot_keys.push(key);
        }
        let shard_count = r.get_len(1)?;
        if shard_count == 0 || shard_count > MAX_SHARDS {
            return Err(CodecError::Invalid("epoch record: implausible shard count"));
        }
        let mut shards = Vec::with_capacity(shard_count);
        for expected in 0..shard_count {
            let shard = ShardState::decode_from(&mut r)?;
            if shard.shard as usize != expected {
                return Err(CodecError::Invalid("epoch record: shards out of order"));
            }
            shards.push(shard);
        }
        r.expect_end()?;
        Ok(Self {
            epoch,
            phi,
            epsilon,
            window,
            hot_keys,
            shards,
        })
    }

    /// Reads only the epoch number from an encoded record (used to index a
    /// segment without decoding megabytes of summaries).
    pub fn peek_epoch(bytes: &[u8]) -> Result<u64, CodecError> {
        let mut r = ByteReader::new(bytes);
        r.expect_header(EPOCH_TAG, EPOCH_VERSION)?;
        r.get_u64()
    }

    /// Total items reflected in this epoch across all shards (`m`).
    pub fn total_items(&self) -> u64 {
        self.shards.iter().map(|s| s.items).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psfa_freq::SlidingFrequencyEstimator;

    fn sample_record() -> EpochRecord {
        let mut shards = Vec::new();
        for shard in 0..3u32 {
            let mut hh = InfiniteHeavyHitters::new(0.05, 0.01);
            let mut sliding = SlidingFreqWorkEfficient::new(0.01, 10_000);
            let mut cm = ParallelCountMin::new(0.01, 0.01, 42);
            let batch: Vec<u64> = (0..500u64).map(|i| i % (7 + shard as u64)).collect();
            hh.process_minibatch(&batch);
            sliding.process_minibatch(&batch);
            cm.process_minibatch(&batch);
            shards.push(ShardState {
                shard,
                epoch: 1 + shard as u64,
                items: batch.len() as u64,
                heavy_hitters: hh,
                sliding: Some(sliding),
                count_min: cm,
            });
        }
        EpochRecord {
            epoch: 9,
            phi: 0.05,
            epsilon: 0.01,
            window: Some(10_000),
            hot_keys: vec![0, 3, 11],
            shards,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let record = sample_record();
        let bytes = record.encode();
        assert_eq!(EpochRecord::peek_epoch(&bytes).unwrap(), 9);
        let decoded = EpochRecord::decode(&bytes).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(decoded.total_items(), record.total_items());
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_record().encode();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(EpochRecord::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corruption_never_panics() {
        let bytes = sample_record().encode();
        for i in (0..bytes.len()).step_by(3) {
            let mut copy = bytes.clone();
            copy[i] ^= 0xA5;
            let _ = EpochRecord::decode(&copy); // Err or a different record — never a panic
        }
    }
}
