//! Time-travel query surface: answering queries *as of* a persisted epoch.
//!
//! An [`EpochView`] wraps one decoded [`EpochRecord`] and answers exactly
//! the queries the live engine answers, with the same cross-shard
//! combination rules — so `heavy_hitters()` on a view of epoch `E`
//! reproduces the answer the live engine gave at the moment epoch `E` was
//! cut, and every estimate keeps the paper's one-sided `ε·m` bound over the
//! items reflected in the epoch.
//!
//! ## Why the bounds survive the disk
//!
//! A persisted epoch is a *consistent cut*: every minibatch accepted before
//! the cut is reflected on its shard, none accepted after is. The per-shard
//! summaries are mergeable (Agarwal et al.; `psfa_freq::MgSummary::merge`),
//! and serialisation is exact — `decode(encode(s)) == s` — so the query-time
//! accounting is identical to the live engine's: per-shard substreams
//! partition the observed prefix (`Σ_s m_s = m`), each Misra–Gries summary
//! underestimates its substream by at most `ε·m_s`, hence owner reads and
//! replicated-key sums underestimate by at most `ε·m` and never
//! overestimate. Count-Min overestimates by at most `ε_cm·m` by the mirror
//! argument.

use psfa_freq::{GlobalWindow, HeavyHitter};
use psfa_stream::{shard_of, Placement};
use std::collections::HashMap;

use crate::record::EpochRecord;

/// A read-only view of the engine's state as of one persisted epoch.
#[derive(Debug, Clone)]
pub struct EpochView {
    record: EpochRecord,
}

impl EpochView {
    /// Wraps a decoded epoch record.
    pub fn new(record: EpochRecord) -> Self {
        Self { record }
    }

    /// The underlying record.
    pub fn record(&self) -> &EpochRecord {
        &self.record
    }

    /// The store epoch this view answers for.
    pub fn epoch(&self) -> u64 {
        self.record.epoch
    }

    /// Number of shards in the cut.
    pub fn shards(&self) -> usize {
        self.record.shards.len()
    }

    /// The heavy-hitter threshold φ the engine ran with.
    pub fn phi(&self) -> f64 {
        self.record.phi
    }

    /// The estimation error ε the engine ran with.
    pub fn epsilon(&self) -> f64 {
        self.record.epsilon
    }

    /// Keys the router was splitting across shards at the cut.
    pub fn hot_keys(&self) -> &[u64] {
        &self.record.hot_keys
    }

    /// Total items reflected in the epoch (`m` of the persisted prefix).
    pub fn total_items(&self) -> u64 {
        self.record.total_items()
    }

    /// Where `key`'s count mass lived at the cut: split keys must be summed
    /// across shards, everything else is owned by its hash home.
    pub fn placement(&self, key: u64) -> Placement {
        if self.record.hot_keys.binary_search(&key).is_ok() {
            Placement::Replicated
        } else {
            Placement::Owner(shard_of(key, self.shards()))
        }
    }

    /// Point-frequency estimate for `key` as of this epoch: one-sided,
    /// `f − ε·m ≤ f̂ ≤ f` over the persisted prefix (see the module docs).
    pub fn estimate(&self, key: u64) -> u64 {
        let per_shard = |s: usize| {
            self.record.shards[s]
                .heavy_hitters
                .estimator()
                .estimate(key)
        };
        match self.placement(key) {
            Placement::Owner(shard) => per_shard(shard),
            Placement::Replicated => (0..self.shards()).map(per_shard).sum(),
        }
    }

    /// The globally consistent sliding window as of this epoch: every
    /// shard's persisted pane ring is sealed at the same boundary (the cut
    /// is consistent — validated at decode), so their merged
    /// [`GlobalWindow`] reproduces the aligned window the live engine
    /// served at the cut, with the same one-sided `ε·n_W` bound. `None`
    /// when the engine ran without a window or before the first boundary.
    pub fn global_window(&self) -> Option<GlobalWindow> {
        let sealed: Option<Vec<_>> = self
            .record
            .shards
            .iter()
            .map(|s| s.window.as_ref().and_then(|w| w.sealed_window()))
            .collect();
        GlobalWindow::merge(sealed.as_ref()?.iter())
    }

    /// One-sided estimate of `key`'s frequency in the aligned global
    /// window as of this epoch (`f − ε·n_W ≤ f̂ ≤ f` over the window's
    /// `n_W` items); `0` when the engine ran without a window or before
    /// the first window boundary.
    pub fn sliding_estimate(&self, key: u64) -> u64 {
        self.global_window().map_or(0, |w| w.estimate(key))
    }

    /// The φ-heavy hitters of the aligned global window as of this epoch,
    /// most frequent first (empty without a window / before the first
    /// boundary) — the historical mirror of the live engine's
    /// `sliding_heavy_hitters`.
    pub fn sliding_heavy_hitters(&self) -> Vec<HeavyHitter> {
        self.global_window().map_or_else(Vec::new, |w| {
            w.heavy_hitters(self.record.phi, self.record.epsilon)
        })
    }

    /// Count-Min overestimate for `key` as of this epoch
    /// (`f ≤ f̂ ≤ f + ε_cm·m`).
    pub fn cm_estimate(&self, key: u64) -> u64 {
        let per_shard = |s: usize| self.record.shards[s].count_min.query(key);
        match self.placement(key) {
            Placement::Owner(shard) => per_shard(shard),
            Placement::Replicated => (0..self.shards()).map(per_shard).sum(),
        }
    }

    /// The φ-heavy hitters as of this epoch, most frequent first — the same
    /// computation the live engine performs on its snapshots (per-shard
    /// summary entries summed by key, thresholded at `(φ − ε)·m`), so the
    /// answer matches what the live engine reported at the cut exactly.
    pub fn heavy_hitters(&self) -> Vec<HeavyHitter> {
        let m = self.total_items();
        let threshold = ((self.record.phi - self.record.epsilon) * m as f64).max(0.0);
        let mut sums: HashMap<u64, u64> = HashMap::new();
        for shard in &self.record.shards {
            for (item, est) in shard.heavy_hitters.estimator().tracked_items() {
                *sums.entry(item).or_insert(0) += est;
            }
        }
        let mut out: Vec<HeavyHitter> = sums
            .into_iter()
            .filter(|&(_, est)| est as f64 >= threshold)
            .map(|(item, estimate)| HeavyHitter { item, estimate })
            .collect();
        out.sort_unstable_by(|a, b| b.estimate.cmp(&a.estimate).then(a.item.cmp(&b.item)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ShardState;
    use psfa_freq::InfiniteHeavyHitters;
    use psfa_sketch::ParallelCountMin;

    /// Builds a 2-shard view: hash-partitioned items, plus a hot key 1000
    /// whose occurrences were split across both shards.
    fn split_view() -> (EpochView, u64) {
        let hot = 1000u64;
        let mut shards = Vec::new();
        for shard in 0..2u32 {
            let mut hh = InfiniteHeavyHitters::new(0.1, 0.01);
            let mut cm = ParallelCountMin::new(0.01, 0.01, 7);
            // Each shard saw its own occurrences of the hot key plus some
            // owner-routed traffic.
            let mut batch = vec![hot; 300];
            batch.extend((0..200u64).filter(|k| shard_of(*k, 2) == shard as usize));
            hh.process_minibatch(&batch);
            cm.process_minibatch(&batch);
            shards.push(ShardState {
                shard,
                epoch: 1,
                items: batch.len() as u64,
                heavy_hitters: hh,
                window: None,
                count_min: cm,
            });
        }
        let record = EpochRecord {
            epoch: 1,
            phi: 0.1,
            epsilon: 0.01,
            window: None,
            hot_keys: vec![hot],
            shards,
        };
        (EpochView::new(record), hot)
    }

    #[test]
    fn split_keys_are_summed_and_reported_once() {
        let (view, hot) = split_view();
        assert_eq!(view.placement(hot), Placement::Replicated);
        // 600 occurrences total, one-sided.
        let est = view.estimate(hot);
        assert!(est <= 600);
        assert!(est as f64 >= 600.0 - view.epsilon() * view.total_items() as f64);
        assert!(view.cm_estimate(hot) >= 600);
        let hh = view.heavy_hitters();
        assert_eq!(hh.iter().filter(|h| h.item == hot).count(), 1);
        assert_eq!(hh[0].item, hot, "the split key dominates the stream");
    }

    #[test]
    fn owner_keys_read_their_home_shard() {
        let (view, _) = split_view();
        for key in 0..200u64 {
            assert_eq!(view.placement(key), Placement::Owner(shard_of(key, 2)));
            assert!(view.estimate(key) <= 1);
        }
    }
}
