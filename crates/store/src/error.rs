//! The typed error surface of the persistence subsystem.

use std::fmt;
use std::io;
use std::path::PathBuf;

use psfa_primitives::CodecError;

/// Any failure of the persistence subsystem: I/O, corruption, decoding,
/// missing state, or a recovery/engine-integration mismatch.
///
/// Corruption of any kind (bad magic, checksum mismatch, truncated interior
/// record, undecodable summary) is reported as a typed variant — decoding
/// untrusted bytes never panics anywhere in the store.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A summary or record failed to decode (see [`CodecError`]).
    Codec(CodecError),
    /// A segment file is structurally damaged at the given byte offset.
    Corrupt {
        /// Segment file in which the damage was found.
        path: PathBuf,
        /// Byte offset of the damaged frame or header.
        offset: u64,
        /// Human-readable description of the damage.
        detail: String,
    },
    /// The requested epoch is not retained (never written, or compacted
    /// away).
    NoSuchEpoch(u64),
    /// The store holds no epoch at all — nothing to recover from.
    NoSnapshot,
    /// An appended epoch did not advance past the latest retained epoch.
    EpochOrder {
        /// Epoch number the caller tried to append.
        appended: u64,
        /// Latest epoch already in the store.
        latest: u64,
    },
    /// Recovery found a different shard count than the engine config asks
    /// for (per-shard substreams cannot be re-split).
    ShardCountMismatch {
        /// Shards in the persisted epoch.
        persisted: usize,
        /// Shards in the engine configuration.
        configured: usize,
    },
    /// Recovery found persisted accuracy/window parameters incompatible
    /// with the engine configuration.
    ConfigMismatch(&'static str),
    /// The engine backing this handle has shut down; no snapshot can be cut.
    Closed,
    /// Persistence is not configured on this engine.
    Disabled,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "store decode error: {e}"),
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt segment {} at offset {offset}: {detail}",
                path.display()
            ),
            StoreError::NoSuchEpoch(epoch) => {
                write!(f, "epoch {epoch} is not retained in the store")
            }
            StoreError::NoSnapshot => write!(f, "the store holds no persisted epoch"),
            StoreError::EpochOrder { appended, latest } => write!(
                f,
                "appended epoch {appended} does not advance past latest epoch {latest}"
            ),
            StoreError::ShardCountMismatch {
                persisted,
                configured,
            } => write!(
                f,
                "persisted epoch has {persisted} shards but the engine is configured for {configured}"
            ),
            StoreError::ConfigMismatch(what) => {
                write!(f, "persisted state incompatible with engine config: {what}")
            }
            StoreError::Closed => write!(f, "engine is shut down; no snapshot can be cut"),
            StoreError::Disabled => write!(f, "persistence is not configured on this engine"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
