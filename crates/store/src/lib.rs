//! # psfa-store
//!
//! Epoch-snapshot persistence for the PSFA reproduction: the paper's
//! mergeable summaries are trivially *serializable* summaries, and this
//! crate turns that into a durability story — periodic consistent cuts of a
//! sharded engine's state spilled to an append-only, checksummed segment
//! log, with crash recovery onto the latest consistent epoch and
//! **time-travel queries** (`heavy_hitters_at(E)`, `estimate_at(key, E)`)
//! over retained history.
//!
//! ```text
//!  psfa-engine flusher thread            dir/
//!      │ IngestFence::cut_with ──────►   seg-0000000000.psfalog
//!      │   (consistent cut:              seg-0000000001.psfalog   ◄─ frames:
//!      │    every shard at the           …                           [len][crc32][EpochRecord]
//!      ▼    same stream point)
//!  EpochRecord { per-shard MG summary, Count-Min, window panes, hot keys,
//!                window cut (boundary + logical clock) }
//!      │
//!      ▼  SnapshotStore::append (fsync) · compact (retain K epochs)
//!  recovery: Engine::recover(dir, config)  — replay latest epoch
//!  history:  SnapshotStore::view_at(E)     — same ε·m bounds as live
//! ```
//!
//! ## Guarantees
//!
//! * **Typed failure, never panic**: scanning, loading, and decoding
//!   corrupted or truncated files returns [`StoreError`]; only the torn
//!   tail of the newest segment is silently dropped (that is the defined
//!   crash behaviour, see [`store`]).
//! * **Accuracy survives the disk**: serialisation is exact
//!   (`decode(encode(s)) == s` for every summary type), a persisted epoch
//!   is a consistent cut, and the mergeable-summaries argument then gives a
//!   recovered or historical query the same one-sided `ε·m` bound as the
//!   live engine — see [`view`] for the accounting.
//! * **Bounded space**: compaction keeps at most `K` epochs and deletes
//!   fully dead segment files.
//!
//! This crate uses **std-only I/O** (no external dependencies beyond the
//! workspace's own summary crates).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod crc;
mod error;
mod record;
pub mod store;
pub mod view;

/// Test and experiment support (not part of the stable API).
#[doc(hidden)]
pub mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Creates a unique, empty temp directory (pid + nanos + sequence in
    /// the name) for store-backed tests, benches, and experiments.
    pub fn unique_temp_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before unix epoch")
            .subsec_nanos();
        let dir = std::env::temp_dir().join(format!(
            "psfa-{label}-{}-{nanos}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }
}

pub use config::PersistenceConfig;
pub use crc::crc32;
pub use error::StoreError;
pub use record::{EpochRecord, ShardState, WindowState};
pub use store::SnapshotStore;
pub use view::EpochView;
