//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over record
//! payloads. Table-driven; the table is built once per process.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() {
            let mut copy = data.clone();
            copy[i] ^= 0x01;
            assert_ne!(crc32(&copy), reference, "flip at {i} undetected");
        }
    }
}
