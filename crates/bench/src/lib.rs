//! Shared helpers for the benchmark harness and the `reproduce` experiment
//! binary: canonical workloads, timing utilities, and table printing.
//!
//! Every experiment in DESIGN.md §4 (E1–E8, F2) is regenerated either by a
//! Criterion bench in `benches/` (wall-clock comparisons) or by
//! `cargo run --release -p psfa-bench --bin reproduce` (accuracy/space/work
//! tables), or both. EXPERIMENTS.md records the measured outcomes.

use std::time::Instant;

use psfa::prelude::*;

pub mod alloc_counter;
pub mod bench_json;
pub mod hotpath;
pub mod loadgen;

/// Number of threads rayon is using — recorded in experiment output because
/// the depth/speedup claims are only observable with more than one core.
pub fn threads() -> usize {
    rayon::current_num_threads()
}

/// Times a closure and returns (result, seconds).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Renders one row of an aligned table.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders a header row followed by a separator.
pub fn header(cells: &[&str]) -> String {
    let head = row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    let sep = "-".repeat(head.len());
    format!("{head}\n{sep}")
}

/// The canonical skewed workload used across experiments: Zipf(α) over a
/// fixed universe, pre-generated as whole minibatches.
pub fn zipf_minibatches(
    universe: u64,
    alpha: f64,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<u64>> {
    let mut generator = ZipfGenerator::new(universe, alpha, seed);
    (0..batches)
        .map(|_| generator.next_minibatch(batch_size))
        .collect()
}

/// Pre-generated binary minibatches of a given 1-density (experiments E1–E2).
pub fn binary_minibatches(
    density: f64,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<bool>> {
    let mut generator = BinaryStreamGenerator::new(density, seed);
    (0..batches)
        .map(|_| generator.next_bits(batch_size))
        .collect()
}

/// Exact frequencies of the last `n` items of a concatenated stream.
pub fn exact_window_counts(history: &[u64], n: u64) -> std::collections::HashMap<u64, u64> {
    let start = history.len().saturating_sub(n as usize);
    let mut counts = std::collections::HashMap::new();
    for &x in &history[start..] {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_helpers_produce_requested_shapes() {
        let batches = zipf_minibatches(1000, 1.1, 3, 500, 1);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 500));
        let bits = binary_minibatches(0.5, 2, 100, 2);
        assert_eq!(bits.len(), 2);
        assert_eq!(bits[0].len(), 100);
    }

    #[test]
    fn table_helpers_align() {
        let h = header(&["a", "b"]);
        assert!(h.contains('a') && h.contains('-'));
        let r = row(&["1".into(), "2".into()]);
        assert!(r.len() >= 29);
    }
}
