//! Open-loop load generator for the `psfa-serve` front end.
//!
//! Closed-loop benchmarks (send, wait, send) suffer from *coordinated
//! omission*: when the server stalls, the client stops issuing requests, so
//! the stall shows up once instead of once per request that should have been
//! sent during it. This generator avoids that two ways:
//!
//! 1. **The schedule is fixed in advance.** Request `i` of a run at rate `r`
//!    is due at `start + i/r`, independent of how the server is doing.
//!    Latency is measured from the *scheduled* time, so queueing delay —
//!    whether inside the client pool or inside the server — is part of every
//!    affected sample rather than silently thinning the sample set.
//! 2. **The client pool grows under backpressure.** A monitor watches how
//!    far completions lag the schedule; when the backlog exceeds a
//!    threshold, it spawns an additional client connection (up to a cap) so
//!    a single slow in-flight request cannot serialize the whole run.
//!
//! Workers claim schedule slots from a shared atomic counter, sleep until
//! the slot is due, send, and record `completion − scheduled` into a
//! lock-free [`AtomicLogHistogram`]. `Busy` responses (explicit engine
//! backpressure) are counted separately and excluded from the latency
//! distribution: they measure admission control, not service time.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use psfa::prelude::*;

/// Configuration for one open-loop run against a single request kind.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Target request rate, requests per second. Must be positive.
    pub rate_per_sec: f64,
    /// Total number of requests in the (pre-fixed) schedule.
    pub total_requests: usize,
    /// Client connections opened before the run starts.
    pub initial_clients: usize,
    /// Upper bound on client connections, including spawned ones.
    pub max_clients: usize,
    /// Spawn another client once completions lag the schedule by this many
    /// requests.
    pub backlog_spawn_threshold: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 5_000.0,
            total_requests: 10_000,
            initial_clients: 2,
            max_clients: 16,
            backlog_spawn_threshold: 32,
        }
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that completed with a non-`Busy`, non-error response.
    pub completed: u64,
    /// Requests rejected with an explicit `Busy` response.
    pub busy: u64,
    /// Transport or protocol errors (a correct run has zero).
    pub errors: u64,
    /// Client connections used, including any spawned under backpressure.
    pub clients: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Achieved throughput over completed + busy requests.
    pub requests_per_sec: f64,
    /// Latency from scheduled send time, successful requests only.
    pub latency: Percentiles,
}

impl LoadReport {
    /// Renders the report as one human-readable line.
    pub fn summary_line(&self, label: &str) -> String {
        format!(
            "{label:>12}: {completed} ok, {busy} busy, {errors} err over {clients} conns \
             @ {rate:.0} req/s — p50 {p50} p99 {p99} p999 {p999} (ns, from schedule)",
            completed = self.completed,
            busy = self.busy,
            errors = self.errors,
            clients = self.clients,
            rate = self.requests_per_sec,
            p50 = self.latency.p50,
            p99 = self.latency.p99,
            p999 = self.latency.p999,
        )
    }
}

struct Shared {
    next_slot: AtomicUsize,
    completed: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
    stop: AtomicBool,
    latency: AtomicLogHistogram,
}

/// Runs one open-loop schedule of `config.total_requests` requests against
/// the server at `addr`, issuing `make_request(i)` for slot `i`. Blocks
/// until the schedule is drained and every client has exited.
///
/// `Busy` responses count toward [`LoadReport::busy`]; any transport or
/// protocol error counts toward [`LoadReport::errors`] and retires the
/// client that hit it (the backlog monitor will replace it if the run is
/// falling behind and the cap allows).
pub fn run_open_loop(
    addr: SocketAddr,
    config: &OpenLoopConfig,
    make_request: impl Fn(usize) -> Request + Send + Sync + 'static,
) -> std::io::Result<LoadReport> {
    assert!(config.rate_per_sec > 0.0, "rate must be positive");
    assert!(config.initial_clients >= 1, "need at least one client");
    assert!(
        config.max_clients >= config.initial_clients,
        "max_clients must admit the initial pool"
    );
    let shared = Arc::new(Shared {
        next_slot: AtomicUsize::new(0),
        completed: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        latency: AtomicLogHistogram::new(),
    });
    let make_request: Arc<dyn Fn(usize) -> Request + Send + Sync> = Arc::new(make_request);
    let interval = Duration::from_secs_f64(1.0 / config.rate_per_sec);
    let total = config.total_requests;
    let start = Instant::now();

    let spawn_client = |id: usize| -> std::io::Result<std::thread::JoinHandle<()>> {
        let shared = Arc::clone(&shared);
        let make_request = Arc::clone(&make_request);
        let mut client = Client::connect(addr)?;
        Ok(std::thread::Builder::new()
            .name(format!("psfa-loadgen-{id}"))
            .spawn(move || worker(&mut client, &shared, &*make_request, start, interval, total))
            .expect("spawn load generator client thread"))
    };

    let mut handles = Vec::with_capacity(config.max_clients);
    for id in 0..config.initial_clients {
        handles.push(spawn_client(id)?);
    }

    // Backlog monitor: spawn extra clients while the run lags the schedule.
    while shared.next_slot.load(Ordering::Relaxed) < total {
        std::thread::sleep(interval.max(Duration::from_millis(2)));
        let due = (start.elapsed().as_secs_f64() * config.rate_per_sec) as usize;
        let finished = (shared.completed.load(Ordering::Relaxed)
            + shared.busy.load(Ordering::Relaxed)
            + shared.errors.load(Ordering::Relaxed)) as usize;
        let backlog = due.min(total).saturating_sub(finished);
        if backlog > config.backlog_spawn_threshold && handles.len() < config.max_clients {
            // The server may refuse at its connection cap; keep going with
            // the pool we have.
            if let Ok(h) = spawn_client(handles.len()) {
                handles.push(h);
            }
        }
    }
    let clients = handles.len();
    for h in handles {
        h.join().expect("load generator client panicked");
    }
    shared.stop.store(true, Ordering::Relaxed);

    let elapsed = start.elapsed();
    let completed = shared.completed.load(Ordering::Relaxed);
    let busy = shared.busy.load(Ordering::Relaxed);
    let errors = shared.errors.load(Ordering::Relaxed);
    Ok(LoadReport {
        completed,
        busy,
        errors,
        clients,
        elapsed,
        requests_per_sec: (completed + busy) as f64 / elapsed.as_secs_f64().max(1e-9),
        latency: shared.latency.percentiles(),
    })
}

fn worker(
    client: &mut Client,
    shared: &Shared,
    make_request: &(dyn Fn(usize) -> Request + Send + Sync),
    start: Instant,
    interval: Duration,
    total: usize,
) {
    loop {
        let slot = shared.next_slot.fetch_add(1, Ordering::Relaxed);
        if slot >= total {
            return;
        }
        let scheduled = start + interval.mul_f64(slot as f64);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let request = make_request(slot);
        match client.call(&request) {
            Ok(Response::Busy) => {
                shared.busy.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Response::Error { .. }) | Err(_) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                // A broken connection cannot serve further slots; retire.
                return;
            }
            Ok(_) => {
                shared.completed.fetch_add(1, Ordering::Relaxed);
                let latency = Instant::now().saturating_duration_since(scheduled);
                shared.latency.record(latency.as_nanos() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_run_completes_the_schedule_and_measures_latency() {
        let engine = Engine::spawn(EngineConfig::with_shards(2).heavy_hitters(0.05, 0.01));
        let server = Server::spawn(engine.handle(), ServeConfig::default()).expect("server");
        let addr = server.local_addr();
        let config = OpenLoopConfig {
            rate_per_sec: 2_000.0,
            total_requests: 400,
            initial_clients: 2,
            max_clients: 4,
            backlog_spawn_threshold: 64,
        };
        let report = run_open_loop(addr, &config, move |i| {
            if i % 4 == 0 {
                Request::Estimate(7)
            } else {
                Request::IngestBatch(vec![7; 32])
            }
        })
        .expect("run");
        assert_eq!(report.errors, 0, "loopback run must be error-free");
        assert_eq!(report.completed + report.busy, 400);
        assert!(report.latency.count > 0);
        assert!(report.latency.p50 <= report.latency.p999);
        assert!(report.clients >= 2 && report.clients <= 4);
        assert!(report.summary_line("mixed").contains("p999"));
        server.shutdown();
        let report = engine.shutdown().unwrap();
        assert!(report.total_items() > 0);
    }
}
